//! `stats` — facade crate for the STATS reproduction.
//!
//! STATS (STAte Transition Speculator, ASPLOS 2018) parallelizes
//! nondeterministic programs by satisfying *state dependences* with
//! compiler-generated *auxiliary code*, validated at run time against a set
//! of original nondeterministic results.
//!
//! This crate re-exports the workspace's public API:
//!
//! - [`core`] — the SDI/TI interfaces, speculation protocol, and runtime
//! - [`compiler`] — front-end DSL, IR, middle-end cloning, back-end instantiation
//! - [`sim`] — the simulated 28-core platform and energy model
//! - [`autotune`] — the OpenTuner-style state-space search
//! - [`profiler`] — configuration measurement (time / energy / quality)
//! - [`workloads`] — the six nondeterministic benchmarks
//! - [`baselines`] — ALTER-like, QuickStep-like, HELIX-UP-like, Fast Track

// Run the Rust code blocks in the repository's markdown documentation as
// doctests (`cargo test --doc -p stats`), so the docs cannot drift from
// the API they describe.
#[cfg(doctest)]
#[doc = include_str!("../docs/streaming.md")]
mod doctest_streaming {}
#[cfg(doctest)]
#[doc = include_str!("../docs/robustness.md")]
mod doctest_robustness {}
#[cfg(doctest)]
#[doc = include_str!("../docs/serving.md")]
mod doctest_serving {}
#[cfg(doctest)]
#[doc = include_str!("../docs/dag.md")]
mod doctest_dag {}
#[cfg(doctest)]
#[doc = include_str!("../docs/replay.md")]
mod doctest_replay {}
#[cfg(doctest)]
#[doc = include_str!("../docs/tuning.md")]
mod doctest_tuning {}

pub use stats_autotune as autotune;
pub use stats_baselines as baselines;
pub use stats_compiler as compiler;
pub use stats_core as core;
pub use stats_profiler as profiler;
pub use stats_sim as sim;
pub use stats_workloads as workloads;
