//! `stats-report` — human-readable observability report for one STATS run.
//!
//! Runs a benchmark's state dependence once sequentially (recording the
//! structured event stream and the speculation trace) and once on the
//! work-stealing pool (recording pool counters), then prints the per-group
//! timeline, the work-split table, and pool utilization.
//!
//! ```text
//! stats-report swaptions --inputs 48 --threads 8
//! stats-report bodytrack --trace bodytrack.trace.json --check
//! ```
//!
//! `--trace FILE` writes the run as Chrome trace-event JSON (loads in
//! `chrome://tracing` / Perfetto: one lane per virtual-schedule slot plus
//! wall-clock spans per runtime thread). `--check` validates that every
//! dependence edge in the recorded trace points backward and exits
//! non-zero otherwise.
//!
//! The `replay` subcommand records a production-shaped streaming session
//! into a portable binary log and re-executes it (`docs/replay.md`):
//!
//! ```text
//! stats-report replay --record session.statslog --inputs 256 --tune
//! stats-report replay --verify session.statslog
//! ```
//!
//! `--verify` exits non-zero when the re-run diverges from the recording
//! in any way (event sequence, trace digest, or report digest).

use std::process::ExitCode;
use std::sync::Arc;

use stats::autotune::OnlineTuner;
use stats::core::obs::{chrome_trace_json, render_summary, validate_backward_deps};
use stats::core::replay::{replay, SessionLog, SessionRecorder};
use stats::core::{
    run_protocol_with_options, EventSink, FaultPlan, FaultRule, InvocationCtx, RecordingSink,
    RunOptions, SpecConfig, SpecState, StateDependence, StateTransition, ThreadPool,
    TradeoffBindings,
};
use stats::workloads::{with_workload, BenchmarkId, Workload, WorkloadSpec};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_usize(args: &[String], name: &str, default: usize) -> usize {
    flag(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The replay subcommand's built-in workload: a seeded random walk whose
/// inputs are plain `f64`s (so they cross the log's `SpillCodec` boundary
/// bit-exactly). The nondeterminism comes from the per-invocation PRVG,
/// which is exactly what the log's seed pins down.
#[derive(Clone, Debug)]
struct Walk(f64);

impl SpecState for Walk {
    fn matches_any(&self, originals: &[Self]) -> bool {
        originals.iter().any(|o| (o.0 - self.0).abs() < 1e3)
    }
}

struct Step;

impl StateTransition for Step {
    type Input = f64;
    type State = Walk;
    type Output = f64;
    fn compute_output(&self, input: &f64, state: &mut Walk, ctx: &mut InvocationCtx) -> f64 {
        let noise = ctx.normal(0.0, 1.0);
        state.0 += input + noise;
        ctx.charge(1.0);
        state.0
    }
}

fn replay_command(args: &[String]) -> ExitCode {
    let usage = || {
        eprintln!(
            "usage: stats-report replay --record FILE [--inputs N] [--seed N]\n\
             \x20                          [--group N] [--fault-rate P] [--tune]\n\
             \x20      stats-report replay --verify FILE [--threads N]"
        );
        ExitCode::FAILURE
    };

    if let Some(path) = flag(args, "--record") {
        let inputs = flag_usize(args, "--inputs", 256);
        let seed = flag_usize(args, "--seed", 7) as u64;
        let group = flag_usize(args, "--group", 4);
        let fault_rate: f64 = flag(args, "--fault-rate")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0);
        let tune = args.iter().any(|a| a == "--tune");

        let mut options = RunOptions::default()
            .config(SpecConfig {
                group_size: group,
                ..SpecConfig::default()
            })
            .seed(seed);
        if fault_rate > 0.0 {
            options = options.faults(
                FaultPlan::new(seed ^ 0xFA17).validation_mismatch(FaultRule::transient(fault_rate)),
            );
        }
        if tune {
            options = options.retune(OnlineTuner::new(seed).every(2));
        }

        let recorder = SessionRecorder::new(Walk(0.0), Step, options).label("walk");
        for chunk in (0..inputs as u64).collect::<Vec<_>>().chunks(16) {
            recorder.push_batch(chunk.iter().map(|&i| i as f64));
        }
        let (outcome, log) = recorder.finish();
        let bytes = log.to_bytes();
        if let Err(e) = std::fs::write(&path, &bytes) {
            eprintln!("--record {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "recorded {} inputs ({} chunks, {} events, {} bytes) to {path}",
            log.input_count(),
            log.chunks.len(),
            log.events.len(),
            bytes.len()
        );
        println!(
            "  seed {seed}  group {group}  outputs {}  aborted {}  retune {}",
            outcome.outputs.len(),
            outcome.report.aborted,
            if tune { "online" } else { "off" }
        );
        ExitCode::SUCCESS
    } else if let Some(path) = flag(args, "--verify") {
        let threads = flag_usize(args, "--threads", 4);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("--verify {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let log = match SessionLog::from_bytes(&bytes) {
            Ok(log) => log,
            Err(e) => {
                eprintln!("--verify {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let env = RunOptions::default().pool(Arc::new(ThreadPool::new(threads)));
        let result = match replay(&log, Walk(0.0), Step, env) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("--verify {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "replayed '{}': {} inputs, {} canonical events compared",
            log.label,
            log.input_count(),
            result.events
        );
        println!(
            "  event divergences {}  trace digest {}  report digest {}",
            result.divergences,
            if result.trace_matched {
                "match"
            } else {
                "MISMATCH"
            },
            if result.report_matched {
                "match"
            } else {
                "MISMATCH"
            },
        );
        if result.is_faithful() {
            println!("replay is faithful");
            ExitCode::SUCCESS
        } else {
            eprintln!("replay DIVERGED from the recording");
            ExitCode::FAILURE
        }
    } else {
        usage()
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("replay") {
        return replay_command(&args[1..]);
    }
    let Some(bench) = args
        .first()
        .and_then(|name| BenchmarkId::all().into_iter().find(|b| b.name() == name))
    else {
        eprintln!(
            "usage: stats-report <bench> [--inputs N] [--threads N] [--seed N]\n\
             \x20                 [--group N] [--window N] [--max-reexec N] [--rollback N]\n\
             \x20                 [--trace FILE.json] [--check]\n\
             \n\
             benchmarks: {}",
            BenchmarkId::all()
                .into_iter()
                .map(BenchmarkId::name)
                .collect::<Vec<_>>()
                .join(" ")
        );
        return ExitCode::FAILURE;
    };
    let inputs = flag_usize(&args, "--inputs", 48);
    let threads = flag_usize(&args, "--threads", 8);
    let seed = flag_usize(&args, "--seed", 7) as u64;
    let trace_out = flag(&args, "--trace");
    let check = args.iter().any(|a| a == "--check");

    let spec = WorkloadSpec {
        inputs,
        ..WorkloadSpec::default()
    };

    with_workload!(bench, |w| {
        let defaults = TradeoffBindings::defaults(&w.tradeoffs());
        let cfg = SpecConfig {
            orig_bindings: defaults.clone(),
            aux_bindings: defaults,
            group_size: flag_usize(&args, "--group", 4),
            window: flag_usize(&args, "--window", 2),
            max_reexec: flag_usize(&args, "--max-reexec", 3),
            rollback: flag_usize(&args, "--rollback", 2),
            ..SpecConfig::default()
        };
        for warning in cfg.lint() {
            eprintln!("warning: {warning}");
        }

        // Sequential observed run: the speculation trace plus the full
        // structured event stream, for the report and the exporters.
        let instance = w.instance(&spec);
        let sink = Arc::new(RecordingSink::new());
        let result = run_protocol_with_options(
            &instance.transition,
            &instance.inputs,
            &instance.initial,
            &RunOptions::default()
                .config(cfg.clone())
                .seed(seed)
                .sink(Arc::clone(&sink) as Arc<dyn EventSink>),
        );
        let events = sink.take();

        println!(
            "stats-report: {} ({} inputs, seed {seed})",
            bench.name(),
            inputs
        );
        println!();
        print!("{}", render_summary(&result.report, &result.trace));

        // Pooled run of the same dependence: real thread-pool counters.
        let instance = w.instance(&spec);
        let pool = Arc::new(ThreadPool::new(threads));
        let began = std::time::Instant::now();
        let outcome = StateDependence::new(instance.inputs, instance.initial, instance.transition)
            .with_options(
                RunOptions::default()
                    .pool(Arc::clone(&pool))
                    .config(cfg)
                    .seed(seed),
            )
            .run();
        let wall = began.elapsed();
        let m = pool.metrics();
        println!();
        println!("thread pool ({threads} workers, pooled re-run):");
        println!(
            "  jobs executed     {:>8}    steals {:>4}    peak injector depth {}",
            m.jobs_executed, m.steals, m.max_injector_depth
        );
        println!(
            "  busy {:?} over {:?} wall — utilization {:.1}%",
            m.total_busy(),
            wall,
            100.0 * m.utilization(wall)
        );
        assert_eq!(
            outcome.outputs.len(),
            result.outputs.len(),
            "pooled run must cover every input"
        );

        if let Some(path) = trace_out {
            let json = chrome_trace_json(&result.trace, &events);
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("--trace {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "\ntrace written to {path} ({} events recorded)",
                events.len()
            );
        }
        if check {
            match validate_backward_deps(&result.trace) {
                Ok(()) => println!("check: all dependence edges point backward"),
                Err(e) => {
                    eprintln!("check failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        ExitCode::SUCCESS
    })
}
