//! `stats-report` — human-readable observability report for one STATS run.
//!
//! Runs a benchmark's state dependence once sequentially (recording the
//! structured event stream and the speculation trace) and once on the
//! work-stealing pool (recording pool counters), then prints the per-group
//! timeline, the work-split table, and pool utilization.
//!
//! ```text
//! stats-report swaptions --inputs 48 --threads 8
//! stats-report bodytrack --trace bodytrack.trace.json --check
//! ```
//!
//! `--trace FILE` writes the run as Chrome trace-event JSON (loads in
//! `chrome://tracing` / Perfetto: one lane per virtual-schedule slot plus
//! wall-clock spans per runtime thread). `--check` validates that every
//! dependence edge in the recorded trace points backward and exits
//! non-zero otherwise.

use std::process::ExitCode;
use std::sync::Arc;

use stats::core::obs::{chrome_trace_json, render_summary, validate_backward_deps};
use stats::core::{
    run_protocol_with_options, EventSink, RecordingSink, RunOptions, SpecConfig, StateDependence,
    ThreadPool, TradeoffBindings,
};
use stats::workloads::{with_workload, BenchmarkId, Workload, WorkloadSpec};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_usize(args: &[String], name: &str, default: usize) -> usize {
    flag(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(bench) = args
        .first()
        .and_then(|name| BenchmarkId::all().into_iter().find(|b| b.name() == name))
    else {
        eprintln!(
            "usage: stats-report <bench> [--inputs N] [--threads N] [--seed N]\n\
             \x20                 [--group N] [--window N] [--max-reexec N] [--rollback N]\n\
             \x20                 [--trace FILE.json] [--check]\n\
             \n\
             benchmarks: {}",
            BenchmarkId::all()
                .into_iter()
                .map(BenchmarkId::name)
                .collect::<Vec<_>>()
                .join(" ")
        );
        return ExitCode::FAILURE;
    };
    let inputs = flag_usize(&args, "--inputs", 48);
    let threads = flag_usize(&args, "--threads", 8);
    let seed = flag_usize(&args, "--seed", 7) as u64;
    let trace_out = flag(&args, "--trace");
    let check = args.iter().any(|a| a == "--check");

    let spec = WorkloadSpec {
        inputs,
        ..WorkloadSpec::default()
    };

    with_workload!(bench, |w| {
        let defaults = TradeoffBindings::defaults(&w.tradeoffs());
        let cfg = SpecConfig {
            orig_bindings: defaults.clone(),
            aux_bindings: defaults,
            group_size: flag_usize(&args, "--group", 4),
            window: flag_usize(&args, "--window", 2),
            max_reexec: flag_usize(&args, "--max-reexec", 3),
            rollback: flag_usize(&args, "--rollback", 2),
            ..SpecConfig::default()
        };
        for warning in cfg.lint() {
            eprintln!("warning: {warning}");
        }

        // Sequential observed run: the speculation trace plus the full
        // structured event stream, for the report and the exporters.
        let instance = w.instance(&spec);
        let sink = Arc::new(RecordingSink::new());
        let result = run_protocol_with_options(
            &instance.transition,
            &instance.inputs,
            &instance.initial,
            &RunOptions::default()
                .config(cfg.clone())
                .seed(seed)
                .sink(Arc::clone(&sink) as Arc<dyn EventSink>),
        );
        let events = sink.take();

        println!(
            "stats-report: {} ({} inputs, seed {seed})",
            bench.name(),
            inputs
        );
        println!();
        print!("{}", render_summary(&result.report, &result.trace));

        // Pooled run of the same dependence: real thread-pool counters.
        let instance = w.instance(&spec);
        let pool = Arc::new(ThreadPool::new(threads));
        let began = std::time::Instant::now();
        let outcome = StateDependence::new(instance.inputs, instance.initial, instance.transition)
            .with_options(
                RunOptions::default()
                    .pool(Arc::clone(&pool))
                    .config(cfg)
                    .seed(seed),
            )
            .run();
        let wall = began.elapsed();
        let m = pool.metrics();
        println!();
        println!("thread pool ({threads} workers, pooled re-run):");
        println!(
            "  jobs executed     {:>8}    steals {:>4}    peak injector depth {}",
            m.jobs_executed, m.steals, m.max_injector_depth
        );
        println!(
            "  busy {:?} over {:?} wall — utilization {:.1}%",
            m.total_busy(),
            wall,
            100.0 * m.utilization(wall)
        );
        assert_eq!(
            outcome.outputs.len(),
            result.outputs.len(),
            "pooled run must cover every input"
        );

        if let Some(path) = trace_out {
            let json = chrome_trace_json(&result.trace, &events);
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("--trace {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "\ntrace written to {path} ({} events recorded)",
                events.len()
            );
        }
        if check {
            match validate_backward_deps(&result.trace) {
                Ok(()) => println!("check: all dependence edges point backward"),
                Err(e) => {
                    eprintln!("check failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        ExitCode::SUCCESS
    })
}
