//! `stats-cli` — drive the STATS reproduction from the command line.
//!
//! ```text
//! stats-cli bench bodytrack --mode par --threads 28 --inputs 96
//! stats-cli tune streamcluster --budget 60 --objective energy
//! stats-cli compile program.stats --dep d=3,1 --run step__aux_d 7
//! stats-cli gantt bodytrack --threads 8 --inputs 24
//! stats-cli list
//! ```

use std::process::ExitCode;

use stats::autotune::Objective;
use stats::compiler::{backend, frontend, interp::Value, midend, opt};
use stats::profiler::{expand_trace, measure, tune, Mode, RunSettings};
use stats::sim::simulate;
use stats::workloads::{with_workload, BenchmarkId, Workload, WorkloadSpec};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("bench") => cmd_bench(&args[1..]),
        Some("tune") => cmd_tune(&args[1..]),
        Some("compile") => cmd_compile(&args[1..]),
        Some("gantt") => cmd_gantt(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("list") => {
            for b in BenchmarkId::all() {
                let (tradeoffs, shape) =
                    with_workload!(b, |w| (w.tradeoffs().len(), w.dependence_shape()));
                println!(
                    "{:<18} {} tradeoffs, state shape: {:?}",
                    b.name(),
                    tradeoffs,
                    shape
                );
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: stats-cli <bench|tune|compile|gantt|list> [options]\n\
                 \n\
                 bench <name> [--mode sequential|original|seq|par] [--threads N] [--inputs N]\n\
                 tune <name> [--threads N] [--inputs N] [--budget N] [--objective time|energy]\n\
                 compile <file.stats> [--dep NAME=i,j,..] [--run FN ARGS..] [--optimize]\n\
                 gantt <name> [--threads N] [--inputs N] [--width N]\n\
                 trace <name> --out FILE.json [--threads N] [--inputs N]\n\
                 list"
            );
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_usize(args: &[String], name: &str, default: usize) -> usize {
    flag(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn parse_bench(args: &[String]) -> Option<BenchmarkId> {
    let name = args.first()?;
    BenchmarkId::all().into_iter().find(|b| b.name() == name)
}

fn cmd_bench(args: &[String]) -> ExitCode {
    let Some(bench) = parse_bench(args) else {
        eprintln!("unknown benchmark; try `stats-cli list`");
        return ExitCode::FAILURE;
    };
    let threads = flag_usize(args, "--threads", 28);
    let spec = WorkloadSpec {
        inputs: flag_usize(args, "--inputs", 64),
        ..WorkloadSpec::default()
    };
    let mode = match flag(args, "--mode").as_deref() {
        Some("sequential") => Mode::Sequential,
        Some("original") => Mode::Original,
        Some("seq") => Mode::SeqStats,
        _ => Mode::ParStats,
    };
    let (m, seq_time) = with_workload!(bench, |w| {
        let m = measure(&w, &spec, &RunSettings::for_mode(&w, mode, threads));
        let seq = measure(&w, &spec, &RunSettings::for_mode(&w, Mode::Sequential, 1));
        (m, seq.time_s)
    });
    println!(
        "benchmark: {}  mode: {mode:?}  threads: {threads}",
        bench.name()
    );
    println!(
        "time: {:.4}s  ({:.2}x over sequential)  energy: {:.1} J  utilization: {:.0}%",
        m.time_s,
        seq_time / m.time_s,
        m.energy_j,
        m.utilization * 100.0
    );
    println!("output error: {:.5}", m.output_error);
    println!("speculation: {}", m.report);
    ExitCode::SUCCESS
}

fn cmd_tune(args: &[String]) -> ExitCode {
    let Some(bench) = parse_bench(args) else {
        eprintln!("unknown benchmark; try `stats-cli list`");
        return ExitCode::FAILURE;
    };
    let threads = flag_usize(args, "--threads", 28);
    let budget = flag_usize(args, "--budget", 48);
    let spec = WorkloadSpec {
        inputs: flag_usize(args, "--inputs", 64),
        ..WorkloadSpec::default()
    };
    let objective = match flag(args, "--objective").as_deref() {
        Some("energy") => Objective::Energy,
        _ => Objective::Time,
    };
    let (result, seq_time) = with_workload!(bench, |w| {
        let r = tune(&w, &spec, threads, objective, budget, 0xCA11);
        let seq = measure(&w, &spec, &RunSettings::for_mode(&w, Mode::Sequential, 1));
        (r, seq.time_s)
    });
    println!(
        "{}: best of {budget} configurations ({threads} threads, {:?})",
        bench.name(),
        objective
    );
    let c = &result.best.spec_config;
    println!(
        "config: speculate={} group={} window={} reexec={} rollback={} \
         t_orig={} alloc={}",
        c.speculate,
        c.group_size,
        c.window,
        c.max_reexec,
        c.rollback,
        result.best.t_orig,
        result.best.alloc
    );
    println!("aux bindings: {:?}", c.aux_bindings);
    println!(
        "time: {:.4}s ({:.2}x)  energy: {:.1} J  error: {:.5}",
        result.best_measurement.time_s,
        seq_time / result.best_measurement.time_s,
        result.best_measurement.energy_j,
        result.best_measurement.output_error
    );
    let curve = result.outcome.history.best_so_far_curve();
    if let Some(p) = result.outcome.history.convergence_point(0.01) {
        println!("converged after {p} of {} evaluations", curve.len());
    }
    // Which state-space dimensions mattered? (variance explained)
    let space = with_workload!(bench, |w| stats::profiler::search_space(
        &w,
        threads,
        usize::MAX
    ));
    let names: Vec<&str> = space.params().iter().map(|p| p.name.as_str()).collect();
    println!("dimension importance (eta^2):");
    for imp in stats::autotune::parameter_importance(&result.outcome.history)
        .iter()
        .take(5)
    {
        println!(
            "  {:<22} {:>5.1}%  ({} values tried)",
            names.get(imp.dim).copied().unwrap_or("?"),
            imp.eta_squared * 100.0,
            imp.distinct_values
        );
    }
    ExitCode::SUCCESS
}

fn cmd_compile(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("compile: missing <file.stats>");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("compile: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let compiled = match frontend::compile(&source) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("compile: {e}");
            return ExitCode::FAILURE;
        }
    };
    let module = match midend::run(compiled) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("middle-end: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Optional instantiation: --dep NAME=i,j,...
    let mut config = backend::DepConfig::new();
    for (i, a) in args.iter().enumerate() {
        if a == "--dep" {
            if let Some(spec) = args.get(i + 1) {
                if let Some((name, idx)) = spec.split_once('=') {
                    let indices: Vec<i64> = idx.split(',').filter_map(|v| v.parse().ok()).collect();
                    config.insert(name.to_string(), indices);
                }
            }
        }
    }
    let mut binary = if config.is_empty() {
        module
    } else {
        match backend::instantiate(&module, &config) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("back-end: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    if args.iter().any(|a| a == "--optimize") {
        let removed = opt::optimize(&mut binary);
        eprintln!("; optimizer removed {removed} instructions");
    }
    print!("{binary}");

    // Optional execution: --run FN ARGS..
    if let Some(pos) = args.iter().position(|a| a == "--run") {
        let Some(func) = args.get(pos + 1) else {
            eprintln!("--run: missing function name");
            return ExitCode::FAILURE;
        };
        let call_args: Vec<Value> = args[pos + 2..]
            .iter()
            .take_while(|a| !a.starts_with("--"))
            .filter_map(|a| {
                a.parse::<i64>()
                    .map(Value::Int)
                    .ok()
                    .or_else(|| a.parse::<f64>().map(Value::Float).ok())
            })
            .collect();
        match backend::call(&binary, func, &call_args) {
            Ok(v) => println!("; {func}({call_args:?}) = {v:?}"),
            Err(e) => {
                eprintln!("run: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_trace(args: &[String]) -> ExitCode {
    let Some(bench) = parse_bench(args) else {
        eprintln!("unknown benchmark; try `stats-cli list`");
        return ExitCode::FAILURE;
    };
    let Some(out) = flag(args, "--out") else {
        eprintln!("trace: missing --out FILE.json");
        return ExitCode::FAILURE;
    };
    let threads = flag_usize(args, "--threads", 8);
    let spec = WorkloadSpec {
        inputs: flag_usize(args, "--inputs", 24),
        ..WorkloadSpec::default()
    };
    with_workload!(bench, |w| {
        let settings = RunSettings::for_mode(&w, Mode::ParStats, threads);
        let inst = w.instance(&spec);
        let result = stats::core::run_protocol(
            &inst.transition,
            &inst.inputs,
            &inst.initial,
            &settings.spec_config,
            settings.run_seed,
        );
        let graph = expand_trace(&result.trace, &w.original_tlp(), settings.t_orig);
        let schedule = simulate(&graph, &settings.platform, threads);
        let json = stats::sim::export::chrome_trace(&graph, &schedule);
        if let Err(e) = std::fs::write(&out, json) {
            eprintln!("trace: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {out} ({} tasks); open in chrome://tracing or Perfetto",
            graph.len()
        );
        ExitCode::SUCCESS
    })
}

fn cmd_gantt(args: &[String]) -> ExitCode {
    let Some(bench) = parse_bench(args) else {
        eprintln!("unknown benchmark; try `stats-cli list`");
        return ExitCode::FAILURE;
    };
    let threads = flag_usize(args, "--threads", 8);
    let width = flag_usize(args, "--width", 100);
    let spec = WorkloadSpec {
        inputs: flag_usize(args, "--inputs", 24),
        ..WorkloadSpec::default()
    };
    with_workload!(bench, |w| {
        let settings = RunSettings::for_mode(&w, Mode::ParStats, threads);
        let inst = w.instance(&spec);
        let result = stats::core::run_protocol(
            &inst.transition,
            &inst.inputs,
            &inst.initial,
            &settings.spec_config,
            settings.run_seed,
        );
        let graph = expand_trace(&result.trace, &w.original_tlp(), settings.t_orig);
        let schedule = simulate(&graph, &settings.platform, threads);
        println!(
            "{} on {threads} threads — makespan {:.4}s, utilization {:.0}%",
            bench.name(),
            schedule.makespan_seconds(),
            schedule.utilization() * 100.0
        );
        print!("{}", schedule.gantt(width));
        println!("speculation: {}", result.report);
    });
    ExitCode::SUCCESS
}
