//! `stats-lint` — speculation-safety checker for `.stats` programs.
//!
//! Runs the static analysis of [`stats::compiler::analysis`] over one or
//! more source files and prints structured, span-carrying diagnostics:
//!
//! ```text
//! examples/dsl/violations/race_undeclared_state.stats:
//!   error[undeclared-state-race]: dependence `d` reads and writes state
//!   variable `acc` … (at step@1)
//! ```
//!
//! Each file is analyzed twice: once on the front-end output (races,
//! dead-code lints) and once on the middle-end output with the analysis
//! gate disabled (purity of auxiliary clones, interval divergence), so a
//! program the middle-end would reject still gets a *complete* report.
//!
//! Exit status: 0 when no file has error-severity findings (warnings are
//! allowed unless `--deny-warnings`), 1 otherwise, 2 on usage or I/O
//! errors.

use std::process::ExitCode;

use stats::compiler::analysis::{self, Diagnostic, Severity};
use stats::compiler::{frontend, midend};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let deny_warnings = args.iter().any(|a| a == "--deny-warnings");
    let quiet = args.iter().any(|a| a == "-q" || a == "--quiet");
    if let Some(unknown) = args
        .iter()
        .find(|a| a.starts_with('-') && !matches!(a.as_str(), "--deny-warnings" | "-q" | "--quiet"))
    {
        eprintln!("stats-lint: unknown option `{unknown}`");
        return ExitCode::from(2);
    }
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();
    if files.is_empty() {
        eprintln!(
            "usage: stats-lint <file.stats>.. [--deny-warnings] [--quiet]\n\
             \n\
             Checks speculation safety: undeclared state races, impure\n\
             auxiliary clones, tradeoff interval divergence, dead tradeoffs\n\
             and unreachable functions."
        );
        return ExitCode::from(2);
    }

    let mut worst = ExitCode::SUCCESS;
    for path in files {
        match lint_file(path) {
            Ok(diags) => {
                let errors = diags
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .count();
                let warnings = diags.len() - errors;
                if !diags.is_empty() {
                    println!("{path}:");
                    for d in &diags {
                        println!("  {d}");
                    }
                } else if !quiet {
                    println!("{path}: clean");
                }
                if !quiet && !diags.is_empty() {
                    println!("  -> {errors} error(s), {warnings} warning(s)");
                }
                if errors > 0 || (deny_warnings && warnings > 0) {
                    worst = ExitCode::FAILURE;
                }
            }
            Err(msg) => {
                eprintln!("{path}: {msg}");
                return ExitCode::from(2);
            }
        }
    }
    worst
}

/// Compile `path` and collect findings from both pipeline stages.
fn lint_file(path: &str) -> Result<Vec<Diagnostic>, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let compiled = frontend::compile(&source).map_err(|e| format!("{e}"))?;

    let mut diags = analysis::analyze(&compiled.module);
    // Re-run on the middle-end output (gate off: we *want* the findings,
    // not a rejection) to also cover auxiliary clones.
    let options = midend::MidendOptions {
        enforce_analysis: false,
        ..midend::MidendOptions::default()
    };
    match midend::run_with(compiled, options) {
        Ok(module) => diags.extend(analysis::analyze(&module)),
        // A middle-end failure unrelated to analysis (e.g. a getValue
        // interpretation error) is a hard compile problem.
        Err(e) => return Err(format!("{e}")),
    }
    Ok(analysis::dedup_sorted(diags))
}
