//! The paper's flagship scenario end-to-end: autotune and run `bodytrack`.
//!
//! ```text
//! cargo run --release --example body_tracking
//! ```
//!
//! Reproduces the §2.2 story: the analysis of camera quadruple `i+1` waits
//! for the body model produced by quadruple `i`; STATS generates auxiliary
//! code (a cheaper, re-tuned clone of the annealed particle filter) to
//! produce speculative models so blocks of frames overlap. The autotuner
//! explores the state space; the runtime validates every speculative model
//! against original nondeterministic results.

use stats::autotune::Objective;
use stats::profiler::{measure, tune, Mode, RunSettings};
use stats::workloads::bodytrack::BodyTrack;
use stats::workloads::{Workload, WorkloadSpec};

fn main() {
    let workload = BodyTrack;
    let spec = WorkloadSpec {
        inputs: 96, // camera quadruples
        ..WorkloadSpec::default()
    };
    let threads = 28;

    // Reference points: single-threaded and out-of-the-box parallel.
    let sequential = measure(
        &workload,
        &spec,
        &RunSettings::for_mode(&workload, Mode::Sequential, 1),
    );
    let original = measure(
        &workload,
        &spec,
        &RunSettings::for_mode(&workload, Mode::Original, threads),
    );
    println!(
        "sequential: {:.3}s   original ({} threads): {:.3}s ({:.2}x)",
        sequential.time_s,
        threads,
        original.time_s,
        sequential.time_s / original.time_s
    );

    // Autotune the state space (tradeoff indices, group size, auxiliary
    // window, re-execution budget, thread split).
    let result = tune(&workload, &spec, threads, Objective::Time, 48, 7);
    let best = &result.best_measurement;
    println!(
        "Par. STATS (autotuned): {:.3}s ({:.2}x over sequential, {:.2}x over original)",
        best.time_s,
        sequential.time_s / best.time_s,
        original.time_s / best.time_s
    );
    println!(
        "best config: speculate={} group={} window={} reexec={} rollback={} t_orig={}",
        result.best.spec_config.speculate,
        result.best.spec_config.group_size,
        result.best.spec_config.window,
        result.best.spec_config.max_reexec,
        result.best.spec_config.rollback,
        result.best.t_orig,
    );
    println!(
        "speculation: {}/{} groups committed, {} re-executions, aborted={}",
        best.report.committed_speculative_groups(),
        best.report.groups.len().saturating_sub(1),
        best.report.reexecutions,
        best.report.aborted,
    );

    // Output quality is preserved by the run-time checks: the tracking
    // error of the STATS run stays within the nondeterministic envelope.
    println!(
        "tracking error (relative MSE): sequential {:.5}, STATS {:.5}",
        sequential.output_error, best.output_error
    );
    let _ = workload.tradeoffs();
}
