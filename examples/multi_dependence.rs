//! Several state dependences sharing one runtime (paper §3.4: the STATS
//! runtime "includes an efficient thread pool implementation (shared with
//! all state dependences)", and Table 1's streamcluster/streamclassifier
//! rows carry two dependences each).
//!
//! ```text
//! cargo run --release --example multi_dependence
//! ```
//!
//! Two trackers — the body tracker and the face tracker — process their
//! streams concurrently, both speculating over their own state dependence
//! on the same shared pool, with reproducible results.

use std::sync::Arc;

use stats::core::{RunOptions, SpecConfig, StateDependence, ThreadPool, TradeoffBindings};
use stats::workloads::bodytrack::BodyTrack;
use stats::workloads::facedet::FaceDet;
use stats::workloads::{Workload, WorkloadSpec};

fn main() {
    let pool = Arc::new(ThreadPool::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    ));
    let spec = WorkloadSpec {
        inputs: 48,
        ..WorkloadSpec::default()
    };

    // First dependence: the body tracker.
    let body = BodyTrack;
    let body_opts = body.tradeoffs();
    let body_inst = body.instance(&spec);
    let mut body_dep =
        StateDependence::new(body_inst.inputs, body_inst.initial, body_inst.transition)
            .with_options(
                RunOptions::default()
                    .pool(Arc::clone(&pool))
                    .config(SpecConfig {
                        group_size: 6,
                        window: 3,
                        orig_bindings: TradeoffBindings::defaults(&body_opts),
                        aux_bindings: TradeoffBindings::defaults(&body_opts),
                        ..SpecConfig::default()
                    })
                    .seed(1),
            );

    // Second dependence: the face tracker, on the same pool.
    let face = FaceDet;
    let face_opts = face.tradeoffs();
    let face_inst = face.instance(&spec);
    let mut face_dep =
        StateDependence::new(face_inst.inputs, face_inst.initial, face_inst.transition)
            .with_options(
                RunOptions::default()
                    .pool(Arc::clone(&pool))
                    .config(SpecConfig {
                        group_size: 6,
                        window: 4,
                        orig_bindings: TradeoffBindings::defaults(&face_opts),
                        aux_bindings: TradeoffBindings::defaults(&face_opts),
                        ..SpecConfig::default()
                    })
                    .seed(2),
            );

    // Both execution models run in parallel with this thread *and* with
    // each other, sharing workers.
    body_dep.start();
    face_dep.start();
    let body_out = body_dep.join();
    let face_out = face_dep.join();

    println!(
        "bodytrack: {} frames, {}/{} speculative groups committed, error {:.5}",
        body_out.outputs.len(),
        body_out.report.committed_speculative_groups(),
        body_out.report.groups.len().saturating_sub(1),
        body.output_error(&spec, &body_out.outputs),
    );
    println!(
        "facedet:   {} frames, {}/{} speculative groups committed, error {:.3}",
        face_out.outputs.len(),
        face_out.report.committed_speculative_groups(),
        face_out.report.groups.len().saturating_sub(1),
        face.output_error(&spec, &face_out.outputs),
    );

    // Reproducibility holds per dependence even under pool sharing.
    let body_again = {
        let inst = body.instance(&spec);
        StateDependence::new(inst.inputs, inst.initial, inst.transition)
            .with_options(
                RunOptions::default()
                    .pool(pool)
                    .config(SpecConfig {
                        group_size: 6,
                        window: 3,
                        orig_bindings: TradeoffBindings::defaults(&body_opts),
                        aux_bindings: TradeoffBindings::defaults(&body_opts),
                        ..SpecConfig::default()
                    })
                    .seed(1),
            )
            .run()
    };
    assert_eq!(body_again.outputs, body_out.outputs);
    println!("re-run with the same seed reproduced bodytrack's outputs exactly");
}
