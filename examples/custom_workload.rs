//! Bring your own application: implement [`Workload`] for a custom
//! nondeterministic computation and let the whole STATS pipeline —
//! profiler, autotuner, platform model — work on it.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```
//!
//! The application here is a randomized Kalman-style channel estimator: a
//! stream of radio frames updates a channel gain estimate; each update
//! consults the previous estimate (the state dependence) and uses
//! randomized probing (the nondeterminism). The estimate forgets old frames
//! exponentially — the §4.8 "short memory" property — so it is a good
//! STATS fit.

use std::sync::Arc;

use stats::autotune::Objective;
use stats::core::{
    EnumeratedTradeoff, InvocationCtx, SpecState, StateTransition, TradeoffOptions, TradeoffValue,
};
use stats::profiler::{measure, tune, Mode, RunSettings};
use stats::workloads::{
    between_originals, BenchmarkId, DependenceShape, Instance, OriginalTlp, Workload, WorkloadSpec,
};

/// The channel estimate (the dependence's state).
#[derive(Clone, Debug)]
struct Channel {
    gain: f64,
    confidence: f64,
}

impl SpecState for Channel {
    fn matches_any(&self, originals: &[Self]) -> bool {
        if originals.len() == 1 {
            return (self.gain - originals[0].gain).abs() < 0.05;
        }
        between_originals(self, originals, |a, b| (a.gain - b.gain).abs())
    }
}

/// One frame's processing: probe the channel `probes` times, blend into the
/// running estimate.
struct Estimator {
    true_gains: Arc<Vec<f64>>,
}

impl StateTransition for Estimator {
    type Input = usize;
    type State = Channel;
    type Output = f64;

    fn compute_output(&self, frame: &usize, state: &mut Channel, ctx: &mut InvocationCtx) -> f64 {
        let probes = ctx.tradeoff_int("numProbes").max(1) as usize;
        let truth = self.true_gains[*frame];
        let mut measured = 0.0;
        for _ in 0..probes {
            measured += truth + ctx.normal(0.0, 0.05);
        }
        measured /= probes as f64;
        let alpha = 0.6; // exponential forgetting: short memory
        state.gain = alpha * measured + (1.0 - alpha) * state.gain;
        state.confidence = probes as f64;
        ctx.charge(probes as f64 * 20.0);
        state.gain
    }
}

/// The Workload glue: tradeoffs, generators, metrics, TLP model.
struct ChannelEstimation;

fn true_gains(spec: &WorkloadSpec) -> Vec<f64> {
    (0..spec.inputs)
        .map(|t| 1.0 + 0.4 * ((t as f64) * 0.2 + spec.seed as f64).sin())
        .collect()
}

impl Workload for ChannelEstimation {
    type T = Estimator;

    fn id(&self) -> BenchmarkId {
        // Custom workloads reuse an existing id slot only for display
        // purposes in shared tooling; everything else is our own.
        BenchmarkId::Swaptions
    }

    fn tradeoffs(&self) -> Vec<Arc<dyn TradeoffOptions>> {
        vec![Arc::new(EnumeratedTradeoff::new(
            "numProbes",
            vec![
                TradeoffValue::Int(2),
                TradeoffValue::Int(4),
                TradeoffValue::Int(8),
                TradeoffValue::Int(16),
            ],
            2,
        ))]
    }

    fn instance(&self, spec: &WorkloadSpec) -> Instance<Estimator> {
        Instance {
            inputs: (0..spec.inputs).collect(),
            initial: Channel {
                gain: 1.0,
                confidence: 0.0,
            },
            transition: Estimator {
                true_gains: Arc::new(true_gains(spec)),
            },
        }
    }

    fn output_distance(&self, a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len().max(1) as f64
    }

    fn output_error(&self, spec: &WorkloadSpec, outputs: &[f64]) -> f64 {
        let truth = true_gains(spec);
        outputs
            .iter()
            .zip(&truth)
            .map(|(o, t)| (o - t).abs())
            .sum::<f64>()
            / outputs.len().max(1) as f64
    }

    fn original_tlp(&self) -> OriginalTlp {
        // The app has no internal threading: all TLP must come from STATS.
        OriginalTlp {
            parallel_fraction: 0.0,
            sync_overhead: 0.0,
            max_threads: 1,
            mem_fraction: 0.1,
        }
    }

    fn dependence_shape(&self) -> DependenceShape {
        DependenceShape::Complex
    }
}

fn main() {
    let workload = ChannelEstimation;
    let spec = WorkloadSpec {
        inputs: 96,
        ..WorkloadSpec::default()
    };
    let threads = 16;

    let seq = measure(
        &workload,
        &spec,
        &RunSettings::for_mode(&workload, Mode::Sequential, 1),
    );
    println!(
        "sequential: {:.4}s, estimation error {:.4}",
        seq.time_s, seq.output_error
    );

    let result = tune(&workload, &spec, threads, Objective::Time, 32, 1);
    let m = &result.best_measurement;
    println!(
        "autotuned STATS ({} threads): {:.4}s ({:.2}x), error {:.4}",
        threads,
        m.time_s,
        seq.time_s / m.time_s,
        m.output_error
    );
    println!(
        "config: group={} window={} probes(aux)={:?}",
        result.best.spec_config.group_size,
        result.best.spec_config.window,
        result
            .best
            .spec_config
            .aux_bindings
            .get("numProbes")
            .and_then(|v| v.as_int()),
    );
    println!("speculation: {}", m.report);
    assert!(m.time_s < seq.time_s, "STATS should beat sequential here");
}
