//! STATS in energy mode (paper Figure 15): retarget the autotuner from
//! performance to energy and reuse the exploration database.
//!
//! ```text
//! cargo run --release --example energy_tuning
//! ```

use stats::autotune::Objective;
use stats::profiler::{measure, retune, tune, Mode, RunSettings};
use stats::workloads::streamcluster::StreamCluster;
use stats::workloads::WorkloadSpec;

fn main() {
    let workload = StreamCluster;
    let spec = WorkloadSpec {
        inputs: 64,
        ..WorkloadSpec::default()
    };
    let threads = 28;

    let original = measure(
        &workload,
        &spec,
        &RunSettings::for_mode(&workload, Mode::Original, threads),
    );
    println!(
        "original ({} threads): {:.3}s, {:.0} J",
        threads, original.time_s, original.energy_j
    );

    // Performance mode: finish earlier, save energy as a side effect.
    let perf = tune(&workload, &spec, threads, Objective::Time, 48, 11);
    println!(
        "STATS perf mode:   {:.3}s, {:.0} J ({:.1}% of original energy)",
        perf.best_measurement.time_s,
        perf.best_measurement.energy_j,
        perf.best_measurement.energy_j / original.energy_j * 100.0
    );

    // Energy mode: also avoid cores whose marginal speedup is not worth
    // their power. The profiler measured both time and energy on every
    // trial, so the exploration database transfers between objectives
    // without re-profiling (§3.2).
    let energy = retune(&workload, &spec, threads, Objective::Energy, 48, 11, &perf);
    println!(
        "STATS energy mode: {:.3}s, {:.0} J ({:.1}% of original energy)",
        energy.best_measurement.time_s,
        energy.best_measurement.energy_j,
        energy.best_measurement.energy_j / original.energy_j * 100.0
    );
    println!(
        "energy-mode thread split: t_orig = {} of {} threads",
        energy.best.t_orig, threads
    );
}
