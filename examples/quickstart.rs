//! Quickstart: make a state dependence explicit and let STATS parallelize
//! a nondeterministic stream computation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The computation is a toy sensor-smoothing loop: each input reading is
//! blended into a running estimate with a randomized jitter (the
//! nondeterminism), and the estimate feeds forward to the next reading —
//! the `Input x State -> Output x State'` pattern of the paper's Figure 4.
//! Because the estimate forgets old readings exponentially, auxiliary code
//! that replays only the last few readings reproduces the state: STATS can
//! overlap blocks of the stream.

use stats::core::{
    InvocationCtx, RunOptions, SpecConfig, SpecState, StateDependence, StateTransition,
};

/// Running estimate of the sensor value.
#[derive(Clone, Debug)]
struct Estimate(f64);

impl SpecState for Estimate {
    fn matches_any(&self, originals: &[Self]) -> bool {
        // Developer-chosen strictness: accept within the jitter envelope.
        originals.iter().any(|o| (o.0 - self.0).abs() < 0.2)
    }
}

/// One smoothing step: `estimate = 0.7 * reading + 0.3 * estimate + noise`.
struct Smooth;

impl StateTransition for Smooth {
    type Input = f64;
    type State = Estimate;
    type Output = f64;

    fn compute_output(&self, reading: &f64, state: &mut Estimate, ctx: &mut InvocationCtx) -> f64 {
        let noise = ctx.normal(0.0, 0.02);
        state.0 = 0.7 * reading + 0.3 * state.0 + noise;
        ctx.charge(50.0); // abstract work units (used by the platform model)
        state.0
    }
}

fn main() {
    // A noisy sensor trace.
    let readings: Vec<f64> = (0..256).map(|i| (i as f64 * 0.05).sin() * 10.0).collect();

    // Group the stream into blocks of 16; auxiliary code replays the last
    // 4 readings from the initial state to produce each block's speculative
    // starting estimate; mismatches re-execute up to twice before aborting.
    let config = SpecConfig {
        group_size: 16,
        window: 4,
        max_reexec: 2,
        rollback: 2,
        ..SpecConfig::default()
    };

    let mut dep = StateDependence::new(readings, Estimate(0.0), Smooth)
        .with_options(RunOptions::default().config(config).seed(42));

    // The paper's Figure 9 API: start() begins the execution model in
    // parallel with this thread; join() waits for all inputs.
    dep.start();
    let outcome = dep.join();

    println!("processed {} readings", outcome.outputs.len());
    println!("final estimate: {:.3}", outcome.final_state.0);
    println!(
        "speculative groups committed: {}/{}",
        outcome.report.committed_speculative_groups(),
        outcome.report.groups.len().saturating_sub(1),
    );
    println!(
        "re-executions: {}, aborted: {}",
        outcome.report.reexecutions, outcome.report.aborted
    );
    println!(
        "work: original {:.0}, auxiliary {:.0}, squashed {:.0} (units)",
        outcome.report.committed_original_work,
        outcome.report.committed_aux_work,
        outcome.report.squashed_work,
    );
    assert_eq!(outcome.outputs.len(), 256);
}
