//! Drive the three STATS compilers by hand (paper §3.4).
//!
//! ```text
//! cargo run --release --example compiler_pipeline
//! ```
//!
//! A `.stats` source (the SDI/TI language extensions) flows through the
//! front-end (descriptor tables + AST), the middle-end (auxiliary-code
//! cloning over the call graph, default-pinning of global tradeoffs), and
//! the back-end (per-configuration instantiation, with tradeoff values
//! fetched by "dynamically compiling" `getValue(i)`), and the resulting
//! "binaries" execute on the IR interpreter.

use stats::compiler::{backend, frontend, midend};

const SOURCE: &str = r#"
# A miniature bodytrack: the per-frame model update with two tradeoffs.
tradeoff numAnnealingLayers { max_index = 10; default_index = 4; value(i) = i + 1; }
tradeoff numParticles { values = [16, 32, 64, 128]; default_index = 2; }

state_dependence body { compute = update_model; }

fn anneal(frame, layers) {
    let acc = 0;
    let l = 0;
    while (l < layers) {
        acc = acc + frame * (l + 1);
        l = l + 1;
    }
    return acc;
}

fn update_model(frame) {
    let layers = tradeoff numAnnealingLayers;
    let particles = tradeoff numParticles;
    return anneal(frame, layers) * particles;
}
"#;

fn main() {
    // Front-end: extended source -> AST + descriptor tables (Figure 11).
    let compiled = frontend::compile(SOURCE).expect("front-end");
    println!(
        "front-end generated {} descriptor lines:",
        compiled.generated_loc()
    );
    for line in compiled.lowered_source.lines().take(6) {
        println!("  | {line}");
    }

    // Middle-end: clone compute_output (and every tradeoff-carrying callee)
    // into auxiliary code; pin global tradeoffs to their defaults.
    let before = compiled.module.inst_count();
    let module = midend::run(compiled).expect("middle-end");
    println!(
        "\nmiddle-end: {} -> {} IR instructions (+{:.0}% from auxiliary cloning)",
        before,
        module.inst_count(),
        (module.inst_count() as f64 / before as f64 - 1.0) * 100.0
    );
    let dep = module.metadata.state_dep("body").expect("dependence row");
    println!(
        "auxiliary clone: {} with tunable tradeoffs {:?}",
        dep.aux_fn.as_deref().unwrap_or("-"),
        dep.aux_tradeoffs
    );

    // Back-end: instantiate two configurations of the same IR and run them.
    for (label, indices) in [("cheapest", vec![0, 0]), ("highest-quality", vec![9, 3])] {
        let config = [("body".to_string(), indices)].into_iter().collect();
        let binary = backend::instantiate(&module, &config).expect("back-end");
        let aux_out = backend::call(&binary, "update_model__aux_body", &[10.into()])
            .expect("aux run")
            .expect("value");
        let orig_out = backend::call(&binary, "update_model", &[10.into()])
            .expect("original run")
            .expect("value");
        println!(
            "{label:>16}: auxiliary update_model(10) = {:?}, original = {:?} (defaults)",
            aux_out, orig_out
        );
    }
}
