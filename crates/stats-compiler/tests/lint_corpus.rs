//! Golden test over the seeded-violation corpus in `examples/dsl/`.
//!
//! Every file under `examples/dsl/violations/` declares its expected lint
//! in a leading `// LINT: <name>` comment; the analysis must report that
//! lint (and, for error-severity lints, the middle-end gate must refuse
//! the program). Every other `.stats` file in `examples/dsl/` must come
//! out of `stats-lint`'s pipeline with no findings at all.

use std::path::{Path, PathBuf};

use stats_compiler::analysis::{self, Diagnostic};
use stats_compiler::frontend;
use stats_compiler::midend::{self, MidendOptions};

fn dsl_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/dsl")
}

fn stats_files(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "stats"))
        .collect();
    out.sort();
    out
}

/// The `stats-lint` pipeline: analyze the front-end output, then the
/// middle-end output with the gate off, and merge.
fn lint(source: &str) -> Vec<Diagnostic> {
    let compiled = frontend::compile(source).expect("corpus file must compile");
    let mut diags = analysis::analyze(&compiled.module);
    let module = midend::run_with(
        compiled,
        MidendOptions {
            enforce_analysis: false,
            ..MidendOptions::default()
        },
    )
    .expect("middle-end must succeed with the gate off");
    diags.extend(analysis::analyze(&module));
    analysis::dedup_sorted(diags)
}

fn expected_lint(source: &str) -> String {
    source
        .lines()
        .find_map(|l| l.trim().strip_prefix("// LINT:"))
        .expect("violation file must carry a `// LINT: <name>` header")
        .trim()
        .to_string()
}

#[test]
fn every_violation_file_flags_its_expected_lint() {
    let files = stats_files(&dsl_dir().join("violations"));
    assert!(files.len() >= 5, "corpus went missing: {files:?}");
    for path in files {
        let source = std::fs::read_to_string(&path).unwrap();
        let expected = expected_lint(&source);
        let diags = lint(&source);
        assert!(
            diags.iter().any(|d| d.lint.name() == expected),
            "{}: expected lint `{expected}`, got {diags:?}",
            path.display()
        );
    }
}

#[test]
fn error_severity_violations_are_rejected_by_the_midend_gate() {
    for path in stats_files(&dsl_dir().join("violations")) {
        let source = std::fs::read_to_string(&path).unwrap();
        let diags = lint(&source);
        let has_errors = analysis::has_errors(&diags);
        let gated = midend::run(frontend::compile(&source).unwrap());
        match (has_errors, gated) {
            (true, Err(frontend::CompileError::Analysis(d))) => {
                assert!(analysis::has_errors(&d), "{}", path.display());
            }
            (true, other) => panic!(
                "{}: expected analysis rejection, got {other:?}",
                path.display()
            ),
            (false, result) => {
                result
                    .unwrap_or_else(|e| panic!("{}: warnings must not gate: {e}", path.display()));
            }
        }
    }
}

#[test]
fn shipped_examples_are_clean() {
    let files = stats_files(&dsl_dir());
    assert!(!files.is_empty());
    for path in files {
        let source = std::fs::read_to_string(&path).unwrap();
        let diags = lint(&source);
        assert!(
            diags.is_empty(),
            "{}: shipped example must lint clean, got {diags:?}",
            path.display()
        );
    }
}
