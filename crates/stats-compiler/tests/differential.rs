//! Differential testing across three engines: a reference AST evaluator
//! (the "tree interpreter"), the slot-resolved interpreter, and the flat
//! bytecode interpreter, over randomly generated programs. The slot and
//! bytecode engines must agree *exactly* — same values AND same errors
//! (including static `ExecError::UnassignedRegister`) — while the AST
//! reference pins the integer semantics both must implement. Any
//! divergence is a bug in the lowerer, an interpreter, the bytecode
//! compiler, or (when the optimizer runs) an optimization pass.

use proptest::prelude::*;
use stats_compiler::ast::{BinOp, Expr, FnDef, Stmt};
use stats_compiler::bytecode::BytecodeInterp;
use stats_compiler::interp::{Interp, Value};
use stats_compiler::ir::Module;
use stats_compiler::lower::{lower_fn, validate};
use stats_compiler::opt;

/// Reference evaluator over the AST (integer-only semantics, wrapping
/// arithmetic, mirroring the interpreter's `i64` rules).
fn eval_expr(e: &Expr, env: &std::collections::HashMap<String, i64>) -> Option<i64> {
    Some(match e {
        Expr::Int(v) => *v,
        Expr::Float(_)
        | Expr::TradeoffRef(_)
        | Expr::Call(..)
        | Expr::TradeoffCall(..)
        | Expr::TradeoffCast(..) => return None,
        Expr::Var(n) => *env.get(n)?,
        Expr::Neg(x) => 0i64.wrapping_sub(eval_expr(x, env)?),
        Expr::Not(x) => (eval_expr(x, env)? == 0) as i64,
        Expr::Bin(op, a, b) => {
            let x = eval_expr(a, env)?;
            let y = eval_expr(b, env)?;
            match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::Div => {
                    if y == 0 {
                        return None;
                    }
                    x.wrapping_div(y)
                }
                BinOp::Rem => {
                    if y == 0 {
                        return None;
                    }
                    x.wrapping_rem(y)
                }
                BinOp::Lt => (x < y) as i64,
                BinOp::Le => (x <= y) as i64,
                BinOp::Gt => (x > y) as i64,
                BinOp::Ge => (x >= y) as i64,
                BinOp::Eq => (x == y) as i64,
                BinOp::Ne => (x != y) as i64,
                BinOp::And => ((x != 0) && (y != 0)) as i64,
                BinOp::Or => ((x != 0) || (y != 0)) as i64,
            }
        }
    })
}

/// Execute a straight-line body of let/assign/if statements, returning the
/// value of the final `return`.
fn eval_body(
    stmts: &[Stmt],
    env: &mut std::collections::HashMap<String, i64>,
) -> Option<Option<i64>> {
    for s in stmts {
        match s {
            Stmt::Let(n, e) => {
                let v = eval_expr(e, env)?;
                env.insert(n.clone(), v);
            }
            Stmt::Assign(n, e) => {
                let v = eval_expr(e, env)?;
                if !env.contains_key(n) {
                    return None; // lowering rejects this; skip
                }
                env.insert(n.clone(), v);
            }
            Stmt::Return(e) => {
                let v = eval_expr(e, env)?;
                return Some(Some(v));
            }
            Stmt::If(c, t, f) => {
                let cond = eval_expr(c, env)?;
                let branch = if cond != 0 { t } else { f };
                if let Some(ret) = eval_body(branch, env)? {
                    return Some(Some(ret));
                }
            }
            Stmt::While(c, b) => {
                let mut fuel = 10_000u32;
                loop {
                    let cond = eval_expr(c, env)?;
                    if cond == 0 {
                        break;
                    }
                    if let Some(ret) = eval_body(b, env)? {
                        return Some(Some(ret));
                    }
                    fuel = fuel.checked_sub(1)?;
                }
            }
            Stmt::For(var, lo, hi, b) => {
                let start = eval_expr(lo, env)?;
                let end = eval_expr(hi, env)?;
                let mut i = start;
                while i < end {
                    env.insert(var.clone(), i);
                    if let Some(ret) = eval_body(b, env)? {
                        return Some(Some(ret));
                    }
                    // The desugared loop increments the variable slot, so
                    // body writes to it affect iteration; mirror that.
                    i = env.get(var).copied()?.wrapping_add(1);
                }
                env.insert(var.clone(), i);
            }
            Stmt::Expr(_) => return None,
        }
    }
    Some(None)
}

/// Expression strategy over variables `a`, `b` with arithmetic/compare ops.
fn arb_expr(depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-50i64..50).prop_map(Expr::Int),
        Just(Expr::Var("a".into())),
        Just(Expr::Var("b".into())),
    ];
    leaf.prop_recursive(depth, 64, 2, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Rem),
                    Just(BinOp::Lt),
                    Just(BinOp::Le),
                    Just(BinOp::Gt),
                    Just(BinOp::Ge),
                    Just(BinOp::Eq),
                    Just(BinOp::Ne),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::Bin(op, Box::new(a), Box::new(b))),
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

/// Statement-list strategy: lets, assigns to existing names, ifs, bounded
/// for-loops, ending in a return.
fn arb_body() -> impl Strategy<Value = Vec<Stmt>> {
    let stmt = prop_oneof![
        arb_expr(2).prop_map(|e| Stmt::Let("x".into(), e)),
        arb_expr(2).prop_map(|e| Stmt::Let("y".into(), e)),
        (arb_expr(2), arb_expr(1), arb_expr(1)).prop_map(|(c, t, f)| {
            Stmt::If(
                c,
                vec![Stmt::Let("x".into(), t)],
                vec![Stmt::Let("y".into(), f)],
            )
        }),
        // Bounded for-loop accumulating into x (trip count <= 8).
        (0i64..8, arb_expr(1)).prop_map(|(n, body)| {
            Stmt::For(
                "i".into(),
                Expr::Int(0),
                Expr::Int(n),
                vec![Stmt::Let(
                    "x".into(),
                    Expr::Bin(BinOp::Add, Box::new(Expr::Var("x".into())), Box::new(body)),
                )],
            )
        }),
    ];
    (proptest::collection::vec(stmt, 0..6), arb_expr(3)).prop_map(|(mut body, ret)| {
        // Make x/y defined before any use.
        let mut stmts = vec![
            Stmt::Let("x".into(), Expr::Int(1)),
            Stmt::Let("y".into(), Expr::Int(2)),
        ];
        stmts.append(&mut body);
        stmts.push(Stmt::Return(ret_with_xy(ret)));
        stmts
    })
}

fn ret_with_xy(e: Expr) -> Expr {
    // Mix x and y into the result so dead-store elimination is exercised.
    Expr::Bin(
        BinOp::Add,
        Box::new(e),
        Box::new(Expr::Bin(
            BinOp::Sub,
            Box::new(Expr::Var("x".into())),
            Box::new(Expr::Var("y".into())),
        )),
    )
}

fn run_ir(
    module: &Module,
    a: i64,
    b: i64,
) -> Result<Option<Value>, stats_compiler::interp::ExecError> {
    Interp::new(module)
        .with_fuel(100_000)
        .call("f", &[Value::Int(a), Value::Int(b)])
}

fn run_bytecode(
    module: &Module,
    a: i64,
    b: i64,
) -> Result<Option<Value>, stats_compiler::interp::ExecError> {
    BytecodeInterp::new(module)
        .with_fuel(100_000)
        .call("f", &[Value::Int(a), Value::Int(b)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pure expressions: lower+interpret == reference evaluation.
    #[test]
    fn expressions_agree(e in arb_expr(4), a in -40i64..40, b in -40i64..40) {
        let def = FnDef {
            name: "f".into(),
            params: vec!["a".into(), "b".into()],
            body: vec![Stmt::Return(e.clone())],
        };
        let lowered = lower_fn(&def).unwrap();
        validate(&lowered).unwrap();
        let mut module = Module::new();
        module.add_function(lowered);

        let mut env = std::collections::HashMap::new();
        env.insert("a".to_string(), a);
        env.insert("b".to_string(), b);
        let reference = eval_expr(&e, &env);
        let got = run_ir(&module, a, b);
        prop_assert_eq!(
            &got,
            &run_bytecode(&module, a, b),
            "slot and bytecode engines diverged"
        );
        match (reference, got) {
            (Some(v), Ok(Some(out))) => prop_assert_eq!(out, Value::Int(v)),
            (None, Err(_)) => {} // both report division/remainder by zero
            (None, Ok(_)) => {
                // Reference bailed on div-by-zero in a branch the IR never
                // evaluated eagerly? Expressions lower eagerly, so any
                // div-by-zero the reference hits must also trap in IR.
                prop_assert!(false, "IR succeeded where reference trapped");
            }
            (Some(v), other) => prop_assert!(false, "IR {other:?} vs reference {v}"),
        }
    }

    /// Whole bodies with control flow, both raw and optimized.
    #[test]
    fn bodies_agree_with_and_without_optimizer(
        body in arb_body(),
        a in -40i64..40,
        b in -40i64..40,
    ) {
        let def = FnDef {
            name: "f".into(),
            params: vec!["a".into(), "b".into()],
            body: body.clone(),
        };
        let lowered = lower_fn(&def).unwrap();
        validate(&lowered).unwrap();
        let mut module = Module::new();
        module.add_function(lowered);
        let mut optimized = module.clone();
        opt::optimize(&mut optimized);

        let mut env = std::collections::HashMap::new();
        env.insert("a".to_string(), a);
        env.insert("b".to_string(), b);
        let reference = eval_body(&body, &mut env);

        let raw = run_ir(&module, a, b);
        let opt_out = run_ir(&optimized, a, b);
        prop_assert_eq!(
            &raw,
            &run_bytecode(&module, a, b),
            "slot and bytecode engines diverged on the raw module"
        );
        prop_assert_eq!(
            &opt_out,
            &run_bytecode(&optimized, a, b),
            "slot and bytecode engines diverged on the optimized module"
        );
        match (&raw, &opt_out) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "optimizer changed behavior"),
            (Err(_), Err(_)) => {}
            other => prop_assert!(false, "optimizer changed trap behavior: {other:?}"),
        }
        if let Some(Some(v)) = reference {
            if let Ok(Some(out)) = raw {
                prop_assert_eq!(out, Value::Int(v));
            } else {
                prop_assert!(false, "IR failed where reference computed {v}: {raw:?}");
            }
        }
        // `reference == Some(None)` (fell off the end) lowers to `ret 0`;
        // `None` means the reference hit a trap or unsupported construct —
        // the IR must then trap too or be a legitimate superset (traps).
    }

    /// Fuel accounting is part of the contract: with any budget, both
    /// engines exhaust fuel at exactly the same step (or both finish).
    #[test]
    fn fuel_exhaustion_agrees(body in arb_body(), a in -40i64..40, fuel in 0u64..400) {
        let def = FnDef {
            name: "f".into(),
            params: vec!["a".into(), "b".into()],
            body,
        };
        let lowered = lower_fn(&def).unwrap();
        validate(&lowered).unwrap();
        let mut module = Module::new();
        module.add_function(lowered);
        let slot = Interp::new(&module)
            .with_fuel(fuel)
            .call("f", &[Value::Int(a), Value::Int(0)]);
        let byte = BytecodeInterp::new(&module)
            .with_fuel(fuel)
            .call("f", &[Value::Int(a), Value::Int(0)]);
        prop_assert_eq!(slot, byte, "fuel divergence at budget {}", fuel);
    }
}

/// Both engines reject a partially-assigned register with the identical
/// static error — the definite-assignment check runs in both pipelines.
#[test]
fn unassigned_register_error_is_identical() {
    use stats_compiler::interp::ExecError;
    use stats_compiler::ir::{BlockId, Inst, Operand};
    let mut f = stats_compiler::ir::Function::new("half", 1);
    let cond = f.params[0];
    let r = f.fresh_reg();
    let then_b = f.new_block();
    let else_b = f.new_block();
    let join = f.new_block();
    f.push(
        BlockId(0),
        Inst::Br {
            cond: cond.into(),
            then_b,
            else_b,
        },
    );
    f.push(
        then_b,
        Inst::Const {
            dst: r,
            value: Operand::ImmInt(1),
        },
    );
    f.push(then_b, Inst::Jmp { target: join });
    f.push(else_b, Inst::Jmp { target: join });
    f.push(
        join,
        Inst::Ret {
            value: Some(r.into()),
        },
    );
    let mut m = Module::new();
    m.add_function(f);
    let expected = ExecError::UnassignedRegister {
        function: "half".into(),
        reg: r.0,
    };
    assert_eq!(
        Interp::new(&m).call("half", &[Value::Int(1)]).unwrap_err(),
        expected
    );
    assert_eq!(
        BytecodeInterp::new(&m)
            .call("half", &[Value::Int(1)])
            .unwrap_err(),
        expected
    );
}
