//! The soundness property behind the race lint: when every dependence
//! declares its carried state and the declared sets are disjoint, the
//! per-dependence output streams do not depend on how the dependences'
//! invocations interleave — which is exactly what licenses STATS to run
//! them speculatively in parallel. Conversely, a program the race lint
//! rejects can observably change its outputs under re-ordering.

use proptest::prelude::*;
use stats_compiler::analysis;
use stats_compiler::frontend::compile;
use stats_compiler::interp::{Interp, Value};
use stats_compiler::ir::Module;
use stats_compiler::midend;

/// Two dependences with disjoint declared state; passes the race lint.
const DISJOINT: &str = r#"
    state a = 0;
    state b = 100;
    state_dependence d1 { compute = f; state = [a]; }
    state_dependence d2 { compute = g; state = [b]; }
    fn f(x) { a = a + x; return a * 2; }
    fn g(x) { b = b - x; return b + 1; }
"#;

/// Both dependences touch `shared`; `d2` leaves it undeclared: rejected.
const RACY: &str = r#"
    state shared = 0;
    state_dependence d1 { compute = f; state = [shared]; }
    state_dependence d2 { compute = g; }
    fn f(x) { shared = shared + x; return shared; }
    fn g(x) { return shared * x; }
"#;

fn build(src: &str) -> Module {
    midend::run(compile(src).unwrap()).expect("program passes the gate")
}

fn call_int(interp: &mut Interp, f: &str, x: i64) -> i64 {
    interp
        .call(f, &[Value::Int(x)])
        .unwrap()
        .and_then(|v| v.as_int())
        .unwrap()
}

/// Run `f` over `xs` and `g` over `ys` on one interpreter, interleaved by
/// `schedule` (true = take the next `f` invocation); returns the two
/// output streams.
fn run_interleaved(
    module: &Module,
    xs: &[i64],
    ys: &[i64],
    schedule: &[bool],
) -> (Vec<i64>, Vec<i64>) {
    let mut interp = Interp::new(module);
    let (mut fi, mut gi) = (0usize, 0usize);
    let (mut f_out, mut g_out) = (Vec::new(), Vec::new());
    let mut take_f = schedule.iter().copied().chain(std::iter::repeat(true));
    while fi < xs.len() || gi < ys.len() {
        let f_turn = take_f.next().unwrap();
        if (f_turn && fi < xs.len()) || gi >= ys.len() {
            f_out.push(call_int(&mut interp, "f", xs[fi]));
            fi += 1;
        } else {
            g_out.push(call_int(&mut interp, "g", ys[gi]));
            gi += 1;
        }
    }
    (f_out, g_out)
}

#[test]
fn disjoint_program_passes_race_lint_and_racy_one_fails() {
    let clean = compile(DISJOINT).unwrap().module;
    assert!(!analysis::has_errors(&analysis::analyze(&clean)));
    let racy = compile(RACY).unwrap().module;
    let diags = analysis::analyze(&racy);
    assert!(analysis::has_errors(&diags));
    assert!(diags
        .iter()
        .any(|d| d.lint == analysis::LintKind::UndeclaredStateRace));
}

proptest! {
    #[test]
    fn race_free_streams_are_interleaving_invariant(
        xs in proptest::collection::vec(-50i64..50, 0..8),
        ys in proptest::collection::vec(-50i64..50, 0..8),
        schedule in proptest::collection::vec(any::<bool>(), 0..16),
    ) {
        let module = build(DISJOINT);
        // Baseline: each stream alone, sequentially, on a fresh interpreter.
        let (f_base, _) = run_interleaved(&module, &xs, &[], &[]);
        let (_, g_base) = run_interleaved(&module, &[], &ys, &[]);
        // Any interleaving of the two streams on one interpreter.
        let (f_out, g_out) = run_interleaved(&module, &xs, &ys, &schedule);
        prop_assert_eq!(f_out, f_base);
        prop_assert_eq!(g_out, g_base);
    }
}

#[test]
fn racy_program_outputs_depend_on_interleaving() {
    // Gate off: the point is to show *why* the gate exists.
    let module = midend::run_with(
        compile(RACY).unwrap(),
        midend::MidendOptions {
            enforce_analysis: false,
            ..midend::MidendOptions::default()
        },
    )
    .unwrap();
    let xs = [5];
    let ys = [3];
    // g before f: reads shared = 0. f before g: reads shared = 5.
    let (_, g_first) = run_interleaved(&module, &xs, &ys, &[false]);
    let (_, f_first) = run_interleaved(&module, &xs, &ys, &[true]);
    assert_ne!(g_first, f_first);
}
