//! The middle-end compiler (paper §3.4, "Generating IR with auxiliary code").
//!
//! For each state dependence `d`, the middle-end clones `d`'s
//! `compute_output` and links the clone into `d`'s metadata entry. Cloning
//! is *deep but selective*: a bottom-up analysis of the call graph finds the
//! functions that contain (or reach) tradeoff references, and only those are
//! cloned, stopping at an instruction budget. Cloned tradeoffs get fresh
//! metadata rows so STATS can tune the auxiliary code's quality
//! independently of the rest of the program. Finally, every tradeoff
//! *outside* auxiliary code is pinned to its default value and its metadata
//! row deleted: the middle-end's output contains only tradeoffs that belong
//! to auxiliary code.

use std::collections::HashSet;

use crate::bytecode::BytecodeInterp;
use crate::frontend::{CompileError, Compiled};
use crate::interp::Value;
use crate::ir::{Function, Inst, Module, Operand, Ty, TyRef};
use crate::metadata::{TradeoffMeta, TradeoffValues};

/// Middle-end options.
#[derive(Debug, Clone, Copy)]
pub struct MidendOptions {
    /// Maximum total instructions cloned per `compute_output` (the paper's
    /// budget that balances generated-code size against degrees of freedom).
    pub max_clone_insts: usize,
    /// Run the speculation-safety analysis ([`crate::analysis`]) over the
    /// generated module and refuse codegen when it finds hard errors
    /// (undeclared state races, impure auxiliary clones). On by default;
    /// disable to inspect or execute known-unsafe programs (`stats-lint`
    /// does this to report *all* findings instead of stopping).
    pub enforce_analysis: bool,
}

impl Default for MidendOptions {
    fn default() -> Self {
        MidendOptions {
            max_clone_insts: 4096,
            enforce_analysis: true,
        }
    }
}

/// Run the middle-end with default options.
pub fn run(compiled: Compiled) -> Result<Module, CompileError> {
    run_with(compiled, MidendOptions::default())
}

/// Run the middle-end.
pub fn run_with(compiled: Compiled, options: MidendOptions) -> Result<Module, CompileError> {
    let mut module = compiled.module;

    let dep_names: Vec<String> = module
        .metadata
        .state_deps
        .iter()
        .map(|d| d.name.clone())
        .collect();
    for dep in dep_names {
        generate_aux(&mut module, &dep, options)?;
    }

    pin_global_tradeoffs_to_defaults(&mut module)?;

    if options.enforce_analysis {
        let diags = crate::analysis::analyze(&module);
        if crate::analysis::has_errors(&diags) {
            return Err(CompileError::Analysis(diags));
        }
    }
    Ok(module)
}

/// Clone suffix for one dependence's auxiliary code.
fn aux_suffix(dep: &str) -> String {
    format!("__aux_{dep}")
}

/// Functions reachable from `root` through direct calls, including `root`.
fn reachable(module: &Module, root: &str) -> Vec<String> {
    let mut seen: HashSet<String> = HashSet::new();
    let mut stack = vec![root.to_string()];
    let mut order = Vec::new();
    while let Some(name) = stack.pop() {
        if !seen.insert(name.clone()) {
            continue;
        }
        if let Some(f) = module.function(&name) {
            order.push(name.clone());
            for callee in f.callees() {
                stack.push(callee);
            }
        }
    }
    order
}

/// Bottom-up mark: which reachable functions contain, or call something that
/// contains, a tradeoff reference?
fn tradeoff_carrying(module: &Module, roots: &[String]) -> HashSet<String> {
    let mut carrying: HashSet<String> = HashSet::new();
    // Fixed point: usually converges in a couple of sweeps.
    loop {
        let mut changed = false;
        for name in roots {
            if carrying.contains(name) {
                continue;
            }
            let Some(f) = module.function(name) else {
                continue;
            };
            let direct = !f.tradeoff_refs().is_empty();
            let via_callee = f.callees().iter().any(|c| carrying.contains(c));
            if direct || via_callee {
                carrying.insert(name.clone());
                changed = true;
            }
        }
        if !changed {
            return carrying;
        }
    }
}

fn generate_aux(
    module: &mut Module,
    dep: &str,
    options: MidendOptions,
) -> Result<(), CompileError> {
    let compute_fn = module
        .metadata
        .state_dep(dep)
        .map(|d| d.compute_fn.clone())
        .ok_or_else(|| CompileError::Semantic(format!("unknown state dependence `{dep}`")))?;
    let suffix = aux_suffix(dep);

    let order = reachable(module, &compute_fn);
    let carrying = tradeoff_carrying(module, &order);

    // Decide the clone set: compute_output always, plus carrying functions,
    // bottom-up (deepest first: reverse discovery order approximates this),
    // until the instruction budget runs out.
    let mut budget = options.max_clone_insts;
    let mut clone_set: Vec<String> = Vec::new();
    let root_cost = module
        .function(&compute_fn)
        .map(Function::inst_count)
        .unwrap_or(0);
    budget = budget.saturating_sub(root_cost);
    clone_set.push(compute_fn.clone());
    for name in order.iter().rev() {
        if name == &compute_fn || !carrying.contains(name) {
            continue;
        }
        let cost = module.function(name).map(Function::inst_count).unwrap_or(0);
        if cost <= budget {
            budget -= cost;
            clone_set.push(name.clone());
        }
        // Paper: "stops cloning when it reaches a maximum number of
        // instructions per computeOutput()".
    }

    // Which tradeoffs end up inside the clone set? Those get cloned rows.
    let mut cloned_tradeoffs: Vec<String> = Vec::new();
    for name in &clone_set {
        if let Some(f) = module.function(name) {
            for t in f.tradeoff_refs() {
                if !cloned_tradeoffs.contains(&t) {
                    cloned_tradeoffs.push(t);
                }
            }
        }
    }

    // Clone the functions, rewriting intra-set calls and tradeoff names.
    let in_set: HashSet<&String> = clone_set.iter().collect();
    for name in &clone_set {
        let Some(original) = module.function(name) else {
            continue;
        };
        let mut clone = original.clone();
        clone.name = format!("{name}{suffix}");
        for inst in clone.insts_mut() {
            match inst {
                Inst::Call { callee, .. } if in_set.contains(callee) => {
                    *callee = format!("{callee}{suffix}");
                }
                Inst::TradeoffRef { tradeoff, .. } | Inst::CallTradeoff { tradeoff, .. } => {
                    *tradeoff = format!("{tradeoff}{suffix}");
                }
                Inst::Cast {
                    to: TyRef::Tradeoff(t),
                    ..
                } => {
                    *t = format!("{t}{suffix}");
                }
                _ => {}
            }
        }
        module.add_function(clone);
    }

    // Clone the tradeoff metadata rows.
    let mut aux_tradeoff_names = Vec::with_capacity(cloned_tradeoffs.len());
    for t in &cloned_tradeoffs {
        let row = module
            .metadata
            .tradeoff(t)
            .cloned()
            .ok_or_else(|| CompileError::Semantic(format!("unknown tradeoff `{t}`")))?;
        let cloned_name = format!("{t}{suffix}");
        module.metadata.tradeoffs.push(TradeoffMeta {
            name: cloned_name.clone(),
            cloned_from: Some(t.clone()),
            owner_dep: Some(dep.to_string()),
            ..row
        });
        aux_tradeoff_names.push(cloned_name);
    }

    // Link the clone into the dependence's metadata entry.
    let aux_name = format!("{compute_fn}{suffix}");
    for d in module.metadata.state_deps.iter_mut() {
        if d.name == dep {
            d.aux_fn = Some(aux_name.clone());
            d.aux_tradeoffs = aux_tradeoff_names.clone();
        }
    }
    Ok(())
}

/// The value of a tradeoff at `index`, computed the way the back-end does
/// (interpreting `getValue` for computed rules — the paper's dynamic
/// compilation).
pub(crate) fn tradeoff_value_at(
    module: &Module,
    row: &TradeoffMeta,
    index: i64,
) -> Result<ResolvedValue, CompileError> {
    let index = index.clamp(0, row.max_index - 1);
    Ok(match &row.values {
        TradeoffValues::Computed { get_value_fn } => {
            let out = BytecodeInterp::new(module)
                .call(get_value_fn, &[Value::Int(index)])
                .map_err(|e| CompileError::Semantic(format!("evaluating `{get_value_fn}`: {e}")))?
                .ok_or_else(|| {
                    CompileError::Semantic(format!("`{get_value_fn}` returned nothing"))
                })?;
            match out {
                Value::Int(v) => ResolvedValue::Int(v),
                Value::Float(v) => ResolvedValue::Float(v),
            }
        }
        TradeoffValues::Values(vs) => {
            let v = vs[index as usize];
            if v.fract() == 0.0 && v.abs() < 9e15 {
                ResolvedValue::Int(v as i64)
            } else {
                ResolvedValue::Float(v)
            }
        }
        TradeoffValues::Functions(fs) => ResolvedValue::Function(fs[index as usize].clone()),
        TradeoffValues::Types(ts) => ResolvedValue::Type(ts[index as usize]),
    })
}

/// A tradeoff value resolved at configuration time.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolvedValue {
    /// Integer constant.
    Int(i64),
    /// Float constant.
    Float(f64),
    /// Selected callee.
    Function(String),
    /// Selected scalar type.
    Type(Ty),
}

/// Substitute every reference to `tradeoff` in `module` with `value` — the
/// three mechanisms of §3.4 "Setting a tradeoff": constants replace
/// placeholder calls, types retype casts, functions replace callees.
pub(crate) fn substitute(
    module: &mut Module,
    tradeoff: &str,
    value: &ResolvedValue,
) -> Result<(), CompileError> {
    let mut bad: Option<String> = None;
    for f in module.functions_mut() {
        for inst in f.insts_mut() {
            match inst {
                Inst::TradeoffRef { dst, tradeoff: t } if t == tradeoff => {
                    let imm = match value {
                        ResolvedValue::Int(v) => Operand::ImmInt(*v),
                        ResolvedValue::Float(v) => Operand::ImmFloat(*v),
                        other => {
                            bad = Some(format!(
                                "constant reference to `{tradeoff}` but value is {other:?}"
                            ));
                            continue;
                        }
                    };
                    *inst = Inst::Const {
                        dst: *dst,
                        value: imm,
                    };
                }
                Inst::CallTradeoff {
                    dst,
                    tradeoff: t,
                    args,
                } if t == tradeoff => {
                    let callee = match value {
                        ResolvedValue::Function(name) => name.clone(),
                        other => {
                            bad = Some(format!(
                                "function reference to `{tradeoff}` but value is {other:?}"
                            ));
                            continue;
                        }
                    };
                    *inst = Inst::Call {
                        dst: *dst,
                        callee,
                        args: std::mem::take(args),
                    };
                }
                Inst::Cast { to, .. } => {
                    if let TyRef::Tradeoff(t) = to {
                        if t == tradeoff {
                            let ty = match value {
                                ResolvedValue::Type(ty) => *ty,
                                other => {
                                    bad = Some(format!(
                                        "type reference to `{tradeoff}` but value is {other:?}"
                                    ));
                                    continue;
                                }
                            };
                            *to = TyRef::Concrete(ty);
                        }
                    }
                }
                _ => {}
            }
        }
    }
    match bad {
        Some(msg) => Err(CompileError::Semantic(msg)),
        None => Ok(()),
    }
}

fn pin_global_tradeoffs_to_defaults(module: &mut Module) -> Result<(), CompileError> {
    // Global rows = rows not owned by a dependence's auxiliary code.
    let global: Vec<TradeoffMeta> = module
        .metadata
        .tradeoffs
        .iter()
        .filter(|t| t.owner_dep.is_none())
        .cloned()
        .collect();
    for row in &global {
        let value = tradeoff_value_at(module, row, row.default_index)?;
        substitute(module, &row.name, &value)?;
        module.metadata.remove_tradeoff(&row.name);
    }
    Ok(())
}

/// Statistics describing what the middle-end generated (Table 1 inputs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloneStats {
    /// Instructions in the module before auxiliary generation.
    pub original_insts: usize,
    /// Instructions after (clones included, globals pinned).
    pub final_insts: usize,
}

impl CloneStats {
    /// Relative size increase (Table 1's "binary size increase").
    pub fn size_increase(&self) -> f64 {
        if self.original_insts == 0 {
            return 0.0;
        }
        self.final_insts as f64 / self.original_insts as f64 - 1.0
    }
}

/// Run the middle-end and also report size statistics.
pub fn run_with_stats(
    compiled: Compiled,
    options: MidendOptions,
) -> Result<(Module, CloneStats), CompileError> {
    let original_insts = compiled.module.inst_count();
    let module = run_with(compiled, options)?;
    Ok((
        module.clone(),
        CloneStats {
            original_insts,
            final_insts: module.inst_count(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::compile;

    const SRC: &str = r#"
        tradeoff layers { max_index = 10; default_index = 4; value(i) = i + 1; }
        tradeoff prec { types = [f64, f32]; default_index = 0; }
        state_dependence d { compute = step; }
        fn inner(x) { return x * tradeoff layers; }
        fn plain(x) { return x + 1; }
        fn step(v) { return inner(v) + plain(v); }
    "#;

    fn midend(src: &str) -> Module {
        run(compile(src).unwrap()).unwrap()
    }

    #[test]
    fn clones_compute_and_carrying_callees() {
        let m = midend(SRC);
        assert!(m.function("step__aux_d").is_some());
        assert!(m.function("inner__aux_d").is_some());
        // `plain` has no tradeoffs anywhere below it: not cloned.
        assert!(m.function("plain__aux_d").is_none());
        // Originals survive untouched in name.
        assert!(m.function("step").is_some());
        assert!(m.function("inner").is_some());
    }

    #[test]
    fn clone_calls_cloned_callee_but_keeps_shared_plain() {
        let m = midend(SRC);
        let aux = m.function("step__aux_d").unwrap();
        let callees = aux.callees();
        assert!(callees.contains(&"inner__aux_d".to_string()));
        assert!(callees.contains(&"plain".to_string()));
    }

    #[test]
    fn cloned_tradeoffs_get_rows_and_originals_are_deleted() {
        let m = midend(SRC);
        // Only cloned rows remain (paper: "includes only tradeoffs that are
        // part of auxiliary code").
        assert!(m.metadata.tradeoff("layers").is_none());
        let clone = m.metadata.tradeoff("layers__aux_d").unwrap();
        assert_eq!(clone.cloned_from.as_deref(), Some("layers"));
        assert_eq!(clone.owner_dep.as_deref(), Some("d"));
        // `prec` was never referenced: defaulted (no refs) and deleted.
        assert!(m.metadata.tradeoff("prec").is_none());
    }

    #[test]
    fn original_code_is_pinned_to_defaults() {
        let m = midend(SRC);
        // `inner` (original) must contain no tradeoff refs any more, and
        // executing it uses the default (index 4 -> value 5).
        let inner = m.function("inner").unwrap();
        assert!(inner.tradeoff_refs().is_empty());
        let out = crate::interp::Interp::new(&m)
            .call("inner", &[crate::interp::Value::Int(3)])
            .unwrap()
            .unwrap();
        assert_eq!(out.as_int(), Some(15));
    }

    #[test]
    fn aux_clone_still_has_placeholder() {
        let m = midend(SRC);
        let aux = m.function("inner__aux_d").unwrap();
        assert_eq!(aux.tradeoff_refs(), vec!["layers__aux_d".to_string()]);
    }

    #[test]
    fn dependence_row_links_aux() {
        let m = midend(SRC);
        let d = m.metadata.state_dep("d").unwrap();
        assert_eq!(d.aux_fn.as_deref(), Some("step__aux_d"));
        assert_eq!(d.aux_tradeoffs, vec!["layers__aux_d".to_string()]);
    }

    #[test]
    fn budget_limits_cloning() {
        let compiled = compile(SRC).unwrap();
        let m = run_with(
            compiled,
            MidendOptions {
                max_clone_insts: 1, // only compute_output itself fits
                ..MidendOptions::default()
            },
        )
        .unwrap();
        assert!(m.function("step__aux_d").is_some());
        assert!(m.function("inner__aux_d").is_none());
        // The uncloned callee keeps its original name in the clone…
        let aux = m.function("step__aux_d").unwrap();
        assert!(aux.callees().contains(&"inner".to_string()));
        // …and since `layers` was then pinned inside `inner`, the aux code
        // has no tunable tradeoffs.
        let d = m.metadata.state_dep("d").unwrap();
        assert!(d.aux_tradeoffs.is_empty());
    }

    #[test]
    fn two_dependences_get_independent_clones() {
        let src = r#"
            tradeoff k { values = [1, 2, 3]; default_index = 0; }
            state_dependence a { compute = f; }
            state_dependence b { compute = f; }
            fn f(x) { return x * tradeoff k; }
        "#;
        let m = midend(src);
        assert!(m.function("f__aux_a").is_some());
        assert!(m.function("f__aux_b").is_some());
        assert!(m.metadata.tradeoff("k__aux_a").is_some());
        assert!(m.metadata.tradeoff("k__aux_b").is_some());
    }

    #[test]
    fn gate_rejects_undeclared_state_race() {
        let src = r#"
            state acc = 0;
            state_dependence d { compute = step; }
            fn step(x) { acc = acc + x; return acc; }
        "#;
        let err = run(compile(src).unwrap()).unwrap_err();
        match err {
            CompileError::Analysis(diags) => {
                assert!(crate::analysis::has_errors(&diags));
                assert!(diags
                    .iter()
                    .any(|d| d.lint == crate::analysis::LintKind::UndeclaredStateRace));
            }
            other => panic!("expected analysis rejection, got {other:?}"),
        }
        // The same program passes once the dependence declares the state…
        let declared = src.replace("compute = step;", "compute = step; state = [acc];");
        run(compile(&declared).unwrap()).unwrap();
        // …or when the gate is explicitly disabled.
        run_with(
            compile(src).unwrap(),
            MidendOptions {
                enforce_analysis: false,
                ..MidendOptions::default()
            },
        )
        .unwrap();
    }

    #[test]
    fn size_stats() {
        let compiled = compile(SRC).unwrap();
        let (_, stats) = run_with_stats(compiled, MidendOptions::default()).unwrap();
        assert!(stats.final_insts > stats.original_insts);
        assert!(stats.size_increase() > 0.0);
    }
}
