//! Lowering: AST → IR (the middle-end's first half).
//!
//! Registers are mutable slots (the IR is not SSA), so loops need no phi
//! nodes: an assignment writes the variable's register in place.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::ast;
use crate::ir::{BinOp, BlockId, Function, Inst, Operand, Reg, TyRef};

/// A lowering error (e.g. an undefined variable).
#[derive(Debug, Clone, PartialEq)]
pub struct LowerError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering: {}", self.message)
    }
}

impl std::error::Error for LowerError {}

fn err<T>(message: impl Into<String>) -> Result<T, LowerError> {
    Err(LowerError {
        message: message.into(),
    })
}

struct Lowerer {
    f: Function,
    vars: HashMap<String, Reg>,
    /// Cross-invocation state variables visible to this function. Locals
    /// (params and `let` bindings) shadow them.
    globals: HashSet<String>,
    current: BlockId,
}

impl Lowerer {
    fn emit(&mut self, inst: Inst) {
        self.f.push(self.current, inst);
    }

    fn operand_of(&mut self, e: &ast::Expr) -> Result<Operand, LowerError> {
        Ok(match e {
            ast::Expr::Int(v) => Operand::ImmInt(*v),
            ast::Expr::Float(v) => Operand::ImmFloat(*v),
            _ => Operand::Reg(self.expr(e)?),
        })
    }

    fn expr(&mut self, e: &ast::Expr) -> Result<Reg, LowerError> {
        match e {
            ast::Expr::Int(v) => {
                let dst = self.f.fresh_reg();
                self.emit(Inst::Const {
                    dst,
                    value: Operand::ImmInt(*v),
                });
                Ok(dst)
            }
            ast::Expr::Float(v) => {
                let dst = self.f.fresh_reg();
                self.emit(Inst::Const {
                    dst,
                    value: Operand::ImmFloat(*v),
                });
                Ok(dst)
            }
            ast::Expr::Var(name) => match self.vars.get(name) {
                Some(&r) => Ok(r),
                None if self.globals.contains(name) => {
                    let dst = self.f.fresh_reg();
                    self.emit(Inst::LoadState {
                        dst,
                        state: name.clone(),
                    });
                    Ok(dst)
                }
                None => err(format!("undefined variable `{name}`")),
            },
            ast::Expr::TradeoffRef(name) => {
                let dst = self.f.fresh_reg();
                self.emit(Inst::TradeoffRef {
                    dst,
                    tradeoff: name.clone(),
                });
                Ok(dst)
            }
            ast::Expr::TradeoffCast(name, inner) => {
                let src = self.operand_of(inner)?;
                let dst = self.f.fresh_reg();
                self.emit(Inst::Cast {
                    dst,
                    src,
                    to: TyRef::Tradeoff(name.clone()),
                });
                Ok(dst)
            }
            ast::Expr::TradeoffCall(name, args) => {
                let mut ops = Vec::with_capacity(args.len());
                for a in args {
                    ops.push(self.operand_of(a)?);
                }
                let dst = self.f.fresh_reg();
                self.emit(Inst::CallTradeoff {
                    dst: Some(dst),
                    tradeoff: name.clone(),
                    args: ops,
                });
                Ok(dst)
            }
            ast::Expr::Neg(inner) => {
                let v = self.operand_of(inner)?;
                let dst = self.f.fresh_reg();
                self.emit(Inst::Bin {
                    op: BinOp::Sub,
                    dst,
                    lhs: Operand::ImmInt(0),
                    rhs: v,
                });
                Ok(dst)
            }
            ast::Expr::Not(inner) => {
                let v = self.operand_of(inner)?;
                let dst = self.f.fresh_reg();
                self.emit(Inst::Bin {
                    op: BinOp::Eq,
                    dst,
                    lhs: v,
                    rhs: Operand::ImmInt(0),
                });
                Ok(dst)
            }
            ast::Expr::Bin(op, lhs, rhs) => {
                // `&&` / `||` lower to arithmetic on 0/1 values (no
                // short-circuit; the DSL has no side-effecting operands
                // other than calls, and eager evaluation keeps blocks flat).
                let l = self.operand_of(lhs)?;
                let r = self.operand_of(rhs)?;
                let dst = self.f.fresh_reg();
                let ir_op = match op {
                    ast::BinOp::Add => BinOp::Add,
                    ast::BinOp::Sub => BinOp::Sub,
                    ast::BinOp::Mul => BinOp::Mul,
                    ast::BinOp::Div => BinOp::Div,
                    ast::BinOp::Rem => BinOp::Rem,
                    ast::BinOp::Lt => BinOp::Lt,
                    ast::BinOp::Le => BinOp::Le,
                    ast::BinOp::Gt => BinOp::Gt,
                    ast::BinOp::Ge => BinOp::Ge,
                    ast::BinOp::Eq => BinOp::Eq,
                    ast::BinOp::Ne => BinOp::Ne,
                    ast::BinOp::And => {
                        // (l != 0) * (r != 0)
                        let ln = self.f.fresh_reg();
                        self.emit(Inst::Bin {
                            op: BinOp::Ne,
                            dst: ln,
                            lhs: l,
                            rhs: Operand::ImmInt(0),
                        });
                        let rn = self.f.fresh_reg();
                        self.emit(Inst::Bin {
                            op: BinOp::Ne,
                            dst: rn,
                            lhs: r,
                            rhs: Operand::ImmInt(0),
                        });
                        self.emit(Inst::Bin {
                            op: BinOp::Mul,
                            dst,
                            lhs: ln.into(),
                            rhs: rn.into(),
                        });
                        return Ok(dst);
                    }
                    ast::BinOp::Or => {
                        // ((l != 0) + (r != 0)) != 0
                        let ln = self.f.fresh_reg();
                        self.emit(Inst::Bin {
                            op: BinOp::Ne,
                            dst: ln,
                            lhs: l,
                            rhs: Operand::ImmInt(0),
                        });
                        let rn = self.f.fresh_reg();
                        self.emit(Inst::Bin {
                            op: BinOp::Ne,
                            dst: rn,
                            lhs: r,
                            rhs: Operand::ImmInt(0),
                        });
                        let sum = self.f.fresh_reg();
                        self.emit(Inst::Bin {
                            op: BinOp::Add,
                            dst: sum,
                            lhs: ln.into(),
                            rhs: rn.into(),
                        });
                        self.emit(Inst::Bin {
                            op: BinOp::Ne,
                            dst,
                            lhs: sum.into(),
                            rhs: Operand::ImmInt(0),
                        });
                        return Ok(dst);
                    }
                };
                self.emit(Inst::Bin {
                    op: ir_op,
                    dst,
                    lhs: l,
                    rhs: r,
                });
                Ok(dst)
            }
            ast::Expr::Call(name, args) => {
                let mut ops = Vec::with_capacity(args.len());
                for a in args {
                    ops.push(self.operand_of(a)?);
                }
                let dst = self.f.fresh_reg();
                self.emit(Inst::Call {
                    dst: Some(dst),
                    callee: name.clone(),
                    args: ops,
                });
                Ok(dst)
            }
        }
    }

    fn stmts(&mut self, stmts: &[ast::Stmt]) -> Result<(), LowerError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &ast::Stmt) -> Result<(), LowerError> {
        match s {
            ast::Stmt::Let(name, e) => {
                // A variable occupies one function-scoped register for its
                // whole lifetime (registers are mutable slots, not SSA
                // values): re-`let`ing a name writes the existing slot, so
                // writes inside one branch of an `if` are visible after the
                // join — the semantics the reference evaluator (and C)
                // gives to mutation under control flow.
                let v = self.operand_of(e)?;
                let dst = match self.vars.get(name) {
                    Some(&r) => r,
                    None => {
                        let r = self.f.fresh_reg();
                        self.vars.insert(name.clone(), r);
                        r
                    }
                };
                self.emit(Inst::Const { dst, value: v });
                Ok(())
            }
            ast::Stmt::Assign(name, e) => {
                let v = self.operand_of(e)?;
                match self.vars.get(name) {
                    Some(&dst) => {
                        self.emit(Inst::Const { dst, value: v });
                        Ok(())
                    }
                    None if self.globals.contains(name) => {
                        self.emit(Inst::StoreState {
                            state: name.clone(),
                            src: v,
                        });
                        Ok(())
                    }
                    None => err(format!("assignment to undefined variable `{name}`")),
                }
            }
            ast::Stmt::Expr(e) => {
                self.expr(e)?;
                Ok(())
            }
            ast::Stmt::Return(e) => {
                let v = self.operand_of(e)?;
                self.emit(Inst::Ret { value: Some(v) });
                Ok(())
            }
            ast::Stmt::If(cond, then_b, else_b) => {
                let c = self.operand_of(cond)?;
                let then_id = self.f.new_block();
                let else_id = self.f.new_block();
                let join_id = self.f.new_block();
                self.emit(Inst::Br {
                    cond: c,
                    then_b: then_id,
                    else_b: else_id,
                });
                self.current = then_id;
                self.stmts(then_b)?;
                self.emit(Inst::Jmp { target: join_id });
                self.current = else_id;
                self.stmts(else_b)?;
                self.emit(Inst::Jmp { target: join_id });
                self.current = join_id;
                Ok(())
            }
            ast::Stmt::For(var, lo, hi, body) => {
                // Desugar: let var = lo; while (var < hi) { body; var = var + 1; }
                // The bound is evaluated once, before the loop.
                let bound = self.operand_of(hi)?;
                let bound_reg = self.f.fresh_reg();
                self.emit(Inst::Const {
                    dst: bound_reg,
                    value: bound,
                });
                self.stmt(&ast::Stmt::Let(var.clone(), lo.clone()))?;
                let var_reg = *self.vars.get(var).expect("just bound");

                let head_id = self.f.new_block();
                let body_id = self.f.new_block();
                let exit_id = self.f.new_block();
                self.emit(Inst::Jmp { target: head_id });
                self.current = head_id;
                let cond = self.f.fresh_reg();
                self.emit(Inst::Bin {
                    op: BinOp::Lt,
                    dst: cond,
                    lhs: var_reg.into(),
                    rhs: bound_reg.into(),
                });
                self.emit(Inst::Br {
                    cond: cond.into(),
                    then_b: body_id,
                    else_b: exit_id,
                });
                self.current = body_id;
                self.stmts(body)?;
                self.emit(Inst::Bin {
                    op: BinOp::Add,
                    dst: var_reg,
                    lhs: var_reg.into(),
                    rhs: Operand::ImmInt(1),
                });
                self.emit(Inst::Jmp { target: head_id });
                self.current = exit_id;
                Ok(())
            }
            ast::Stmt::While(cond, body) => {
                let head_id = self.f.new_block();
                let body_id = self.f.new_block();
                let exit_id = self.f.new_block();
                self.emit(Inst::Jmp { target: head_id });
                self.current = head_id;
                let c = self.operand_of(cond)?;
                self.emit(Inst::Br {
                    cond: c,
                    then_b: body_id,
                    else_b: exit_id,
                });
                self.current = body_id;
                self.stmts(body)?;
                self.emit(Inst::Jmp { target: head_id });
                self.current = exit_id;
                Ok(())
            }
        }
    }
}

/// Lower one AST function to IR, with no state variables in scope.
pub fn lower_fn(def: &ast::FnDef) -> Result<Function, LowerError> {
    lower_fn_with_globals(def, &HashSet::new())
}

/// Lower one AST function to IR. Free variables named in `globals` become
/// [`Inst::LoadState`]/[`Inst::StoreState`] accesses to cross-invocation
/// state; locals (params and `let` bindings) shadow them.
pub fn lower_fn_with_globals(
    def: &ast::FnDef,
    globals: &HashSet<String>,
) -> Result<Function, LowerError> {
    let f = Function::new(def.name.clone(), def.params.len());
    let vars = def
        .params
        .iter()
        .cloned()
        .zip(f.params.iter().copied())
        .collect();
    let mut l = Lowerer {
        f,
        vars,
        globals: globals.clone(),
        current: BlockId(0),
    };
    l.stmts(&def.body)?;
    // Implicit `return 0` for functions falling off the end.
    l.emit(Inst::Ret {
        value: Some(Operand::ImmInt(0)),
    });
    Ok(l.f)
}

/// Lower a computed tradeoff rule `value(i) = expr` into a `getValue`
/// function named `T_<tradeoff>_getValue`.
pub fn lower_get_value(
    tradeoff: &str,
    param: &str,
    expr: &ast::Expr,
) -> Result<Function, LowerError> {
    let def = ast::FnDef {
        name: get_value_fn_name(tradeoff),
        params: vec![param.to_string()],
        body: vec![ast::Stmt::Return(expr.clone())],
    };
    lower_fn(&def)
}

/// The generated name of a computed tradeoff's `getValue` IR function.
pub fn get_value_fn_name(tradeoff: &str) -> String {
    format!("T_{tradeoff}_getValue")
}

/// Verify structural invariants the rest of the pipeline assumes: every
/// block ends in a terminator and branch targets are in range.
pub fn validate(f: &Function) -> Result<(), LowerError> {
    for (i, b) in f.blocks.iter().enumerate() {
        match b.insts.last() {
            Some(Inst::Jmp { target }) if target.0 >= f.blocks.len() => {
                return err(format!("{}: block {i} jumps out of range", f.name))
            }
            Some(Inst::Br { then_b, else_b, .. })
                if then_b.0 >= f.blocks.len() || else_b.0 >= f.blocks.len() =>
            {
                return err(format!("{}: block {i} branches out of range", f.name))
            }
            Some(Inst::Jmp { .. }) | Some(Inst::Br { .. }) | Some(Inst::Ret { .. }) => {}
            _ => return err(format!("{}: block {i} lacks a terminator", f.name)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn lower(src: &str) -> Function {
        let p = parse(src).unwrap();
        let f = lower_fn(&p.functions[0]).unwrap();
        validate(&f).unwrap();
        f
    }

    #[test]
    fn straight_line() {
        let f = lower("fn f(a) { let x = a + 1; return x * 2; }");
        assert_eq!(f.blocks.len(), 1);
        assert!(f.inst_count() >= 3);
    }

    #[test]
    fn if_creates_diamond() {
        let f = lower("fn f(a) { if (a > 0) { a = 1; } else { a = 2; } return a; }");
        assert_eq!(f.blocks.len(), 4); // entry, then, else, join
    }

    #[test]
    fn while_creates_loop() {
        let f = lower("fn f(a) { let i = 0; while (i < a) { i = i + 1; } return i; }");
        assert_eq!(f.blocks.len(), 4); // entry, head, body, exit
    }

    #[test]
    fn tradeoff_ref_lowered() {
        let f = lower("fn f() { return tradeoff layers; }");
        assert_eq!(f.tradeoff_refs(), vec!["layers".to_string()]);
    }

    #[test]
    fn undefined_variable_rejected() {
        let p = parse("fn f() { return nope; }").unwrap();
        assert!(lower_fn(&p.functions[0]).is_err());
    }

    #[test]
    fn get_value_fn_lowering() {
        let p =
            parse("tradeoff t { max_index = 10; default_index = 0; value(i) = i * 3; }").unwrap();
        if let crate::ast::TradeoffKind::Computed { param, expr } = &p.tradeoffs[0].kind {
            let f = lower_get_value("t", param, expr).unwrap();
            assert_eq!(f.name, "T_t_getValue");
            validate(&f).unwrap();
        } else {
            panic!("expected computed kind");
        }
    }
}
