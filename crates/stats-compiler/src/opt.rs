//! Post-instantiation IR optimizations.
//!
//! The back-end's tradeoff substitution leaves obvious constants behind
//! (`dst = const; use dst` chains, branches on constant conditions). These
//! passes clean the instantiated module before execution: block-local
//! constant folding, branch simplification, unreachable-block elimination,
//! and dead-store elimination. They keep instantiation cheap (all passes
//! are linear) while shrinking the "binary".

use std::collections::HashMap;

use crate::interp::Value;
use crate::ir::{BinOp, Block, Function, Inst, Module, Operand, Reg};

/// Run every optimization pass over each function of the module, to a fixed
/// point (bounded), and return the number of instructions removed.
pub fn optimize(module: &mut Module) -> usize {
    let before = module.inst_count();
    for f in module.functions_mut() {
        for _ in 0..4 {
            let changed = fold_constants(f) | simplify_branches(f);
            remove_unreachable_blocks(f);
            eliminate_dead_stores(f);
            if !changed {
                break;
            }
        }
    }
    before.saturating_sub(module.inst_count())
}

fn as_const(op: &Operand, env: &HashMap<Reg, Value>) -> Option<Value> {
    match op {
        Operand::ImmInt(v) => Some(Value::Int(*v)),
        Operand::ImmFloat(v) => Some(Value::Float(*v)),
        Operand::Reg(r) => env.get(r).copied(),
    }
}

fn to_operand(v: Value) -> Operand {
    match v {
        Value::Int(i) => Operand::ImmInt(i),
        Value::Float(f) => Operand::ImmFloat(f),
    }
}

fn eval_bin(op: BinOp, a: Value, b: Value) -> Option<Value> {
    use BinOp::*;
    if let (Value::Int(x), Value::Int(y)) = (a, b) {
        let v = match op {
            Add => x.wrapping_add(y),
            Sub => x.wrapping_sub(y),
            Mul => x.wrapping_mul(y),
            Div => {
                if y == 0 {
                    return None; // preserve the runtime error
                }
                x.wrapping_div(y)
            }
            Rem => {
                if y == 0 {
                    return None;
                }
                x.wrapping_rem(y)
            }
            Lt => (x < y) as i64,
            Le => (x <= y) as i64,
            Gt => (x > y) as i64,
            Ge => (x >= y) as i64,
            Eq => (x == y) as i64,
            Ne => (x != y) as i64,
        };
        return Some(Value::Int(v));
    }
    let (x, y) = (a.as_float(), b.as_float());
    Some(match op {
        Add => Value::Float(x + y),
        Sub => Value::Float(x - y),
        Mul => Value::Float(x * y),
        Div => Value::Float(x / y),
        Rem => Value::Float(x % y),
        Lt => Value::Int((x < y) as i64),
        Le => Value::Int((x <= y) as i64),
        Gt => Value::Int((x > y) as i64),
        Ge => Value::Int((x >= y) as i64),
        Eq => Value::Int((x == y) as i64),
        Ne => Value::Int((x != y) as i64),
    })
}

/// Block-local constant propagation and folding. Registers written by
/// non-constant instructions (or in other blocks) are conservatively
/// unknown at block entry, which is sound for the mutable-register IR.
fn fold_constants(f: &mut Function) -> bool {
    let mut changed = false;
    for block in f.blocks.iter_mut() {
        let mut env: HashMap<Reg, Value> = HashMap::new();
        for inst in block.insts.iter_mut() {
            match inst {
                Inst::Const { dst, value } => {
                    if let Operand::Reg(src) = value {
                        if let Some(v) = env.get(src).copied() {
                            *value = to_operand(v);
                            changed = true;
                        }
                    }
                    match as_const(value, &env) {
                        Some(v) => {
                            env.insert(*dst, v);
                        }
                        None => {
                            env.remove(dst);
                        }
                    }
                }
                Inst::Bin { op, dst, lhs, rhs } => {
                    for side in [&mut *lhs, &mut *rhs] {
                        if let Operand::Reg(src) = side {
                            if let Some(v) = env.get(src).copied() {
                                *side = to_operand(v);
                                changed = true;
                            }
                        }
                    }
                    match (as_const(lhs, &env), as_const(rhs, &env)) {
                        (Some(a), Some(b)) => match eval_bin(*op, a, b) {
                            Some(v) => {
                                env.insert(*dst, v);
                                *inst = Inst::Const {
                                    dst: *dst,
                                    value: to_operand(v),
                                };
                                changed = true;
                            }
                            None => {
                                env.remove(dst);
                            }
                        },
                        _ => {
                            env.remove(dst);
                        }
                    }
                }
                Inst::Cast { dst, .. }
                | Inst::TradeoffRef { dst, .. }
                | Inst::LoadState { dst, .. } => {
                    env.remove(dst);
                }
                Inst::StoreState { src, .. } => {
                    if let Operand::Reg(r) = src {
                        if let Some(v) = env.get(r).copied() {
                            *src = to_operand(v);
                            changed = true;
                        }
                    }
                }
                Inst::Call { dst, args, .. } | Inst::CallTradeoff { dst, args, .. } => {
                    for a in args.iter_mut() {
                        if let Operand::Reg(src) = a {
                            if let Some(v) = env.get(src).copied() {
                                *a = to_operand(v);
                                changed = true;
                            }
                        }
                    }
                    if let Some(dst) = dst {
                        env.remove(dst);
                    }
                }
                Inst::Br { cond, .. } => {
                    if let Operand::Reg(src) = cond {
                        if let Some(v) = env.get(src).copied() {
                            *cond = to_operand(v);
                            changed = true;
                        }
                    }
                }
                Inst::Ret { value } => {
                    if let Some(Operand::Reg(src)) = value {
                        if let Some(v) = env.get(src).copied() {
                            *value = Some(to_operand(v));
                            changed = true;
                        }
                    }
                }
                Inst::Jmp { .. } => {}
            }
        }
    }
    changed
}

/// Rewrite branches whose condition is a constant into jumps.
fn simplify_branches(f: &mut Function) -> bool {
    let mut changed = false;
    for block in f.blocks.iter_mut() {
        if let Some(Inst::Br {
            cond,
            then_b,
            else_b,
        }) = block.insts.last()
        {
            let taken = match cond {
                Operand::ImmInt(v) => Some(if *v != 0 { *then_b } else { *else_b }),
                Operand::ImmFloat(v) => Some(if *v != 0.0 { *then_b } else { *else_b }),
                Operand::Reg(_) => None,
            };
            if let Some(target) = taken {
                *block.insts.last_mut().expect("nonempty") = Inst::Jmp { target };
                changed = true;
            }
        }
    }
    changed
}

/// Drop blocks unreachable from the entry (after branch simplification),
/// remapping block ids.
fn remove_unreachable_blocks(f: &mut Function) {
    let n = f.blocks.len();
    let mut reachable = vec![false; n];
    let mut stack = vec![0usize];
    while let Some(b) = stack.pop() {
        if b >= n || reachable[b] {
            continue;
        }
        reachable[b] = true;
        if let Some(term) = f.blocks[b].insts.last() {
            match term {
                Inst::Jmp { target } => stack.push(target.0),
                Inst::Br { then_b, else_b, .. } => {
                    stack.push(then_b.0);
                    stack.push(else_b.0);
                }
                _ => {}
            }
        }
    }
    if reachable.iter().all(|&r| r) {
        return;
    }
    let mut remap = vec![usize::MAX; n];
    let mut kept: Vec<Block> = Vec::new();
    for (i, block) in f.blocks.drain(..).enumerate() {
        if reachable[i] {
            remap[i] = kept.len();
            kept.push(block);
        }
    }
    for block in kept.iter_mut() {
        for inst in block.insts.iter_mut() {
            match inst {
                Inst::Jmp { target } => target.0 = remap[target.0],
                Inst::Br { then_b, else_b, .. } => {
                    then_b.0 = remap[then_b.0];
                    else_b.0 = remap[else_b.0];
                }
                _ => {}
            }
        }
    }
    f.blocks = kept;
}

/// Remove pure instructions whose destination register is never read
/// anywhere in the function (sound even with mutable registers: a register
/// with no reads at all cannot affect behavior).
fn eliminate_dead_stores(f: &mut Function) {
    use std::collections::HashSet;
    let mut read: HashSet<Reg> = HashSet::new();
    let mut mark = |op: &Operand| {
        if let Operand::Reg(r) = op {
            read.insert(*r);
        }
    };
    for inst in f.insts() {
        match inst {
            Inst::Const { value, .. } => mark(value),
            Inst::Bin { lhs, rhs, .. } => {
                mark(lhs);
                mark(rhs);
            }
            Inst::Cast { src, .. } => mark(src),
            Inst::Call { args, .. } | Inst::CallTradeoff { args, .. } => {
                args.iter().for_each(&mut mark)
            }
            Inst::Br { cond, .. } => mark(cond),
            Inst::Ret { value } => {
                if let Some(v) = value {
                    mark(v);
                }
            }
            Inst::StoreState { src, .. } => mark(src),
            Inst::TradeoffRef { .. } | Inst::LoadState { .. } | Inst::Jmp { .. } => {}
        }
    }
    for block in f.blocks.iter_mut() {
        block.insts.retain(|inst| match inst {
            // Division and remainder can trap: only dead when the divisor
            // is a provably nonzero immediate.
            Inst::Bin {
                op: BinOp::Div | BinOp::Rem,
                dst,
                rhs,
                ..
            } => {
                let provably_nonzero = matches!(rhs, Operand::ImmInt(v) if *v != 0)
                    || matches!(rhs, Operand::ImmFloat(v) if *v != 0.0);
                read.contains(dst) || !provably_nonzero
            }
            // A state load is a pure read: dead when its result is unread.
            Inst::Const { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Cast { dst, .. }
            | Inst::LoadState { dst, .. } => read.contains(dst),
            // Calls may have effects and state stores always do; keep them.
            // Terminators always stay.
            _ => true,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend;
    use crate::frontend::compile;
    use crate::interp::{Interp, Value};
    use crate::midend;

    fn compiled_module(src: &str) -> Module {
        midend::run(compile(src).unwrap()).unwrap()
    }

    #[test]
    fn folds_constant_arithmetic() {
        let mut m = compiled_module("fn f() { let a = 3; let b = 4; return a * b + 1; }");
        let removed = optimize(&mut m);
        assert!(removed > 0, "nothing folded");
        let out = Interp::new(&m).call("f", &[]).unwrap().unwrap();
        assert_eq!(out, Value::Int(13));
        // The function should now be a single constant return (plus the
        // residual block structure).
        assert!(m.function("f").unwrap().inst_count() <= 2);
    }

    #[test]
    fn preserves_division_by_zero() {
        let mut m = compiled_module("fn f() { return 1 / 0; }");
        optimize(&mut m);
        let err = Interp::new(&m).call("f", &[]).unwrap_err();
        assert_eq!(err, crate::interp::ExecError::DivisionByZero);
    }

    #[test]
    fn simplifies_constant_branches_and_drops_dead_blocks() {
        let mut m =
            compiled_module("fn f(x) { if (1 < 2) { return x + 1; } else { return x - 1; } }");
        let before_blocks = m.function("f").unwrap().blocks.len();
        optimize(&mut m);
        let after_blocks = m.function("f").unwrap().blocks.len();
        assert!(after_blocks < before_blocks);
        let out = Interp::new(&m)
            .call("f", &[Value::Int(9)])
            .unwrap()
            .unwrap();
        assert_eq!(out, Value::Int(10));
    }

    #[test]
    fn loops_still_work_after_optimization() {
        let src = "fn sum(n) { let s = 0; let i = 1; while (i <= n) { s = s + i; i = i + 1; } return s; }";
        let mut m = compiled_module(src);
        optimize(&mut m);
        let out = Interp::new(&m)
            .call("sum", &[Value::Int(100)])
            .unwrap()
            .unwrap();
        assert_eq!(out, Value::Int(5050));
    }

    #[test]
    fn instantiated_module_optimizes_and_agrees() {
        let src = r#"
            tradeoff k { max_index = 8; default_index = 3; value(i) = i * 2; }
            state_dependence d { compute = step; }
            fn step(v) {
                let a = tradeoff k;
                if (a > 100) { return 0; }
                return v * a + a;
            }
        "#;
        let m = compiled_module(src);
        let cfg = [("d".to_string(), vec![5_i64])].into_iter().collect();
        let binary = backend::instantiate(&m, &cfg).unwrap();
        let mut optimized = binary.clone();
        let removed = optimize(&mut optimized);
        assert!(removed > 0);
        for arg in [0_i64, 7, -3] {
            let a = backend::call(&binary, "step__aux_d", &[arg.into()]).unwrap();
            let b = backend::call(&optimized, "step__aux_d", &[arg.into()]).unwrap();
            assert_eq!(a, b, "optimization changed behavior for {arg}");
        }
    }

    #[test]
    fn dead_stores_removed() {
        let mut m = compiled_module("fn f(x) { let unused = x * 99; return x; }");
        let before = m.function("f").unwrap().inst_count();
        optimize(&mut m);
        let after = m.function("f").unwrap().inst_count();
        assert!(after < before);
        let out = Interp::new(&m)
            .call("f", &[Value::Int(4)])
            .unwrap()
            .unwrap();
        assert_eq!(out, Value::Int(4));
    }

    #[test]
    fn calls_are_never_deleted() {
        let mut m = compiled_module("fn g(x) { return x; } fn f() { let r = g(1); return 2; }");
        optimize(&mut m);
        // g(1)'s result is dead but the call might have effects: kept.
        let f = m.function("f").unwrap();
        assert!(f.insts().any(|i| matches!(i, Inst::Call { .. })));
    }
}
