//! Textual IR dump (`Display` for functions and modules).

use std::fmt;

use crate::ir::{Function, Inst, Module, Operand, TyRef};

fn op(o: &Operand) -> String {
    match o {
        Operand::Reg(r) => format!("{r}"),
        Operand::ImmInt(v) => format!("{v}"),
        Operand::ImmFloat(v) => format!("{v:?}"),
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params: Vec<String> = self.params.iter().map(|p| format!("{p}")).collect();
        writeln!(f, "fn {}({}) {{", self.name, params.join(", "))?;
        for (bi, block) in self.blocks.iter().enumerate() {
            writeln!(f, "bb{bi}:")?;
            for inst in &block.insts {
                let line = match inst {
                    Inst::Const { dst, value } => format!("{dst} = {}", op(value)),
                    Inst::Bin {
                        op: o,
                        dst,
                        lhs,
                        rhs,
                    } => {
                        format!("{dst} = {o:?} {}, {}", op(lhs), op(rhs))
                    }
                    Inst::Cast { dst, src, to } => {
                        let ty = match to {
                            TyRef::Concrete(t) => format!("{t}"),
                            TyRef::Tradeoff(t) => format!("tradeoff<{t}>"),
                        };
                        format!("{dst} = cast {} to {ty}", op(src))
                    }
                    Inst::Call { dst, callee, args } => {
                        let a: Vec<String> = args.iter().map(op).collect();
                        match dst {
                            Some(d) => format!("{d} = call {callee}({})", a.join(", ")),
                            None => format!("call {callee}({})", a.join(", ")),
                        }
                    }
                    Inst::CallTradeoff {
                        dst,
                        tradeoff,
                        args,
                    } => {
                        let a: Vec<String> = args.iter().map(op).collect();
                        match dst {
                            Some(d) => {
                                format!("{d} = call tradeoff<{tradeoff}>({})", a.join(", "))
                            }
                            None => format!("call tradeoff<{tradeoff}>({})", a.join(", ")),
                        }
                    }
                    Inst::TradeoffRef { dst, tradeoff } => {
                        format!("{dst} = tradeoff<{tradeoff}>")
                    }
                    Inst::LoadState { dst, state } => {
                        format!("{dst} = load_state {state}")
                    }
                    Inst::StoreState { state, src } => {
                        format!("store_state {state}, {}", op(src))
                    }
                    Inst::Jmp { target } => format!("jmp bb{}", target.0),
                    Inst::Br {
                        cond,
                        then_b,
                        else_b,
                    } => format!("br {} ? bb{} : bb{}", op(cond), then_b.0, else_b.0),
                    Inst::Ret { value } => match value {
                        Some(v) => format!("ret {}", op(v)),
                        None => "ret".to_string(),
                    },
                };
                writeln!(f, "  {line}")?;
            }
        }
        writeln!(f, "}}")
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "; module: {} functions, {} instructions, {} tradeoff rows, {} state deps",
            self.functions().len(),
            self.inst_count(),
            self.metadata.tradeoffs.len(),
            self.metadata.state_deps.len()
        )?;
        for func in self.functions() {
            writeln!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::frontend::compile;
    use crate::midend;

    #[test]
    fn dump_contains_structure() {
        let m = midend::run(
            compile(
                "tradeoff k { values = [1, 2]; default_index = 0; }
                 state_dependence d { compute = f; }
                 fn f(x) { if (x > 0) { return x * tradeoff k; } return 0; }",
            )
            .unwrap(),
        )
        .unwrap();
        let text = format!("{m}");
        assert!(text.contains("fn f("));
        assert!(text.contains("fn f__aux_d("));
        assert!(text.contains("tradeoff<k__aux_d>"));
        assert!(text.contains("bb0:"));
        assert!(text.contains("; module:"));
    }

    #[test]
    fn dump_renders_every_terminator() {
        let m = midend::run(
            compile("fn f(x) { let i = 0; while (i < x) { i = i + 1; } return i; }").unwrap(),
        )
        .unwrap();
        let text = format!("{}", m.function("f").unwrap());
        assert!(text.contains("jmp bb"));
        assert!(text.contains("br "));
        assert!(text.contains("ret "));
    }
}
