//! Flat bytecode compiler and interpreter — the raw-speed execution tier.
//!
//! The slot-resolved interpreter ([`crate::interp::Interp`]) still walks a
//! `Vec<Vec<PInst>>` of nested enums: every step matches an instruction
//! enum, then matches each `Slot` operand, and every call allocates a fresh
//! frame. This module takes the next multiple off the hot path, the way
//! speculative-parallelization systems lower loop bodies to a flat
//! executable form before speculating:
//!
//! - **Contiguous code**: each function compiles to one flat `Vec<Op>`;
//!   block structure disappears and a single program counter replaces the
//!   `(block, pc)` pair.
//! - **Branch-threaded jumps**: `Jmp`/`Br` targets are absolute instruction
//!   offsets patched at compile time — taking a branch is one assignment.
//! - **Pre-resolved operands**: immediates are materialized into a
//!   per-function constant pool that occupies the tail of the frame, so at
//!   run time *every* operand is a frame index — no `Slot` match per read.
//! - **Fixed-layout ops**: `Op` is a flat `{code, dst, a, b, c}` record;
//!   dispatch is a single match on a fieldless opcode.
//! - **Frame arena**: frames live in one reusable value stack owned by the
//!   interpreter (calls push/pop a region); after the first call of each
//!   function the interpreter performs **zero heap allocation per call**.
//!
//! - **Superinstructions**: a peephole pass (`fuse`) collapses the
//!   hottest adjacent pairs (compare+branch, accumulate+move, latch+jump)
//!   into single fused ops, since dispatch count — not arm cost — is what
//!   the hot loop pays for.
//!
//! Semantics are bit-identical to [`crate::interp::Interp`] by
//! construction: both engines share `binop`, `cast`, the definite
//! assignment check, the intrinsic table, and the fuel discipline (one
//! unit per executed IR instruction; fused ops charge one unit per
//! covered instruction with the budget check in between, so even
//! `OutOfFuel` surfaces at the same step). `tests/differential.rs`
//! property-tests the equivalence across random programs on all three
//! engines (AST reference, slot, bytecode).

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use crate::interp::{
    binop, cast, check_definite_assignment, frame_size, ExecError, Value, DEFAULT_INTRINSICS,
};
use crate::ir::{BinOp, Inst, Module, Operand, Ty, TyRef};

/// Sentinel slot meaning "no destination register".
const NO_SLOT: u32 = u32::MAX;

/// Fieldless opcode: one dispatch match, no nested payload enums. Binary
/// operators get one opcode each so the shared `binop` helper is invoked
/// with a constant operator the compiler folds away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpCode {
    /// `frame[dst] = frame[a]` (covers `Const` after immediates are pooled).
    Mov,
    /// `frame[dst] = frame[a] + frame[b]` — and so on for the arithmetic
    /// and comparison opcodes below.
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    /// `frame[dst] = cast(frame[a])` to the opcode's type.
    CastI64,
    CastF32,
    CastF64,
    /// `frame[dst] = state[a]`.
    LoadState,
    /// `state[a] = frame[b]`.
    StoreState,
    /// Intrinsic `a` over `args_pool[b..b+c]`; result to `dst` unless
    /// `NO_SLOT`.
    CallIntrinsic,
    /// Module function `a` over `args_pool[b..b+c]`; result to `dst`.
    CallFn,
    /// Raise `errors[a]` (lazy `UnknownFunction` / `UnresolvedTradeoff`).
    Fail,
    /// `pc = a`.
    Jmp,
    /// `pc = if frame[a] truthy { b } else { c }`.
    Br,
    /// Return with no value.
    RetNone,
    /// Return `frame[a]`.
    RetVal,
    /// Fell off the end of a block with no terminator (the slot
    /// interpreter panics on the same malformed input).
    Trap,
    // --- Fused superinstructions (see `fuse`) ---------------------------
    // Each covers two IR instructions and charges two fuel units with a
    // budget check between them, so `OutOfFuel` surfaces at exactly the
    // same step as the slot interpreter.
    /// Compare `frame[a]` with `frame[b]`, then branch:
    /// `pc = if cmp { dst } else { c }`. Only emitted when the compare's
    /// destination register is read by nothing but the branch.
    LtBr,
    /// See [`OpCode::LtBr`].
    LeBr,
    /// See [`OpCode::LtBr`].
    GtBr,
    /// See [`OpCode::LtBr`].
    GeBr,
    /// See [`OpCode::LtBr`].
    EqBr,
    /// See [`OpCode::LtBr`].
    NeBr,
    /// `frame[dst] = frame[a] <op> frame[b]`, where the original
    /// instruction pair computed into a temporary read only by the
    /// following `Mov` — the temporary write is elided.
    AddMov,
    /// See [`OpCode::AddMov`].
    SubMov,
    /// See [`OpCode::AddMov`].
    MulMov,
    /// See [`OpCode::AddMov`].
    DivMov,
    /// See [`OpCode::AddMov`].
    RemMov,
    /// See [`OpCode::AddMov`].
    LtMov,
    /// See [`OpCode::AddMov`].
    LeMov,
    /// See [`OpCode::AddMov`].
    GtMov,
    /// See [`OpCode::AddMov`].
    GeMov,
    /// See [`OpCode::AddMov`].
    EqMov,
    /// See [`OpCode::AddMov`].
    NeMov,
    /// `frame[dst] = frame[a] <op> frame[b]; pc = c` — a loop latch
    /// (typically the induction increment) fused with its back-edge.
    AddJmp,
    /// See [`OpCode::AddJmp`].
    SubJmp,
    /// See [`OpCode::AddJmp`].
    MulJmp,
    /// See [`OpCode::AddJmp`].
    DivJmp,
    /// See [`OpCode::AddJmp`].
    RemJmp,
    /// See [`OpCode::AddJmp`].
    LtJmp,
    /// See [`OpCode::AddJmp`].
    LeJmp,
    /// See [`OpCode::AddJmp`].
    GtJmp,
    /// See [`OpCode::AddJmp`].
    GeJmp,
    /// See [`OpCode::AddJmp`].
    EqJmp,
    /// See [`OpCode::AddJmp`].
    NeJmp,
    /// `frame[dst] = frame[a]; pc = c`.
    MovJmp,
    /// Two chained infallible binary ops: `t = frame[a] <op1> frame[b]`
    /// into `frame[dst] = t <op2> frame[c]` (operand order per [`Op::aux`];
    /// the temporary `t` is read only by the second op and is elided).
    /// Only `Add`/`Sub`/`Mul` pairs are fused — `Div`/`Rem` can fail, and
    /// the error must surface exactly where the slot interpreter raises it.
    AddAdd,
    /// See [`OpCode::AddAdd`].
    AddSub,
    /// See [`OpCode::AddAdd`].
    AddMul,
    /// See [`OpCode::AddAdd`].
    SubAdd,
    /// See [`OpCode::AddAdd`].
    SubSub,
    /// See [`OpCode::AddAdd`].
    SubMul,
    /// See [`OpCode::AddAdd`].
    MulAdd,
    /// See [`OpCode::AddAdd`].
    MulSub,
    /// See [`OpCode::AddAdd`].
    MulMul,
    /// Intrinsic `a` over the single argument `frame[b]`; result to `dst`
    /// unless `NO_SLOT`. Specialization of [`OpCode::CallIntrinsic`] that
    /// skips the argument-marshalling scratch buffer and `args_pool`
    /// indirection (covers `sqrt` and friends — the common case).
    CallIntrinsic1,
    /// Intrinsic `a` over `(frame[b], frame[c])`; result to `dst` unless
    /// `NO_SLOT`.
    CallIntrinsic2,
}

impl OpCode {
    /// The `cmp + Br` superinstruction for a comparison opcode.
    fn with_br(self) -> Option<OpCode> {
        Some(match self {
            OpCode::Lt => OpCode::LtBr,
            OpCode::Le => OpCode::LeBr,
            OpCode::Gt => OpCode::GtBr,
            OpCode::Ge => OpCode::GeBr,
            OpCode::Eq => OpCode::EqBr,
            OpCode::Ne => OpCode::NeBr,
            _ => return None,
        })
    }

    /// The `bin + Mov` superinstruction for a binary opcode.
    fn with_mov(self) -> Option<OpCode> {
        Some(match self {
            OpCode::Add => OpCode::AddMov,
            OpCode::Sub => OpCode::SubMov,
            OpCode::Mul => OpCode::MulMov,
            OpCode::Div => OpCode::DivMov,
            OpCode::Rem => OpCode::RemMov,
            OpCode::Lt => OpCode::LtMov,
            OpCode::Le => OpCode::LeMov,
            OpCode::Gt => OpCode::GtMov,
            OpCode::Ge => OpCode::GeMov,
            OpCode::Eq => OpCode::EqMov,
            OpCode::Ne => OpCode::NeMov,
            _ => return None,
        })
    }

    /// The chained-pair superinstruction for two infallible binary ops.
    fn with_bin(self, second: OpCode) -> Option<OpCode> {
        use OpCode::*;
        Some(match (self, second) {
            (Add, Add) => AddAdd,
            (Add, Sub) => AddSub,
            (Add, Mul) => AddMul,
            (Sub, Add) => SubAdd,
            (Sub, Sub) => SubSub,
            (Sub, Mul) => SubMul,
            (Mul, Add) => MulAdd,
            (Mul, Sub) => MulSub,
            (Mul, Mul) => MulMul,
            _ => return None,
        })
    }

    /// The `bin + Jmp` superinstruction for a binary opcode.
    fn with_jmp(self) -> Option<OpCode> {
        Some(match self {
            OpCode::Add => OpCode::AddJmp,
            OpCode::Sub => OpCode::SubJmp,
            OpCode::Mul => OpCode::MulJmp,
            OpCode::Div => OpCode::DivJmp,
            OpCode::Rem => OpCode::RemJmp,
            OpCode::Lt => OpCode::LtJmp,
            OpCode::Le => OpCode::LeJmp,
            OpCode::Gt => OpCode::GtJmp,
            OpCode::Ge => OpCode::GeJmp,
            OpCode::Eq => OpCode::EqJmp,
            OpCode::Ne => OpCode::NeJmp,
            _ => return None,
        })
    }
}

/// One fixed-layout bytecode instruction. Field meaning depends on the
/// opcode (see [`OpCode`]); unused fields are zero.
#[derive(Debug, Clone, Copy)]
struct Op {
    code: OpCode,
    /// Operand-order selector for chained-pair ops ([`OpCode::AddAdd`]
    /// family): `0` if the first result is the second op's left operand,
    /// `1` if it is the right. Lives in `Op`'s alignment padding — free.
    aux: u8,
    dst: u32,
    a: u32,
    b: u32,
    c: u32,
}

/// A function compiled to flat bytecode.
struct CompiledFn {
    name: String,
    /// Frame indices of the parameters, in call order.
    params: Vec<u32>,
    /// Register count (the head of the frame).
    nregs: usize,
    /// Materialized immediates, copied into the frame tail on entry.
    consts: Vec<Value>,
    /// `nregs + consts.len()` — the full frame footprint.
    frame_len: usize,
    /// The flat instruction stream.
    code: Vec<Op>,
    /// Argument frame-slots for all calls, referenced by `(b, c)` ranges.
    args_pool: Vec<u32>,
    /// Pre-built lazy errors raised by [`OpCode::Fail`].
    errors: Vec<ExecError>,
}

impl fmt::Debug for CompiledFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledFn")
            .field("name", &self.name)
            .field("frame_len", &self.frame_len)
            .field("ops", &self.code.len())
            .finish()
    }
}

/// Bytecode interpreter over a module, API-compatible with
/// [`crate::interp::Interp`]: a fuel budget shared across calls,
/// cross-invocation state variables seeded from the module's state table,
/// and host intrinsics that shadow module functions. Functions compile to
/// flat bytecode once, on first call, and are cached.
pub struct BytecodeInterp<'m> {
    module: &'m Module,
    fuel: u64,
    /// Cross-invocation state values, indexed by state slot.
    state: Vec<Value>,
    /// State variable name → slot.
    state_index: HashMap<String, usize>,
    /// Host intrinsics, by slot.
    intrinsics: Vec<fn(&[Value]) -> Value>,
    /// Intrinsic name → slot; checked before module functions.
    intrinsic_index: HashMap<String, usize>,
    /// Compiled functions, indexed like `module.functions()`.
    compiled: Vec<Option<Rc<CompiledFn>>>,
    /// One-entry call-target cache: the last `(name, function index)` pair
    /// [`Self::call`] resolved. Entry-point calls overwhelmingly repeat the
    /// same function, and the module's function table never changes, so a
    /// string compare replaces a hash-map lookup on the per-call path.
    last_call: Option<(String, usize)>,
    /// The frame arena: every call frame is a region of this stack. Grows
    /// to the deepest call chain seen, then never reallocates.
    stack: Vec<Value>,
    /// Scratch for marshalling intrinsic arguments; reused across calls.
    scratch: Vec<Value>,
}

impl<'m> BytecodeInterp<'m> {
    /// Create an interpreter with the default fuel budget (1M steps).
    pub fn new(module: &'m Module) -> Self {
        let mut interp = BytecodeInterp {
            module,
            fuel: 1_000_000,
            state: Vec::new(),
            state_index: HashMap::new(),
            intrinsics: Vec::new(),
            intrinsic_index: HashMap::new(),
            compiled: vec![None; module.functions().len()],
            last_call: None,
            stack: Vec::new(),
            scratch: Vec::new(),
        };
        for &(name, f) in DEFAULT_INTRINSICS {
            interp.register_intrinsic(name, f);
        }
        for v in &module.metadata.state_vars {
            let init = match v.init {
                crate::metadata::StateInit::Int(i) => Value::Int(i),
                crate::metadata::StateInit::Float(f) => Value::Float(f),
            };
            let slot = interp.state_slot(&v.name);
            interp.state[slot] = init;
        }
        interp
    }

    /// Replace the fuel budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// The current value of a state variable.
    pub fn state_value(&self, name: &str) -> Option<Value> {
        self.state_index.get(name).map(|&i| self.state[i])
    }

    /// Overwrite a state variable (e.g. to restore a checkpoint).
    pub fn set_state(&mut self, name: impl Into<String>, value: Value) {
        let slot = self.state_slot(&name.into());
        self.state[slot] = value;
    }

    /// Register a host intrinsic callable from IR.
    ///
    /// Invalidates the compiled-function cache: a new intrinsic can change
    /// how callee names resolve.
    pub fn register_intrinsic(&mut self, name: impl Into<String>, f: fn(&[Value]) -> Value) {
        let name = name.into();
        match self.intrinsic_index.get(&name) {
            Some(&i) => self.intrinsics[i] = f,
            None => {
                self.intrinsic_index.insert(name, self.intrinsics.len());
                self.intrinsics.push(f);
            }
        }
        self.compiled = vec![None; self.module.functions().len()];
    }

    /// The state slot for `name`, allocating one (default `Int(0)`) if the
    /// variable was never declared — matching [`crate::interp::Interp`].
    fn state_slot(&mut self, name: &str) -> usize {
        if let Some(&i) = self.state_index.get(name) {
            return i;
        }
        let i = self.state.len();
        self.state.push(Value::Int(0));
        self.state_index.insert(name.to_string(), i);
        i
    }

    /// Call `name` with `args`; returns the function's returned value.
    pub fn call(&mut self, name: &str, args: &[Value]) -> Result<Option<Value>, ExecError> {
        let idx = match &self.last_call {
            Some((n, i)) if n == name => *i,
            _ => {
                let i = self
                    .module
                    .function_index(name)
                    .ok_or_else(|| ExecError::UnknownFunction(name.to_string()))?;
                self.last_call = Some((name.to_string(), i));
                i
            }
        };
        let f = self.compile(idx)?;
        if f.params.len() != args.len() {
            return Err(ExecError::ArityMismatch {
                function: name.to_string(),
                expected: f.params.len(),
                got: args.len(),
            });
        }
        let base = self.stack.len();
        self.stack.resize(base + f.frame_len, Value::Int(0));
        for (&p, &a) in f.params.iter().zip(args) {
            self.stack[base + p as usize] = a;
        }
        self.stack[base + f.nregs..base + f.frame_len].copy_from_slice(&f.consts);
        let result = self.exec_at(&f, base);
        self.stack.truncate(base);
        result
    }

    /// Compile a function to bytecode (cached after the first call).
    fn compile(&mut self, idx: usize) -> Result<Rc<CompiledFn>, ExecError> {
        if let Some(c) = &self.compiled[idx] {
            return Ok(Rc::clone(c));
        }
        let module: &'m Module = self.module;
        let f = &module.functions()[idx];
        let nregs = frame_size(f);
        check_definite_assignment(f, nregs)?;

        // Pass 1: lay out blocks end to end. A block with no terminator
        // gets a trailing trap so flat fallthrough can't silently run into
        // the next block.
        let has_term = |insts: &[Inst]| {
            insts
                .iter()
                .any(|i| matches!(i, Inst::Jmp { .. } | Inst::Br { .. } | Inst::Ret { .. }))
        };
        let mut starts = Vec::with_capacity(f.blocks.len());
        let mut at = 0u32;
        for block in &f.blocks {
            starts.push(at);
            at += block.insts.len() as u32 + u32::from(!has_term(&block.insts));
        }

        // Pass 2: emit, pooling immediates (deduplicated by bit pattern)
        // into frame slots past the registers.
        let mut consts: Vec<Value> = Vec::new();
        let mut const_index: HashMap<(bool, u64), u32> = HashMap::new();
        let mut code: Vec<Op> = Vec::with_capacity(at as usize);
        let mut args_pool: Vec<u32> = Vec::new();
        let mut errors: Vec<ExecError> = Vec::new();
        let mut slot = |op: &Operand, consts: &mut Vec<Value>| -> u32 {
            let (key, value) = match *op {
                Operand::Reg(r) => return r.0,
                Operand::ImmInt(v) => ((false, v as u64), Value::Int(v)),
                Operand::ImmFloat(v) => ((true, v.to_bits()), Value::Float(v)),
            };
            *const_index.entry(key).or_insert_with(|| {
                consts.push(value);
                nregs as u32 + (consts.len() - 1) as u32
            })
        };
        let op0 = |code: OpCode| Op {
            code,
            aux: 0,
            dst: 0,
            a: 0,
            b: 0,
            c: 0,
        };
        for block in &f.blocks {
            let emitted_at_entry = code.len();
            for inst in &block.insts {
                let op = match inst {
                    Inst::Const { dst, value } => Op {
                        dst: dst.0,
                        a: slot(value, &mut consts),
                        ..op0(OpCode::Mov)
                    },
                    Inst::Bin { op, dst, lhs, rhs } => Op {
                        dst: dst.0,
                        a: slot(lhs, &mut consts),
                        b: slot(rhs, &mut consts),
                        ..op0(match op {
                            BinOp::Add => OpCode::Add,
                            BinOp::Sub => OpCode::Sub,
                            BinOp::Mul => OpCode::Mul,
                            BinOp::Div => OpCode::Div,
                            BinOp::Rem => OpCode::Rem,
                            BinOp::Lt => OpCode::Lt,
                            BinOp::Le => OpCode::Le,
                            BinOp::Gt => OpCode::Gt,
                            BinOp::Ge => OpCode::Ge,
                            BinOp::Eq => OpCode::Eq,
                            BinOp::Ne => OpCode::Ne,
                        })
                    },
                    Inst::Cast { dst, src, to } => match to {
                        TyRef::Concrete(t) => Op {
                            dst: dst.0,
                            a: slot(src, &mut consts),
                            ..op0(match t {
                                Ty::I64 => OpCode::CastI64,
                                Ty::F32 => OpCode::CastF32,
                                Ty::F64 => OpCode::CastF64,
                            })
                        },
                        TyRef::Tradeoff(name) => {
                            errors.push(ExecError::UnresolvedTradeoff(name.clone()));
                            Op {
                                a: (errors.len() - 1) as u32,
                                ..op0(OpCode::Fail)
                            }
                        }
                    },
                    Inst::TradeoffRef { tradeoff, .. } | Inst::CallTradeoff { tradeoff, .. } => {
                        errors.push(ExecError::UnresolvedTradeoff(tradeoff.clone()));
                        Op {
                            a: (errors.len() - 1) as u32,
                            ..op0(OpCode::Fail)
                        }
                    }
                    Inst::LoadState { dst, state } => Op {
                        dst: dst.0,
                        a: self.state_slot(state) as u32,
                        ..op0(OpCode::LoadState)
                    },
                    Inst::StoreState { state, src } => Op {
                        a: self.state_slot(state) as u32,
                        b: slot(src, &mut consts),
                        ..op0(OpCode::StoreState)
                    },
                    Inst::Call { dst, callee, args } => {
                        let dst = dst.map(|d| d.0).unwrap_or(NO_SLOT);
                        let start = args_pool.len() as u32;
                        for a in args {
                            let s = slot(a, &mut consts);
                            args_pool.push(s);
                        }
                        // Intrinsics shadow module functions, matching the
                        // slot interpreter's lookup order.
                        if let Some(&i) = self.intrinsic_index.get(callee) {
                            match args_pool[start as usize..] {
                                [arg] => Op {
                                    dst,
                                    a: i as u32,
                                    b: arg,
                                    c: 0,
                                    code: OpCode::CallIntrinsic1,
                                    aux: 0,
                                },
                                [arg0, arg1] => Op {
                                    dst,
                                    a: i as u32,
                                    b: arg0,
                                    c: arg1,
                                    code: OpCode::CallIntrinsic2,
                                    aux: 0,
                                },
                                _ => Op {
                                    dst,
                                    a: i as u32,
                                    b: start,
                                    c: args.len() as u32,
                                    code: OpCode::CallIntrinsic,
                                    aux: 0,
                                },
                            }
                        } else if let Some(i) = module.function_index(callee) {
                            Op {
                                dst,
                                a: i as u32,
                                b: start,
                                c: args.len() as u32,
                                code: OpCode::CallFn,
                                aux: 0,
                            }
                        } else {
                            errors.push(ExecError::UnknownFunction(callee.clone()));
                            Op {
                                a: (errors.len() - 1) as u32,
                                ..op0(OpCode::Fail)
                            }
                        }
                    }
                    Inst::Jmp { target } => Op {
                        a: starts[target.0],
                        ..op0(OpCode::Jmp)
                    },
                    Inst::Br {
                        cond,
                        then_b,
                        else_b,
                    } => Op {
                        a: slot(cond, &mut consts),
                        b: starts[then_b.0],
                        c: starts[else_b.0],
                        ..op0(OpCode::Br)
                    },
                    Inst::Ret { value } => match value {
                        Some(v) => Op {
                            a: slot(v, &mut consts),
                            ..op0(OpCode::RetVal)
                        },
                        None => op0(OpCode::RetNone),
                    },
                };
                code.push(op);
            }
            if !has_term(&block.insts) {
                code.push(op0(OpCode::Trap));
            }
            debug_assert!(code.len() > emitted_at_entry, "every block emits >= 1 op");
        }
        debug_assert_eq!(code.len() as u32, at, "pass-1/pass-2 layout mismatch");

        // Pass 3: peephole-fuse adjacent instruction pairs into
        // superinstructions (dispatch count is the dominant hot-loop cost).
        fuse(&mut code, &args_pool, nregs);

        let frame_len = nregs + consts.len();
        let compiled = Rc::new(CompiledFn {
            name: f.name.clone(),
            params: f.params.iter().map(|p| p.0).collect(),
            nregs,
            consts,
            frame_len,
            code,
            args_pool,
            errors,
        });
        self.compiled[idx] = Some(Rc::clone(&compiled));
        Ok(compiled)
    }

    /// The hot loop: execute `f` with its frame at `stack[base..]`.
    ///
    /// Fuel, the frame arena, and the state table all live in locals for
    /// the duration of the loop (moved out of `self` and written back on
    /// every exit path and around nested calls) so their base pointers stay
    /// register-resident instead of being reloaded through `&mut self` each
    /// op. Frame/state accesses go through [`fget`]/[`fset`]/[`sget`]/
    /// [`sset`], whose bounds are established once by construction in
    /// [`Self::compile`] rather than re-checked on every operand.
    fn exec_at(&mut self, f: &CompiledFn, base: usize) -> Result<Option<Value>, ExecError> {
        let mut pc = 0usize;
        let mut fuel = self.fuel;
        let mut stack = std::mem::take(&mut self.stack);
        let mut state = std::mem::take(&mut self.state);
        macro_rules! bin_arm {
            ($bop:expr, $op:expr) => {{
                let a = fget(&stack, base, $op.a);
                let b = fget(&stack, base, $op.b);
                match binop($bop, a, b) {
                    Ok(v) => fset(&mut stack, base, $op.dst, v),
                    Err(e) => break Err(e),
                }
            }};
        }
        // Fused two-instruction arms charge the second fuel unit
        // themselves (the loop header charged the first), with the budget
        // check between the halves — identical `OutOfFuel` timing to
        // executing the pair unfused.
        macro_rules! second_unit {
            () => {{
                if fuel == 0 {
                    break Err(ExecError::OutOfFuel);
                }
                fuel -= 1;
            }};
        }
        macro_rules! cmp_br_arm {
            ($bop:expr, $op:expr) => {{
                let a = fget(&stack, base, $op.a);
                let b = fget(&stack, base, $op.b);
                // Comparisons never fail; the elided destination register
                // is read by nothing but this branch (checked by `fuse`).
                let Ok(v) = binop($bop, a, b) else {
                    unreachable!("comparison cannot fail")
                };
                second_unit!();
                pc = if v.truthy() {
                    $op.dst as usize
                } else {
                    $op.c as usize
                };
            }};
        }
        macro_rules! bin_mov_arm {
            ($bop:expr, $op:expr) => {{
                let a = fget(&stack, base, $op.a);
                let b = fget(&stack, base, $op.b);
                match binop($bop, a, b) {
                    Ok(v) => {
                        second_unit!();
                        fset(&mut stack, base, $op.dst, v);
                    }
                    Err(e) => break Err(e),
                }
            }};
        }
        macro_rules! bin_bin_arm {
            ($b1:expr, $b2:expr, $op:expr) => {{
                let a = fget(&stack, base, $op.a);
                let b = fget(&stack, base, $op.b);
                // Add/Sub/Mul never fail (fuse never pairs Div/Rem here).
                let Ok(t) = binop($b1, a, b) else {
                    unreachable!("add/sub/mul cannot fail")
                };
                second_unit!();
                let o = fget(&stack, base, $op.c);
                let (x, y) = if $op.aux == 0 { (t, o) } else { (o, t) };
                let Ok(v) = binop($b2, x, y) else {
                    unreachable!("add/sub/mul cannot fail")
                };
                fset(&mut stack, base, $op.dst, v);
            }};
        }
        macro_rules! bin_jmp_arm {
            ($bop:expr, $op:expr) => {{
                let a = fget(&stack, base, $op.a);
                let b = fget(&stack, base, $op.b);
                match binop($bop, a, b) {
                    Ok(v) => {
                        fset(&mut stack, base, $op.dst, v);
                        second_unit!();
                        pc = $op.c as usize;
                    }
                    Err(e) => break Err(e),
                }
            }};
        }
        let result = loop {
            if fuel == 0 {
                break Err(ExecError::OutOfFuel);
            }
            fuel -= 1;
            // SAFETY: `compile` guarantees pc stays in bounds: every block
            // ends in a terminator (a Trap is appended otherwise), jump
            // targets are block starts, and sequential execution from a
            // block start reaches the block's first terminator before
            // running off its end — so every read is within `code`.
            let op = unsafe { *f.code.get_unchecked(pc) };
            pc += 1;
            match op.code {
                OpCode::Mov => {
                    let v = fget(&stack, base, op.a);
                    fset(&mut stack, base, op.dst, v);
                }
                OpCode::Add => bin_arm!(BinOp::Add, op),
                OpCode::Sub => bin_arm!(BinOp::Sub, op),
                OpCode::Mul => bin_arm!(BinOp::Mul, op),
                OpCode::Div => bin_arm!(BinOp::Div, op),
                OpCode::Rem => bin_arm!(BinOp::Rem, op),
                OpCode::Lt => bin_arm!(BinOp::Lt, op),
                OpCode::Le => bin_arm!(BinOp::Le, op),
                OpCode::Gt => bin_arm!(BinOp::Gt, op),
                OpCode::Ge => bin_arm!(BinOp::Ge, op),
                OpCode::Eq => bin_arm!(BinOp::Eq, op),
                OpCode::Ne => bin_arm!(BinOp::Ne, op),
                OpCode::CastI64 => {
                    let v = cast(fget(&stack, base, op.a), Ty::I64);
                    fset(&mut stack, base, op.dst, v);
                }
                OpCode::CastF32 => {
                    let v = cast(fget(&stack, base, op.a), Ty::F32);
                    fset(&mut stack, base, op.dst, v);
                }
                OpCode::CastF64 => {
                    let v = cast(fget(&stack, base, op.a), Ty::F64);
                    fset(&mut stack, base, op.dst, v);
                }
                OpCode::LoadState => {
                    let v = sget(&state, op.a);
                    fset(&mut stack, base, op.dst, v);
                }
                OpCode::StoreState => {
                    let v = fget(&stack, base, op.b);
                    sset(&mut state, op.a, v);
                }
                OpCode::CallIntrinsic => {
                    let args = &f.args_pool[op.b as usize..(op.b + op.c) as usize];
                    self.scratch.clear();
                    for &a in args {
                        let v = fget(&stack, base, a);
                        self.scratch.push(v);
                    }
                    let func = self.intrinsics[op.a as usize];
                    let result = func(&self.scratch);
                    if op.dst != NO_SLOT {
                        fset(&mut stack, base, op.dst, result);
                    }
                }
                OpCode::CallFn => {
                    self.fuel = fuel;
                    self.stack = stack;
                    self.state = state;
                    let r = self.call_fn(f, base, op);
                    fuel = self.fuel;
                    stack = std::mem::take(&mut self.stack);
                    state = std::mem::take(&mut self.state);
                    if let Err(e) = r {
                        break Err(e);
                    }
                }
                OpCode::Fail => break Err(f.errors[op.a as usize].clone()),
                OpCode::Jmp => pc = op.a as usize,
                OpCode::Br => {
                    pc = if fget(&stack, base, op.a).truthy() {
                        op.b as usize
                    } else {
                        op.c as usize
                    };
                }
                OpCode::RetNone => break Ok(None),
                OpCode::RetVal => break Ok(Some(fget(&stack, base, op.a))),
                OpCode::Trap => {
                    self.fuel = fuel;
                    self.stack = stack;
                    self.state = state;
                    panic!("bytecode: `{}` fell off a block with no terminator", f.name)
                }
                OpCode::LtBr => cmp_br_arm!(BinOp::Lt, op),
                OpCode::LeBr => cmp_br_arm!(BinOp::Le, op),
                OpCode::GtBr => cmp_br_arm!(BinOp::Gt, op),
                OpCode::GeBr => cmp_br_arm!(BinOp::Ge, op),
                OpCode::EqBr => cmp_br_arm!(BinOp::Eq, op),
                OpCode::NeBr => cmp_br_arm!(BinOp::Ne, op),
                OpCode::AddMov => bin_mov_arm!(BinOp::Add, op),
                OpCode::SubMov => bin_mov_arm!(BinOp::Sub, op),
                OpCode::MulMov => bin_mov_arm!(BinOp::Mul, op),
                OpCode::DivMov => bin_mov_arm!(BinOp::Div, op),
                OpCode::RemMov => bin_mov_arm!(BinOp::Rem, op),
                OpCode::LtMov => bin_mov_arm!(BinOp::Lt, op),
                OpCode::LeMov => bin_mov_arm!(BinOp::Le, op),
                OpCode::GtMov => bin_mov_arm!(BinOp::Gt, op),
                OpCode::GeMov => bin_mov_arm!(BinOp::Ge, op),
                OpCode::EqMov => bin_mov_arm!(BinOp::Eq, op),
                OpCode::NeMov => bin_mov_arm!(BinOp::Ne, op),
                OpCode::AddJmp => bin_jmp_arm!(BinOp::Add, op),
                OpCode::SubJmp => bin_jmp_arm!(BinOp::Sub, op),
                OpCode::MulJmp => bin_jmp_arm!(BinOp::Mul, op),
                OpCode::DivJmp => bin_jmp_arm!(BinOp::Div, op),
                OpCode::RemJmp => bin_jmp_arm!(BinOp::Rem, op),
                OpCode::LtJmp => bin_jmp_arm!(BinOp::Lt, op),
                OpCode::LeJmp => bin_jmp_arm!(BinOp::Le, op),
                OpCode::GtJmp => bin_jmp_arm!(BinOp::Gt, op),
                OpCode::GeJmp => bin_jmp_arm!(BinOp::Ge, op),
                OpCode::EqJmp => bin_jmp_arm!(BinOp::Eq, op),
                OpCode::NeJmp => bin_jmp_arm!(BinOp::Ne, op),
                OpCode::MovJmp => {
                    let v = fget(&stack, base, op.a);
                    fset(&mut stack, base, op.dst, v);
                    second_unit!();
                    pc = op.c as usize;
                }
                OpCode::AddAdd => bin_bin_arm!(BinOp::Add, BinOp::Add, op),
                OpCode::AddSub => bin_bin_arm!(BinOp::Add, BinOp::Sub, op),
                OpCode::AddMul => bin_bin_arm!(BinOp::Add, BinOp::Mul, op),
                OpCode::SubAdd => bin_bin_arm!(BinOp::Sub, BinOp::Add, op),
                OpCode::SubSub => bin_bin_arm!(BinOp::Sub, BinOp::Sub, op),
                OpCode::SubMul => bin_bin_arm!(BinOp::Sub, BinOp::Mul, op),
                OpCode::MulAdd => bin_bin_arm!(BinOp::Mul, BinOp::Add, op),
                OpCode::MulSub => bin_bin_arm!(BinOp::Mul, BinOp::Sub, op),
                OpCode::MulMul => bin_bin_arm!(BinOp::Mul, BinOp::Mul, op),
                OpCode::CallIntrinsic1 => {
                    let args = [fget(&stack, base, op.b)];
                    let func = self.intrinsics[op.a as usize];
                    let result = func(&args);
                    if op.dst != NO_SLOT {
                        fset(&mut stack, base, op.dst, result);
                    }
                }
                OpCode::CallIntrinsic2 => {
                    let args = [fget(&stack, base, op.b), fget(&stack, base, op.c)];
                    let func = self.intrinsics[op.a as usize];
                    let result = func(&args);
                    if op.dst != NO_SLOT {
                        fset(&mut stack, base, op.dst, result);
                    }
                }
            }
        };
        self.fuel = fuel;
        self.stack = stack;
        self.state = state;
        result
    }

    /// The cold half of [`OpCode::CallFn`]: push a callee frame onto the
    /// arena, run it, pop it, store the result. Kept out of line so the
    /// dispatch loop stays small.
    #[inline(never)]
    fn call_fn(&mut self, f: &CompiledFn, base: usize, op: Op) -> Result<(), ExecError> {
        let callee = self.compile(op.a as usize)?;
        if callee.params.len() != op.c as usize {
            return Err(ExecError::ArityMismatch {
                function: callee.name.clone(),
                expected: callee.params.len(),
                got: op.c as usize,
            });
        }
        let cbase = self.stack.len();
        self.stack.resize(cbase + callee.frame_len, Value::Int(0));
        for (i, &p) in callee.params.iter().enumerate() {
            let a = f.args_pool[op.b as usize + i];
            let v = fget(&self.stack, base, a);
            self.stack[cbase + p as usize] = v;
        }
        self.stack[cbase + callee.nregs..cbase + callee.frame_len].copy_from_slice(&callee.consts);
        let result = self.exec_at(&callee, cbase);
        self.stack.truncate(cbase);
        let result = result?;
        if op.dst != NO_SLOT {
            fset(
                &mut self.stack,
                base,
                op.dst,
                result.unwrap_or(Value::Int(0)),
            );
        }
        Ok(())
    }
}

/// Peephole pass: fuse adjacent instruction pairs into superinstructions.
///
/// Dispatch — the indirect branch at the top of the interpreter loop — is
/// the dominant per-op cost, so halving the number of dispatched ops on
/// the hottest patterns buys more than shaving any single arm. Three pairs
/// cover the loop shapes the front end emits:
///
/// - `cmp t, a, b; Br t, then, else` → `CmpBr` — legal only when `t` is
///   read by nothing but that branch (the fused op elides the write).
/// - `bin t, a, b; Mov d, t` → `BinMov d, a, b` — same deadness condition
///   on `t`; covers the `acc = acc + ...` accumulator pattern.
/// - `bin d, a, b; Jmp target` / `Mov d, a; Jmp target` → `BinJmp` /
///   `MovJmp` — the loop-latch increment fused with its back-edge.
///
/// Each fused op still charges one fuel unit per covered IR instruction,
/// with the budget check between the two units, so `OutOfFuel` (and any
/// `DivisionByZero` from the first half) surfaces at exactly the same
/// step as the slot interpreter. Fusion never crosses a block boundary:
/// the second element of a pair is mid-block by construction, and jump
/// targets only ever point at block starts — asserted when remapping.
fn fuse(code: &mut Vec<Op>, args_pool: &[u32], nregs: usize) {
    // How often each *register* slot is read (constant-pool slots are
    // counted too but never queried: fused destinations are registers).
    let mut reads = vec![0u32; nregs];
    let mut read = |slot: u32| {
        if (slot as usize) < nregs {
            reads[slot as usize] += 1;
        }
    };
    for op in code.iter() {
        match op.code {
            OpCode::Mov | OpCode::CastI64 | OpCode::CastF32 | OpCode::CastF64 => read(op.a),
            OpCode::Add
            | OpCode::Sub
            | OpCode::Mul
            | OpCode::Div
            | OpCode::Rem
            | OpCode::Lt
            | OpCode::Le
            | OpCode::Gt
            | OpCode::Ge
            | OpCode::Eq
            | OpCode::Ne => {
                read(op.a);
                read(op.b);
            }
            OpCode::StoreState => read(op.b),
            OpCode::Br | OpCode::RetVal => read(op.a),
            OpCode::CallIntrinsic1 => read(op.b),
            OpCode::CallIntrinsic2 => {
                read(op.b);
                read(op.c);
            }
            OpCode::CallIntrinsic | OpCode::CallFn => {
                for &s in &args_pool[op.b as usize..(op.b + op.c) as usize] {
                    read(s);
                }
            }
            _ => {}
        }
    }

    // Defensive: never fuse across an instruction something jumps to. By
    // construction targets are block starts and pairs are intra-block, so
    // this should never actually block a fusion.
    let mut is_target = vec![false; code.len()];
    for op in code.iter() {
        match op.code {
            OpCode::Jmp => is_target[op.a as usize] = true,
            OpCode::Br => {
                is_target[op.b as usize] = true;
                is_target[op.c as usize] = true;
            }
            _ => {}
        }
    }

    let mut out: Vec<Op> = Vec::with_capacity(code.len());
    let mut map = vec![u32::MAX; code.len()];
    let mut i = 0;
    while i < code.len() {
        map[i] = out.len() as u32;
        let op = code[i];
        let next = code.get(i + 1).copied().filter(|_| !is_target[i + 1]);
        let dead_dst = |dst: u32| reads[dst as usize] == 1;
        let fused = next.and_then(|n| match n.code {
            OpCode::Br if n.a == op.dst && dead_dst(op.dst) => op.code.with_br().map(|code| Op {
                code,
                aux: 0,
                dst: n.b,
                a: op.a,
                b: op.b,
                c: n.c,
            }),
            OpCode::Mov if n.a == op.dst && dead_dst(op.dst) => op.code.with_mov().map(|code| Op {
                code,
                aux: 0,
                dst: n.dst,
                a: op.a,
                b: op.b,
                c: 0,
            }),
            OpCode::Add | OpCode::Sub | OpCode::Mul
                if (n.a == op.dst) != (n.b == op.dst) && dead_dst(op.dst) =>
            {
                op.code.with_bin(n.code).map(|code| Op {
                    code,
                    aux: u8::from(n.b == op.dst),
                    dst: n.dst,
                    a: op.a,
                    b: op.b,
                    c: if n.a == op.dst { n.b } else { n.a },
                })
            }
            OpCode::Jmp if op.code == OpCode::Mov => Some(Op {
                code: OpCode::MovJmp,
                aux: 0,
                dst: op.dst,
                a: op.a,
                b: 0,
                c: n.a,
            }),
            OpCode::Jmp => op.code.with_jmp().map(|code| Op {
                code,
                aux: 0,
                dst: op.dst,
                a: op.a,
                b: op.b,
                c: n.a,
            }),
            _ => None,
        });
        match fused {
            Some(f) => {
                out.push(f);
                i += 2;
            }
            None => {
                out.push(op);
                i += 1;
            }
        }
    }

    // Remap jump targets from pre-fusion to post-fusion indices.
    let remap = |t: &mut u32| {
        let new = map[*t as usize];
        debug_assert_ne!(new, u32::MAX, "jump target fused away");
        *t = new;
    };
    for op in &mut out {
        match op.code {
            OpCode::Jmp => remap(&mut op.a),
            OpCode::Br => {
                remap(&mut op.b);
                remap(&mut op.c);
            }
            OpCode::LtBr
            | OpCode::LeBr
            | OpCode::GtBr
            | OpCode::GeBr
            | OpCode::EqBr
            | OpCode::NeBr => {
                remap(&mut op.dst);
                remap(&mut op.c);
            }
            OpCode::AddJmp
            | OpCode::SubJmp
            | OpCode::MulJmp
            | OpCode::DivJmp
            | OpCode::RemJmp
            | OpCode::LtJmp
            | OpCode::LeJmp
            | OpCode::GtJmp
            | OpCode::GeJmp
            | OpCode::EqJmp
            | OpCode::NeJmp
            | OpCode::MovJmp => remap(&mut op.c),
            _ => {}
        }
    }
    *code = out;
}

/// Read frame slot `slot` of the frame at `base`.
#[inline(always)]
fn fget(stack: &[Value], base: usize, slot: u32) -> Value {
    debug_assert!(base + (slot as usize) < stack.len());
    // SAFETY: `compile` only emits operand slots below `frame_len`
    // (register operands are covered by `frame_size`, pooled constants sit
    // at `nregs..frame_len` by construction), and the frame
    // `[base, base + frame_len)` stays inside the arena for the whole
    // call — callees push strictly above it and truncate back on return.
    unsafe { *stack.get_unchecked(base + slot as usize) }
}

/// Write frame slot `slot` of the frame at `base`.
#[inline(always)]
fn fset(stack: &mut [Value], base: usize, slot: u32, v: Value) {
    debug_assert!(base + (slot as usize) < stack.len());
    // SAFETY: same bounds argument as `fget`; destination slots are
    // always registers (`< nregs`) and `NO_SLOT` is filtered by callers.
    unsafe {
        *stack.get_unchecked_mut(base + slot as usize) = v;
    }
}

/// Read interpreter state slot `slot`.
#[inline(always)]
fn sget(state: &[Value], slot: u32) -> Value {
    debug_assert!((slot as usize) < state.len());
    // SAFETY: `compile` resolves state slots through `state_slot`, which
    // returns an index into `state`, and `state` never shrinks.
    unsafe { *state.get_unchecked(slot as usize) }
}

/// Write interpreter state slot `slot`.
#[inline(always)]
fn sset(state: &mut [Value], slot: u32, v: Value) {
    debug_assert!((slot as usize) < state.len());
    // SAFETY: same argument as `sget`.
    unsafe {
        *state.get_unchecked_mut(slot as usize) = v;
    }
}

impl fmt::Debug for BytecodeInterp<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BytecodeInterp")
            .field("fuel", &self.fuel)
            .field("state", &self.state.len())
            .field(
                "compiled",
                &self.compiled.iter().filter(|c| c.is_some()).count(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower_fn, validate};
    use crate::parser::parse;

    fn module_of(src: &str) -> Module {
        let p = parse(src).unwrap();
        let mut m = Module::new();
        for f in &p.functions {
            let lowered = lower_fn(f).unwrap();
            validate(&lowered).unwrap();
            m.add_function(lowered);
        }
        m
    }

    fn run(src: &str, f: &str, args: &[Value]) -> Value {
        let m = module_of(src);
        BytecodeInterp::new(&m).call(f, args).unwrap().unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(
            run(
                "fn f(a, b) { return a * b + 2; }",
                "f",
                &[3.into(), 4.into()]
            ),
            Value::Int(14)
        );
    }

    #[test]
    fn float_arithmetic() {
        assert_eq!(
            run("fn f(a) { return a / 2.0; }", "f", &[7.into()]),
            Value::Float(3.5)
        );
    }

    #[test]
    fn loops_terminate() {
        assert_eq!(
            run(
                "fn sum(n) { let s = 0; let i = 1; while (i <= n) { s = s + i; i = i + 1; } return s; }",
                "sum",
                &[100.into()],
            ),
            Value::Int(5050)
        );
    }

    #[test]
    fn conditionals() {
        let src = "fn sign(x) { if (x > 0) { return 1; } else if (x < 0) { return 0 - 1; } else { return 0; } }";
        assert_eq!(run(src, "sign", &[5.into()]), Value::Int(1));
        assert_eq!(run(src, "sign", &[(-5).into()]), Value::Int(-1));
        assert_eq!(run(src, "sign", &[0.into()]), Value::Int(0));
    }

    #[test]
    fn calls_between_functions() {
        let src = "fn sq(x) { return x * x; } fn f(a) { return sq(a) + sq(a + 1); }";
        assert_eq!(run(src, "f", &[3.into()]), Value::Int(25));
    }

    #[test]
    fn recursion() {
        let src = "fn fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }";
        assert_eq!(run(src, "fact", &[10.into()]), Value::Int(3628800));
    }

    #[test]
    fn intrinsic_sqrt() {
        assert_eq!(
            run("fn f(x) { return sqrt(x); }", "f", &[9.0.into()]),
            Value::Float(3.0)
        );
    }

    #[test]
    fn fuel_matches_slot_interpreter_exactly() {
        // Same program, same budget: both engines run out of fuel at the
        // same step, or neither does. Probe a band of budgets around the
        // program's exact cost.
        use crate::interp::Interp;
        let src = "fn sum(n) { let s = 0; for i in 0..n { s = s + i; } return s; }";
        let m = module_of(src);
        for fuel in 0..200u64 {
            let a = Interp::new(&m).with_fuel(fuel).call("sum", &[10.into()]);
            let b = BytecodeInterp::new(&m)
                .with_fuel(fuel)
                .call("sum", &[10.into()]);
            assert_eq!(a, b, "divergence at fuel {fuel}");
        }
    }

    #[test]
    fn fuel_limits_runaway_loops() {
        let m = module_of("fn spin() { let i = 0; while (i < 100) { i = i; } return i; }");
        let err = BytecodeInterp::new(&m)
            .with_fuel(1000)
            .call("spin", &[])
            .unwrap_err();
        assert_eq!(err, ExecError::OutOfFuel);
    }

    #[test]
    fn unresolved_tradeoff_is_an_error() {
        let m = module_of("fn f() { return tradeoff k; }");
        let err = BytecodeInterp::new(&m).call("f", &[]).unwrap_err();
        assert_eq!(err, ExecError::UnresolvedTradeoff("k".into()));
    }

    #[test]
    fn division_by_zero() {
        let m = module_of("fn f(a) { return a / 0; }");
        let err = BytecodeInterp::new(&m).call("f", &[1.into()]).unwrap_err();
        assert_eq!(err, ExecError::DivisionByZero);
    }

    #[test]
    fn unknown_function() {
        let m = module_of("fn f() { return g(); }");
        let err = BytecodeInterp::new(&m).call("f", &[]).unwrap_err();
        assert_eq!(err, ExecError::UnknownFunction("g".into()));
    }

    #[test]
    fn arity_mismatch() {
        let m = module_of("fn f(a, b) { return a + b; }");
        let err = BytecodeInterp::new(&m).call("f", &[1.into()]).unwrap_err();
        assert!(matches!(err, ExecError::ArityMismatch { .. }));
    }

    #[test]
    fn f32_cast_quantizes() {
        use crate::ir::{BlockId, Inst, TyRef};
        let mut f = crate::ir::Function::new("q", 1);
        let p = f.params[0];
        let dst = f.fresh_reg();
        f.push(
            BlockId(0),
            Inst::Cast {
                dst,
                src: p.into(),
                to: TyRef::Concrete(Ty::F32),
            },
        );
        f.push(
            BlockId(0),
            Inst::Ret {
                value: Some(dst.into()),
            },
        );
        let mut m = Module::new();
        m.add_function(f);
        let x = 0.1_f64 + 1e-12;
        let out = BytecodeInterp::new(&m)
            .call("q", &[x.into()])
            .unwrap()
            .unwrap();
        assert_eq!(out.as_float(), x as f32 as f64);
    }

    #[test]
    fn unassigned_register_is_an_error() {
        use crate::ir::{BlockId, Inst, Operand, Reg};
        let mut f = crate::ir::Function::new("bad", 0);
        f.push(
            BlockId(0),
            Inst::Ret {
                value: Some(Operand::Reg(Reg(5))),
            },
        );
        let mut m = Module::new();
        m.add_function(f);
        let err = BytecodeInterp::new(&m).call("bad", &[]).unwrap_err();
        assert_eq!(
            err,
            ExecError::UnassignedRegister {
                function: "bad".into(),
                reg: 5
            }
        );
    }

    #[test]
    fn state_persists_across_calls() {
        use crate::ir::{BlockId, Inst, Operand};
        // fn bump() { s = load_state("acc"); s = s + 1; store_state("acc", s); return s; }
        let mut f = crate::ir::Function::new("bump", 0);
        let s = f.fresh_reg();
        let t = f.fresh_reg();
        f.push(
            BlockId(0),
            Inst::LoadState {
                dst: s,
                state: "acc".into(),
            },
        );
        f.push(
            BlockId(0),
            Inst::Bin {
                op: BinOp::Add,
                dst: t,
                lhs: s.into(),
                rhs: Operand::ImmInt(1),
            },
        );
        f.push(
            BlockId(0),
            Inst::StoreState {
                state: "acc".into(),
                src: t.into(),
            },
        );
        f.push(
            BlockId(0),
            Inst::Ret {
                value: Some(t.into()),
            },
        );
        let mut m = Module::new();
        m.add_function(f);
        let mut interp = BytecodeInterp::new(&m);
        assert_eq!(interp.call("bump", &[]).unwrap(), Some(Value::Int(1)));
        assert_eq!(interp.call("bump", &[]).unwrap(), Some(Value::Int(2)));
        assert_eq!(interp.state_value("acc"), Some(Value::Int(2)));
        interp.set_state("acc", Value::Int(40));
        assert_eq!(interp.call("bump", &[]).unwrap(), Some(Value::Int(41)));
    }

    #[test]
    fn arena_does_not_leak_between_calls() {
        // After any call — including deep recursion — the arena is empty,
        // and repeated calls return identical results (no stale-frame
        // reuse bugs).
        let src = "fn fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }";
        let m = module_of(src);
        let mut interp = BytecodeInterp::new(&m);
        for _ in 0..3 {
            assert_eq!(
                interp.call("fact", &[12.into()]).unwrap(),
                Some(Value::Int(479001600))
            );
            assert!(interp.stack.is_empty());
        }
    }

    #[test]
    fn intrinsic_override_invalidates_cache() {
        let src = "fn f(x) { return sqrt(x); }";
        let m = module_of(src);
        let mut interp = BytecodeInterp::new(&m);
        assert_eq!(
            interp.call("f", &[4.0.into()]).unwrap(),
            Some(Value::Float(2.0))
        );
        interp.register_intrinsic("sqrt", |_| Value::Float(7.0));
        assert_eq!(
            interp.call("f", &[4.0.into()]).unwrap(),
            Some(Value::Float(7.0))
        );
    }
}
