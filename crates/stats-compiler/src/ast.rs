//! Abstract syntax of the `.stats` language (the front-end's output).

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Variable reference.
    Var(String),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary negation (`-e`).
    Neg(Box<Expr>),
    /// Logical not (`!e`).
    Not(Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
    /// A tradeoff reference (`tradeoff NAME`): the placeholder the back-end
    /// compiler later replaces with the configured value.
    TradeoffRef(String),
    /// A function-tradeoff call (`choose NAME(args)`): the callee is
    /// selected by the named function tradeoff.
    TradeoffCall(String, Vec<Expr>),
    /// A type-tradeoff application (`quantize NAME(expr)`): the expression
    /// is computed at the precision selected by the named type tradeoff
    /// (lowered to a cast whose target type the back-end substitutes).
    TradeoffCast(String, Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let name = expr;`
    Let(String, Expr),
    /// `name = expr;`
    Assign(String, Expr),
    /// `if (cond) { .. } else { .. }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) { .. }`
    While(Expr, Vec<Stmt>),
    /// `for name in lo..hi { .. }` (half-open integer range).
    For(String, Expr, Expr, Vec<Stmt>),
    /// `return expr;`
    Return(Expr),
    /// Bare expression statement (evaluated for effect).
    Expr(Expr),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// The kind of values a tradeoff enumerates.
#[derive(Debug, Clone, PartialEq)]
pub enum TradeoffKind {
    /// Integer values computed by a `value(i) = expr` rule.
    Computed {
        /// The index parameter name (usually `i`).
        param: String,
        /// The value expression.
        expr: Expr,
    },
    /// An explicit list of function names (`functions = [a, b, c];`).
    Functions(Vec<String>),
    /// An explicit list of scalar types (`types = [f64, f32];`).
    Types(Vec<String>),
    /// An explicit list of numeric values (`values = [1, 2, 4];`).
    Values(Vec<f64>),
}

/// A tradeoff declaration (paper Figure 10).
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffDef {
    /// Tradeoff name.
    pub name: String,
    /// Number of possible values (`getMaxIndex`); inferred from the list
    /// for list-kinds, mandatory for computed kinds.
    pub max_index: i64,
    /// Default index (`getDefaultIndex`).
    pub default_index: i64,
    /// How values are produced (`getValue`).
    pub kind: TradeoffKind,
}

/// A state-dependence declaration (paper Figures 8/9): names the
/// `compute_output` function whose inter-invocation dependence on `State` is
/// asserted to be a state dependence.
#[derive(Debug, Clone, PartialEq)]
pub struct StateDepDef {
    /// Dependence name.
    pub name: String,
    /// The `compute_output` function's name.
    pub compute: String,
    /// The state variables this dependence declares it carries between
    /// invocations (`state = [a, b];`). The speculation-safety analysis
    /// checks the compute function's actual state accesses against this set.
    pub state: Vec<String>,
}

/// A cross-invocation state variable (`state NAME = <literal>;`) — the
/// paper's `State` made explicit so the static analysis can see which
/// invocation-to-invocation flows exist.
#[derive(Debug, Clone, PartialEq)]
pub struct StateDef {
    /// Variable name.
    pub name: String,
    /// Initial value (a numeric literal, possibly negated).
    pub init: Expr,
}

/// A complete parsed program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Tradeoff declarations, in source order.
    pub tradeoffs: Vec<TradeoffDef>,
    /// State-variable declarations, in source order.
    pub states: Vec<StateDef>,
    /// State-dependence declarations, in source order.
    pub state_deps: Vec<StateDepDef>,
    /// Function definitions, in source order.
    pub functions: Vec<FnDef>,
}

impl Program {
    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&FnDef> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Look up a tradeoff by name.
    pub fn tradeoff(&self, name: &str) -> Option<&TradeoffDef> {
        self.tradeoffs.iter().find(|t| t.name == name)
    }

    /// Look up a state variable by name.
    pub fn state(&self, name: &str) -> Option<&StateDef> {
        self.states.iter().find(|s| s.name == name)
    }
}
