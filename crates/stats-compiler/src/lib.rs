//! The STATS compilers (paper §3.2–§3.4).
//!
//! The paper splits compilation in three to keep clang's C++ parser
//! untouched: a Racket **front-end** translating C++-with-extensions to
//! standard C++ plus tradeoff descriptor tables (Figure 11); a **middle-end**
//! clang pass lowering to LLVM IR with metadata and generating auxiliary
//! code by deep-cloning each state dependence's `computeOutput` (cloning the
//! tradeoffs it reaches, bottom-up over the call graph, up to an instruction
//! budget), then pinning non-auxiliary tradeoffs to their defaults; and a
//! **back-end** instantiating one autotuner configuration by setting each
//! remaining tradeoff — constant placeholders become constants, type
//! tradeoffs retype variables (inserting casts), function tradeoffs replace
//! callees — fetching values by dynamically compiling `getValue(i)`.
//!
//! This crate is that pipeline over our own substrate:
//!
//! - [`frontend`]: a small `.stats` language (tradeoff and state-dependence
//!   declarations plus a C-like function language) with a hand-written lexer
//!   and recursive-descent parser; emits the descriptor-table source text of
//!   Figure 11 and an AST;
//! - [`ir`]: a compact block-based IR with explicit tradeoff-reference
//!   instructions and per-module [`metadata`] tables (the paper borrows this
//!   metadata design from CIL);
//! - [`lower`]: AST → IR;
//! - [`midend`]: auxiliary-code generation (the deep-cloning pass);
//! - [`backend`]: configuration instantiation and the bridge to
//!   `stats_core::TradeoffBindings`;
//! - [`interp`]: the IR interpreter standing in for LLVM's dynamic compiler
//!   (the paper JITs `getValue()` only to fetch tradeoff values).
//!
//! # Pipeline example
//!
//! ```
//! use stats_compiler::{backend, frontend, midend};
//!
//! let source = r#"
//!     tradeoff layers { max_index = 10; default_index = 4; value(i) = i + 1; }
//!     state_dependence track { compute = step; }
//!     fn step(x) {
//!         let l = tradeoff layers;
//!         return x * l;
//!     }
//! "#;
//! let parsed = frontend::compile(source).unwrap();
//! let module = midend::run(parsed).unwrap();
//! // The middle-end cloned `step` for auxiliary code:
//! assert!(module.function("step__aux_track").is_some());
//! // The back-end instantiates a configuration (tradeoff index 9 -> 10):
//! let config = [("track".to_string(), vec![9])].into_iter().collect();
//! let binary = backend::instantiate(&module, &config).unwrap();
//! let out = backend::call(&binary, "step__aux_track", &[7.into()]).unwrap();
//! assert_eq!(out.unwrap().as_int(), Some(70));
//! ```

#![deny(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod backend;
pub mod bytecode;
pub mod frontend;
pub mod interp;
pub mod ir;
mod lexer;
pub mod lower;
pub mod metadata;
pub mod midend;
pub mod opt;
mod parser;
pub mod pretty;
pub mod verify;

pub use frontend::CompileError;
