//! IR interpreter — the stand-in for LLVM's dynamic compiler.
//!
//! The paper generates machine code for a tradeoff's `getValue()` function
//! at configuration time and invokes it; we interpret the same IR. The
//! interpreter also executes whole instantiated modules, which the test
//! suite uses to verify back-end substitutions end-to-end.
//!
//! Functions are *slot-resolved* before their first execution: registers
//! become indices into a flat frame (`Vec<Value>`), state variables become
//! indices into the interpreter's state slots, and callees are resolved to
//! intrinsic/function indices — so the hot execution loop performs no name
//! hashing and no `String` clones. A definite-assignment dataflow check at
//! preparation time makes reading a never-assigned register a static error
//! ([`ExecError::UnassignedRegister`]) instead of a silent default value.

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use crate::ir::{BinOp, Function, Inst, Module, Operand, Ty, TyRef};

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// Floating point (width is a property of casts, not storage).
    Float(f64),
}

impl Value {
    /// Integer payload, if integral.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(v),
            Value::Float(_) => None,
        }
    }

    /// Numeric payload, widening integers.
    pub fn as_float(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Float(v) => v,
        }
    }

    #[inline(always)]
    pub(crate) fn truthy(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::Float(v) => v != 0.0,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

/// An execution error.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Call to a function the module does not define.
    UnknownFunction(String),
    /// An unsubstituted tradeoff placeholder was reached — the back-end
    /// must instantiate the module before execution.
    UnresolvedTradeoff(String),
    /// Wrong number of call arguments.
    ArityMismatch {
        /// Callee name.
        function: String,
        /// Expected parameter count.
        expected: usize,
        /// Provided argument count.
        got: usize,
    },
    /// The step budget was exhausted (runaway loop or recursion).
    OutOfFuel,
    /// Division or remainder by zero.
    DivisionByZero,
    /// A register is read on some path before any instruction assigns it.
    /// Detected statically by the definite-assignment check when the
    /// function is slot-resolved, so execution never observes an
    /// uninitialized frame slot.
    UnassignedRegister {
        /// Function containing the offending read.
        function: String,
        /// The register number.
        reg: u32,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            ExecError::UnresolvedTradeoff(n) => {
                write!(
                    f,
                    "unresolved tradeoff placeholder `{n}` (run the back-end first)"
                )
            }
            ExecError::ArityMismatch {
                function,
                expected,
                got,
            } => write!(f, "`{function}` takes {expected} arguments, got {got}"),
            ExecError::OutOfFuel => write!(f, "execution exceeded the step budget"),
            ExecError::DivisionByZero => write!(f, "division by zero"),
            ExecError::UnassignedRegister { function, reg } => {
                write!(f, "`{function}` reads register %{reg} before assignment")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// A resolved operand: a frame slot or an immediate.
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// Frame index.
    Reg(usize),
    /// Integer immediate.
    Int(i64),
    /// Float immediate.
    Float(f64),
}

/// A slot-resolved instruction: every name the source instruction carried
/// (registers, state variables, callees) is already an index.
#[derive(Debug, Clone)]
enum PInst {
    Const {
        dst: usize,
        value: Slot,
    },
    Bin {
        op: BinOp,
        dst: usize,
        lhs: Slot,
        rhs: Slot,
    },
    Cast {
        dst: usize,
        src: Slot,
        to: Ty,
    },
    LoadState {
        dst: usize,
        slot: usize,
    },
    StoreState {
        slot: usize,
        src: Slot,
    },
    CallIntrinsic {
        dst: Option<usize>,
        intrinsic: usize,
        args: Vec<Slot>,
    },
    CallFn {
        dst: Option<usize>,
        callee: usize,
        args: Vec<Slot>,
    },
    /// Call to a name neither the intrinsic table nor the module defines.
    /// Kept lazy: the error surfaces only if the call is actually reached,
    /// matching the unprepared interpreter's behavior.
    UnknownCallee {
        callee: String,
    },
    /// An unsubstituted tradeoff placeholder; errors when reached.
    UnresolvedTradeoff {
        tradeoff: String,
    },
    Jmp {
        target: usize,
    },
    Br {
        cond: Slot,
        then_b: usize,
        else_b: usize,
    },
    Ret {
        value: Option<Slot>,
    },
}

/// A function after slot resolution, ready for the hot loop.
struct PreparedFn {
    name: String,
    /// Frame indices of the parameters, in call order.
    params: Vec<usize>,
    /// Frame size.
    nregs: usize,
    blocks: Vec<Vec<PInst>>,
}

/// Interpreter over a module, with a fuel budget shared across calls.
///
/// Cross-invocation state variables (`state NAME = ..;` declarations) live
/// in the interpreter, seeded from the module's state table, and persist
/// across [`Interp::call`]s — one `Interp` models one sequential stream of
/// invocations, matching the paper's `State` that `computeOutput` carries
/// from invocation to invocation.
///
/// Each function is slot-resolved once, on its first call, and cached; the
/// per-call cost is a flat `Vec<Value>` frame indexed by register number.
pub struct Interp<'m> {
    module: &'m Module,
    fuel: u64,
    /// Cross-invocation state values, indexed by state slot.
    state: Vec<Value>,
    /// State variable name → slot.
    state_index: HashMap<String, usize>,
    /// Host intrinsics callable from IR (e.g. `sqrt` variants used by
    /// function tradeoffs in tests and workload descriptors), by slot.
    intrinsics: Vec<fn(&[Value]) -> Value>,
    /// Intrinsic name → slot. Checked before module functions when
    /// resolving callees, as the unprepared interpreter did.
    intrinsic_index: HashMap<String, usize>,
    /// Slot-resolved functions, indexed like `module.functions()`.
    prepared: Vec<Option<Rc<PreparedFn>>>,
}

/// The signature every host intrinsic implements.
pub(crate) type IntrinsicFn = fn(&[Value]) -> Value;

/// The host intrinsics both interpreters register out of the box (e.g.
/// `sqrt` variants used by function tradeoffs in tests and workload
/// descriptors). Shared with [`crate::bytecode::BytecodeInterp`] so the two
/// engines resolve callee names identically.
pub(crate) const DEFAULT_INTRINSICS: &[(&str, IntrinsicFn)] = &[
    ("sqrt", |args| {
        Value::Float(args.first().map(|v| v.as_float()).unwrap_or(0.0).sqrt())
    }),
    ("abs", |args| match args.first() {
        Some(Value::Int(v)) => Value::Int(v.wrapping_abs()),
        Some(Value::Float(v)) => Value::Float(v.abs()),
        None => Value::Int(0),
    }),
    ("min", |args| {
        let a = args.first().map(|v| v.as_float()).unwrap_or(0.0);
        let b = args.get(1).map(|v| v.as_float()).unwrap_or(0.0);
        Value::Float(a.min(b))
    }),
    ("max", |args| {
        let a = args.first().map(|v| v.as_float()).unwrap_or(0.0);
        let b = args.get(1).map(|v| v.as_float()).unwrap_or(0.0);
        Value::Float(a.max(b))
    }),
    ("exp", |args| {
        Value::Float(args.first().map(|v| v.as_float()).unwrap_or(0.0).exp())
    }),
    ("ln", |args| {
        Value::Float(
            args.first()
                .map(|v| v.as_float())
                .unwrap_or(0.0)
                .max(f64::MIN_POSITIVE)
                .ln(),
        )
    }),
    ("pow", |args| {
        let a = args.first().map(|v| v.as_float()).unwrap_or(0.0);
        let b = args.get(1).map(|v| v.as_float()).unwrap_or(0.0);
        Value::Float(a.powf(b))
    }),
    ("floor", |args| {
        Value::Int(args.first().map(|v| v.as_float()).unwrap_or(0.0).floor() as i64)
    }),
];

impl<'m> Interp<'m> {
    /// Create an interpreter with the default fuel budget (1M steps).
    pub fn new(module: &'m Module) -> Self {
        let mut interp = Interp {
            module,
            fuel: 1_000_000,
            state: Vec::new(),
            state_index: HashMap::new(),
            intrinsics: Vec::new(),
            intrinsic_index: HashMap::new(),
            prepared: vec![None; module.functions().len()],
        };
        for &(name, f) in DEFAULT_INTRINSICS {
            interp.register_intrinsic(name, f);
        }
        for v in &module.metadata.state_vars {
            let init = match v.init {
                crate::metadata::StateInit::Int(i) => Value::Int(i),
                crate::metadata::StateInit::Float(f) => Value::Float(f),
            };
            let slot = interp.state_slot(&v.name);
            interp.state[slot] = init;
        }
        interp
    }

    /// Replace the fuel budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// The current value of a state variable.
    pub fn state_value(&self, name: &str) -> Option<Value> {
        self.state_index.get(name).map(|&i| self.state[i])
    }

    /// Overwrite a state variable (e.g. to restore a checkpoint).
    pub fn set_state(&mut self, name: impl Into<String>, value: Value) {
        let slot = self.state_slot(&name.into());
        self.state[slot] = value;
    }

    /// Register a host intrinsic callable from IR.
    ///
    /// Invalidates the prepared-function cache: a new intrinsic can change
    /// how callee names resolve.
    pub fn register_intrinsic(&mut self, name: impl Into<String>, f: fn(&[Value]) -> Value) {
        let name = name.into();
        match self.intrinsic_index.get(&name) {
            Some(&i) => self.intrinsics[i] = f,
            None => {
                self.intrinsic_index.insert(name, self.intrinsics.len());
                self.intrinsics.push(f);
            }
        }
        self.prepared = vec![None; self.module.functions().len()];
    }

    /// The state slot for `name`, allocating one (default `Int(0)`) if the
    /// variable was never declared — undeclared state reads default to zero,
    /// as in the unprepared interpreter.
    fn state_slot(&mut self, name: &str) -> usize {
        if let Some(&i) = self.state_index.get(name) {
            return i;
        }
        let i = self.state.len();
        self.state.push(Value::Int(0));
        self.state_index.insert(name.to_string(), i);
        i
    }

    /// Call `name` with `args`; returns the function's returned value.
    pub fn call(&mut self, name: &str, args: &[Value]) -> Result<Option<Value>, ExecError> {
        let idx = self
            .module
            .function_index(name)
            .ok_or_else(|| ExecError::UnknownFunction(name.to_string()))?;
        let f = self.prepare(idx)?;
        if f.params.len() != args.len() {
            return Err(ExecError::ArityMismatch {
                function: name.to_string(),
                expected: f.params.len(),
                got: args.len(),
            });
        }
        self.exec(&f, args)
    }

    /// Slot-resolve a function (cached after the first call).
    fn prepare(&mut self, idx: usize) -> Result<Rc<PreparedFn>, ExecError> {
        if let Some(p) = &self.prepared[idx] {
            return Ok(Rc::clone(p));
        }
        let f = &self.module.functions()[idx];
        let nregs = frame_size(f);
        check_definite_assignment(f, nregs)?;
        let mut blocks = Vec::with_capacity(f.blocks.len());
        // Resolving state slots and callees needs `&mut self`, so collect
        // name resolutions first, then translate.
        for block in &f.blocks {
            let mut insts = Vec::with_capacity(block.insts.len());
            for inst in &block.insts {
                insts.push(self.resolve_inst(inst));
            }
            blocks.push(insts);
        }
        let prepared = Rc::new(PreparedFn {
            name: f.name.clone(),
            params: f.params.iter().map(|p| p.0 as usize).collect(),
            nregs,
            blocks,
        });
        self.prepared[idx] = Some(Rc::clone(&prepared));
        Ok(prepared)
    }

    fn resolve_inst(&mut self, inst: &Inst) -> PInst {
        let slot = |op: &Operand| -> Slot {
            match *op {
                Operand::Reg(r) => Slot::Reg(r.0 as usize),
                Operand::ImmInt(v) => Slot::Int(v),
                Operand::ImmFloat(v) => Slot::Float(v),
            }
        };
        match inst {
            Inst::Const { dst, value } => PInst::Const {
                dst: dst.0 as usize,
                value: slot(value),
            },
            Inst::Bin { op, dst, lhs, rhs } => PInst::Bin {
                op: *op,
                dst: dst.0 as usize,
                lhs: slot(lhs),
                rhs: slot(rhs),
            },
            Inst::Cast { dst, src, to } => match to {
                TyRef::Concrete(t) => PInst::Cast {
                    dst: dst.0 as usize,
                    src: slot(src),
                    to: *t,
                },
                TyRef::Tradeoff(name) => PInst::UnresolvedTradeoff {
                    tradeoff: name.clone(),
                },
            },
            Inst::TradeoffRef { tradeoff, .. } | Inst::CallTradeoff { tradeoff, .. } => {
                PInst::UnresolvedTradeoff {
                    tradeoff: tradeoff.clone(),
                }
            }
            Inst::LoadState { dst, state } => PInst::LoadState {
                dst: dst.0 as usize,
                slot: self.state_slot(state),
            },
            Inst::StoreState { state, src } => PInst::StoreState {
                slot: self.state_slot(state),
                src: slot(src),
            },
            Inst::Call { dst, callee, args } => {
                let dst = dst.map(|d| d.0 as usize);
                let args: Vec<Slot> = args.iter().map(&slot).collect();
                // Intrinsics shadow module functions, as in the unprepared
                // interpreter's lookup order.
                if let Some(&i) = self.intrinsic_index.get(callee) {
                    PInst::CallIntrinsic {
                        dst,
                        intrinsic: i,
                        args,
                    }
                } else if let Some(i) = self.module.function_index(callee) {
                    PInst::CallFn {
                        dst,
                        callee: i,
                        args,
                    }
                } else {
                    PInst::UnknownCallee {
                        callee: callee.clone(),
                    }
                }
            }
            Inst::Jmp { target } => PInst::Jmp { target: target.0 },
            Inst::Br {
                cond,
                then_b,
                else_b,
            } => PInst::Br {
                cond: slot(cond),
                then_b: then_b.0,
                else_b: else_b.0,
            },
            Inst::Ret { value } => PInst::Ret {
                value: value.as_ref().map(slot),
            },
        }
    }

    fn exec(&mut self, f: &PreparedFn, args: &[Value]) -> Result<Option<Value>, ExecError> {
        let mut frame: Vec<Value> = vec![Value::Int(0); f.nregs];
        for (&p, &a) in f.params.iter().zip(args) {
            frame[p] = a;
        }
        let mut block = 0usize;
        let mut pc = 0usize;
        loop {
            if self.fuel == 0 {
                return Err(ExecError::OutOfFuel);
            }
            self.fuel -= 1;
            let inst = &f.blocks[block][pc];
            pc += 1;
            match inst {
                PInst::Const { dst, value } => {
                    frame[*dst] = read(&frame, *value);
                }
                PInst::Bin { op, dst, lhs, rhs } => {
                    let a = read(&frame, *lhs);
                    let b = read(&frame, *rhs);
                    frame[*dst] = binop(*op, a, b)?;
                }
                PInst::Cast { dst, src, to } => {
                    frame[*dst] = cast(read(&frame, *src), *to);
                }
                PInst::LoadState { dst, slot } => {
                    frame[*dst] = self.state[*slot];
                }
                PInst::StoreState { slot, src } => {
                    self.state[*slot] = read(&frame, *src);
                }
                PInst::UnresolvedTradeoff { tradeoff } => {
                    return Err(ExecError::UnresolvedTradeoff(tradeoff.clone()))
                }
                PInst::UnknownCallee { callee } => {
                    return Err(ExecError::UnknownFunction(callee.clone()))
                }
                PInst::CallIntrinsic {
                    dst,
                    intrinsic,
                    args,
                } => {
                    let vals: Vec<Value> = args.iter().map(|&a| read(&frame, a)).collect();
                    let result = self.intrinsics[*intrinsic](&vals);
                    if let Some(dst) = dst {
                        frame[*dst] = result;
                    }
                }
                PInst::CallFn { dst, callee, args } => {
                    let vals: Vec<Value> = args.iter().map(|&a| read(&frame, a)).collect();
                    let callee = self.prepare(*callee)?;
                    if callee.params.len() != vals.len() {
                        return Err(ExecError::ArityMismatch {
                            function: callee.name.clone(),
                            expected: callee.params.len(),
                            got: vals.len(),
                        });
                    }
                    let result = self.exec(&callee, &vals)?;
                    if let Some(dst) = dst {
                        frame[*dst] = result.unwrap_or(Value::Int(0));
                    }
                }
                PInst::Jmp { target } => {
                    block = *target;
                    pc = 0;
                }
                PInst::Br {
                    cond,
                    then_b,
                    else_b,
                } => {
                    block = if read(&frame, *cond).truthy() {
                        *then_b
                    } else {
                        *else_b
                    };
                    pc = 0;
                }
                PInst::Ret { value } => {
                    return Ok(value.map(|v| read(&frame, v)));
                }
            }
        }
    }
}

#[inline]
fn read(frame: &[Value], s: Slot) -> Value {
    match s {
        Slot::Reg(i) => frame[i],
        Slot::Int(v) => Value::Int(v),
        Slot::Float(v) => Value::Float(v),
    }
}

/// Frame size for `f`: covers `next_reg` plus any register a hand-built
/// function references beyond it.
pub(crate) fn frame_size(f: &Function) -> usize {
    fn see(n: &mut usize, op: &Operand) {
        if let Operand::Reg(r) = op {
            *n = (*n).max(r.0 as usize + 1);
        }
    }
    let mut n = f.next_reg as usize;
    for &p in &f.params {
        n = n.max(p.0 as usize + 1);
    }
    for block in &f.blocks {
        for inst in &block.insts {
            if let Some(d) = def_of(inst) {
                n = n.max(d as usize + 1);
            }
            match inst {
                Inst::Const { value, .. } => see(&mut n, value),
                Inst::Bin { lhs, rhs, .. } => {
                    see(&mut n, lhs);
                    see(&mut n, rhs);
                }
                Inst::Cast { src, .. } => see(&mut n, src),
                Inst::Call { args, .. } | Inst::CallTradeoff { args, .. } => {
                    args.iter().for_each(|a| see(&mut n, a));
                }
                Inst::StoreState { src, .. } => see(&mut n, src),
                Inst::Br { cond, .. } => see(&mut n, cond),
                Inst::Ret { value } => {
                    if let Some(v) = value {
                        see(&mut n, v);
                    }
                }
                Inst::TradeoffRef { .. } | Inst::LoadState { .. } | Inst::Jmp { .. } => {}
            }
        }
    }
    n
}

/// Registers an instruction reads, in evaluation order.
fn reads_of(inst: &Inst) -> Vec<u32> {
    let mut out = Vec::new();
    let mut see = |op: &Operand| {
        if let Operand::Reg(r) = op {
            out.push(r.0);
        }
    };
    match inst {
        Inst::Const { value, .. } => see(value),
        Inst::Bin { lhs, rhs, .. } => {
            see(lhs);
            see(rhs);
        }
        Inst::Cast { src, .. } => see(src),
        Inst::Call { args, .. } | Inst::CallTradeoff { args, .. } => args.iter().for_each(see),
        Inst::StoreState { src, .. } => see(src),
        Inst::Br { cond, .. } => see(cond),
        Inst::Ret { value } => {
            if let Some(v) = value {
                see(v)
            }
        }
        Inst::TradeoffRef { .. } | Inst::LoadState { .. } | Inst::Jmp { .. } => {}
    }
    out
}

/// The register an instruction assigns, if any.
fn def_of(inst: &Inst) -> Option<u32> {
    match inst {
        Inst::Const { dst, .. }
        | Inst::Bin { dst, .. }
        | Inst::Cast { dst, .. }
        | Inst::TradeoffRef { dst, .. }
        | Inst::LoadState { dst, .. } => Some(dst.0),
        Inst::Call { dst, .. } | Inst::CallTradeoff { dst, .. } => dst.map(|d| d.0),
        Inst::StoreState { .. } | Inst::Jmp { .. } | Inst::Br { .. } | Inst::Ret { .. } => None,
    }
}

/// Successor blocks of a block's terminator (the first terminator found —
/// anything after it is dead).
fn successors(insts: &[Inst]) -> Vec<usize> {
    for inst in insts {
        match inst {
            Inst::Jmp { target } => return vec![target.0],
            Inst::Br { then_b, else_b, .. } => return vec![then_b.0, else_b.0],
            Inst::Ret { .. } => return vec![],
            _ => {}
        }
    }
    vec![]
}

/// Forward definite-assignment dataflow: a register may be read only if it
/// is assigned on *every* path from entry. Rejects the function otherwise,
/// so execution can use a flat frame with no per-read presence checks.
pub(crate) fn check_definite_assignment(f: &Function, nregs: usize) -> Result<(), ExecError> {
    let words = nregs.div_ceil(64).max(1);
    let set = |bits: &mut [u64], r: u32| bits[r as usize / 64] |= 1 << (r % 64);
    let has = |bits: &[u64], r: u32| bits[r as usize / 64] & (1 << (r % 64)) != 0;

    let mut entry = vec![0u64; words];
    for &p in &f.params {
        set(&mut entry, p.0);
    }
    // Fixpoint: in-set of a block = intersection of predecessors' out-sets.
    let mut in_sets: Vec<Option<Vec<u64>>> = vec![None; f.blocks.len()];
    in_sets[0] = Some(entry);
    let mut work = vec![0usize];
    while let Some(b) = work.pop() {
        let mut out = in_sets[b].clone().expect("worklist blocks are reached");
        let insts = &f.blocks[b].insts;
        let term = insts
            .iter()
            .position(|i| matches!(i, Inst::Jmp { .. } | Inst::Br { .. } | Inst::Ret { .. }))
            .map(|i| i + 1)
            .unwrap_or(insts.len());
        for inst in &insts[..term] {
            if let Some(d) = def_of(inst) {
                set(&mut out, d);
            }
        }
        for s in successors(insts) {
            let changed = match &mut in_sets[s] {
                Some(existing) => {
                    let mut changed = false;
                    for (e, o) in existing.iter_mut().zip(&out) {
                        let next = *e & *o;
                        changed |= next != *e;
                        *e = next;
                    }
                    changed
                }
                None => {
                    in_sets[s] = Some(out.clone());
                    true
                }
            };
            if changed {
                work.push(s);
            }
        }
    }
    // Check reads against the converged in-sets.
    for (b, in_set) in in_sets.iter().enumerate() {
        let Some(in_set) = in_set else { continue };
        let mut live = in_set.clone();
        let insts = &f.blocks[b].insts;
        let term = insts
            .iter()
            .position(|i| matches!(i, Inst::Jmp { .. } | Inst::Br { .. } | Inst::Ret { .. }))
            .map(|i| i + 1)
            .unwrap_or(insts.len());
        for inst in &insts[..term] {
            for r in reads_of(inst) {
                if !has(&live, r) {
                    return Err(ExecError::UnassignedRegister {
                        function: f.name.clone(),
                        reg: r,
                    });
                }
            }
            if let Some(d) = def_of(inst) {
                set(&mut live, d);
            }
        }
    }
    Ok(())
}

#[inline(always)]
pub(crate) fn cast(v: Value, ty: Ty) -> Value {
    match ty {
        Ty::I64 => Value::Int(match v {
            Value::Int(i) => i,
            Value::Float(f) => f as i64,
        }),
        Ty::F32 => Value::Float(v.as_float() as f32 as f64),
        Ty::F64 => Value::Float(v.as_float()),
    }
}

#[inline(always)]
pub(crate) fn binop(op: BinOp, a: Value, b: Value) -> Result<Value, ExecError> {
    use BinOp::*;
    // Integer op if both sides are integers; float otherwise.
    if let (Value::Int(x), Value::Int(y)) = (a, b) {
        let v = match op {
            Add => x.wrapping_add(y),
            Sub => x.wrapping_sub(y),
            Mul => x.wrapping_mul(y),
            Div => {
                if y == 0 {
                    return Err(ExecError::DivisionByZero);
                }
                x.wrapping_div(y)
            }
            Rem => {
                if y == 0 {
                    return Err(ExecError::DivisionByZero);
                }
                x.wrapping_rem(y)
            }
            Lt => (x < y) as i64,
            Le => (x <= y) as i64,
            Gt => (x > y) as i64,
            Ge => (x >= y) as i64,
            Eq => (x == y) as i64,
            Ne => (x != y) as i64,
        };
        return Ok(Value::Int(v));
    }
    let x = a.as_float();
    let y = b.as_float();
    Ok(match op {
        Add => Value::Float(x + y),
        Sub => Value::Float(x - y),
        Mul => Value::Float(x * y),
        Div => Value::Float(x / y),
        Rem => Value::Float(x % y),
        Lt => Value::Int((x < y) as i64),
        Le => Value::Int((x <= y) as i64),
        Gt => Value::Int((x > y) as i64),
        Ge => Value::Int((x >= y) as i64),
        Eq => Value::Int((x == y) as i64),
        Ne => Value::Int((x != y) as i64),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower_fn, validate};
    use crate::parser::parse;

    fn module_of(src: &str) -> Module {
        let p = parse(src).unwrap();
        let mut m = Module::new();
        for f in &p.functions {
            let lowered = lower_fn(f).unwrap();
            validate(&lowered).unwrap();
            m.add_function(lowered);
        }
        m
    }

    fn run(src: &str, f: &str, args: &[Value]) -> Value {
        let m = module_of(src);
        Interp::new(&m).call(f, args).unwrap().unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(
            run(
                "fn f(a, b) { return a * b + 2; }",
                "f",
                &[3.into(), 4.into()]
            ),
            Value::Int(14)
        );
    }

    #[test]
    fn float_arithmetic() {
        assert_eq!(
            run("fn f(a) { return a / 2.0; }", "f", &[7.into()]),
            Value::Float(3.5)
        );
    }

    #[test]
    fn loops_terminate() {
        assert_eq!(
            run(
                "fn sum(n) { let s = 0; let i = 1; while (i <= n) { s = s + i; i = i + 1; } return s; }",
                "sum",
                &[100.into()],
            ),
            Value::Int(5050)
        );
    }

    #[test]
    fn conditionals() {
        let src = "fn sign(x) { if (x > 0) { return 1; } else if (x < 0) { return 0 - 1; } else { return 0; } }";
        assert_eq!(run(src, "sign", &[5.into()]), Value::Int(1));
        assert_eq!(run(src, "sign", &[(-5).into()]), Value::Int(-1));
        assert_eq!(run(src, "sign", &[0.into()]), Value::Int(0));
    }

    #[test]
    fn calls_between_functions() {
        let src = "fn sq(x) { return x * x; } fn f(a) { return sq(a) + sq(a + 1); }";
        assert_eq!(run(src, "f", &[3.into()]), Value::Int(25));
    }

    #[test]
    fn recursion() {
        let src = "fn fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }";
        assert_eq!(run(src, "fact", &[10.into()]), Value::Int(3628800));
    }

    #[test]
    fn intrinsic_sqrt() {
        assert_eq!(
            run("fn f(x) { return sqrt(x); }", "f", &[9.0.into()]),
            Value::Float(3.0)
        );
    }

    #[test]
    fn for_loops() {
        assert_eq!(
            run(
                "fn sum(n) { let s = 0; for i in 0..n { s = s + i; } return s; }",
                "sum",
                &[10.into()],
            ),
            Value::Int(45)
        );
        // The bound is evaluated once; mutating it in the body has no
        // effect on trip count.
        assert_eq!(
            run(
                "fn f() { let n = 3; let c = 0; for i in 0..n { n = 100; c = c + 1; } return c; }",
                "f",
                &[],
            ),
            Value::Int(3)
        );
        // Empty and reversed ranges run zero iterations.
        assert_eq!(
            run(
                "fn f() { let c = 0; for i in 5..5 { c = c + 1; } return c; }",
                "f",
                &[]
            ),
            Value::Int(0)
        );
        assert_eq!(
            run(
                "fn f() { let c = 0; for i in 7..2 { c = c + 1; } return c; }",
                "f",
                &[]
            ),
            Value::Int(0)
        );
    }

    #[test]
    fn nested_for_loops() {
        assert_eq!(
            run(
                "fn f(n) { let s = 0; for i in 0..n { for j in 0..i { s = s + 1; } } return s; }",
                "f",
                &[5.into()],
            ),
            Value::Int(10)
        );
    }

    #[test]
    fn math_intrinsics() {
        assert_eq!(
            run("fn f(x) { return exp(ln(x)); }", "f", &[5.0.into()])
                .as_float()
                .round(),
            5.0
        );
        assert_eq!(
            run(
                "fn f(a, b) { return pow(a, b); }",
                "f",
                &[2.0.into(), 10.0.into()]
            ),
            Value::Float(1024.0)
        );
        assert_eq!(
            run("fn f(x) { return floor(x); }", "f", &[3.9.into()]),
            Value::Int(3)
        );
    }

    #[test]
    fn fuel_limits_runaway_loops() {
        let m = module_of("fn spin() { let i = 0; while (i < 100) { i = i; } return i; }");
        let err = Interp::new(&m)
            .with_fuel(1000)
            .call("spin", &[])
            .unwrap_err();
        assert_eq!(err, ExecError::OutOfFuel);
    }

    #[test]
    fn unresolved_tradeoff_is_an_error() {
        let m = module_of("fn f() { return tradeoff k; }");
        let err = Interp::new(&m).call("f", &[]).unwrap_err();
        assert_eq!(err, ExecError::UnresolvedTradeoff("k".into()));
    }

    #[test]
    fn division_by_zero() {
        let m = module_of("fn f(a) { return a / 0; }");
        let err = Interp::new(&m).call("f", &[1.into()]).unwrap_err();
        assert_eq!(err, ExecError::DivisionByZero);
    }

    #[test]
    fn unknown_function() {
        let m = module_of("fn f() { return g(); }");
        let err = Interp::new(&m).call("f", &[]).unwrap_err();
        assert_eq!(err, ExecError::UnknownFunction("g".into()));
    }

    #[test]
    fn arity_mismatch() {
        let m = module_of("fn f(a, b) { return a + b; }");
        let err = Interp::new(&m).call("f", &[1.into()]).unwrap_err();
        assert!(matches!(err, ExecError::ArityMismatch { .. }));
    }

    #[test]
    fn logical_operators() {
        let src = "fn f(a, b) { if (a > 0 && b > 0) { return 1; } return 0; }";
        assert_eq!(run(src, "f", &[1.into(), 1.into()]), Value::Int(1));
        assert_eq!(run(src, "f", &[1.into(), 0.into()]), Value::Int(0));
        let src2 = "fn f(a, b) { if (a > 0 || b > 0) { return 1; } return 0; }";
        assert_eq!(run(src2, "f", &[0.into(), 1.into()]), Value::Int(1));
        assert_eq!(run(src2, "f", &[0.into(), 0.into()]), Value::Int(0));
    }

    #[test]
    fn f32_cast_quantizes() {
        use crate::ir::{BlockId, Inst, TyRef};
        let mut f = crate::ir::Function::new("q", 1);
        let p = f.params[0];
        let dst = f.fresh_reg();
        f.push(
            BlockId(0),
            Inst::Cast {
                dst,
                src: p.into(),
                to: TyRef::Concrete(Ty::F32),
            },
        );
        f.push(
            BlockId(0),
            Inst::Ret {
                value: Some(dst.into()),
            },
        );
        let mut m = Module::new();
        m.add_function(f);
        let x = 0.1_f64 + 1e-12;
        let out = Interp::new(&m).call("q", &[x.into()]).unwrap().unwrap();
        assert_ne!(out.as_float(), x);
        assert_eq!(out.as_float(), x as f32 as f64);
    }

    /// Regression: reading a never-assigned register used to silently
    /// evaluate to `Int(0)`; it must be a static error.
    #[test]
    fn unassigned_register_is_an_error() {
        use crate::ir::{BlockId, Inst, Operand, Reg};
        let mut f = crate::ir::Function::new("bad", 0);
        f.push(
            BlockId(0),
            Inst::Ret {
                value: Some(Operand::Reg(Reg(5))),
            },
        );
        let mut m = Module::new();
        m.add_function(f);
        let err = Interp::new(&m).call("bad", &[]).unwrap_err();
        assert_eq!(
            err,
            ExecError::UnassignedRegister {
                function: "bad".into(),
                reg: 5
            }
        );
    }

    /// A register assigned on only one arm of a branch is not definitely
    /// assigned at the join.
    #[test]
    fn partially_assigned_register_is_an_error() {
        use crate::ir::{BlockId, Inst, Operand};
        let mut f = crate::ir::Function::new("half", 1);
        let cond = f.params[0];
        let r = f.fresh_reg();
        let then_b = f.new_block();
        let else_b = f.new_block();
        let join = f.new_block();
        f.push(
            BlockId(0),
            Inst::Br {
                cond: cond.into(),
                then_b,
                else_b,
            },
        );
        f.push(
            then_b,
            Inst::Const {
                dst: r,
                value: Operand::ImmInt(1),
            },
        );
        f.push(then_b, Inst::Jmp { target: join });
        f.push(else_b, Inst::Jmp { target: join });
        f.push(
            join,
            Inst::Ret {
                value: Some(r.into()),
            },
        );
        let mut m = Module::new();
        m.add_function(f);
        let err = Interp::new(&m).call("half", &[1.into()]).unwrap_err();
        assert!(matches!(
            err,
            ExecError::UnassignedRegister { reg, .. } if reg == r.0
        ));
    }

    /// A register assigned on both arms IS definitely assigned at the join:
    /// the dataflow must not be over-strict.
    #[test]
    fn both_arms_assigned_is_fine() {
        use crate::ir::{BlockId, Inst, Operand};
        let mut f = crate::ir::Function::new("full", 1);
        let cond = f.params[0];
        let r = f.fresh_reg();
        let then_b = f.new_block();
        let else_b = f.new_block();
        let join = f.new_block();
        f.push(
            BlockId(0),
            Inst::Br {
                cond: cond.into(),
                then_b,
                else_b,
            },
        );
        for (b, v) in [(then_b, 1), (else_b, 2)] {
            f.push(
                b,
                Inst::Const {
                    dst: r,
                    value: Operand::ImmInt(v),
                },
            );
            f.push(b, Inst::Jmp { target: join });
        }
        f.push(
            join,
            Inst::Ret {
                value: Some(r.into()),
            },
        );
        let mut m = Module::new();
        m.add_function(f);
        let mut interp = Interp::new(&m);
        assert_eq!(
            interp.call("full", &[1.into()]).unwrap(),
            Some(Value::Int(1))
        );
        assert_eq!(
            interp.call("full", &[0.into()]).unwrap(),
            Some(Value::Int(2))
        );
    }
}
