//! IR interpreter — the stand-in for LLVM's dynamic compiler.
//!
//! The paper generates machine code for a tradeoff's `getValue()` function
//! at configuration time and invokes it; we interpret the same IR. The
//! interpreter also executes whole instantiated modules, which the test
//! suite uses to verify back-end substitutions end-to-end.

use std::collections::HashMap;
use std::fmt;

use crate::ir::{BinOp, Function, Inst, Module, Operand, Reg, Ty, TyRef};

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// Floating point (width is a property of casts, not storage).
    Float(f64),
}

impl Value {
    /// Integer payload, if integral.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(v),
            Value::Float(_) => None,
        }
    }

    /// Numeric payload, widening integers.
    pub fn as_float(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Float(v) => v,
        }
    }

    fn truthy(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::Float(v) => v != 0.0,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

/// An execution error.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Call to a function the module does not define.
    UnknownFunction(String),
    /// An unsubstituted tradeoff placeholder was reached — the back-end
    /// must instantiate the module before execution.
    UnresolvedTradeoff(String),
    /// Wrong number of call arguments.
    ArityMismatch {
        /// Callee name.
        function: String,
        /// Expected parameter count.
        expected: usize,
        /// Provided argument count.
        got: usize,
    },
    /// The step budget was exhausted (runaway loop or recursion).
    OutOfFuel,
    /// Division or remainder by zero.
    DivisionByZero,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            ExecError::UnresolvedTradeoff(n) => {
                write!(
                    f,
                    "unresolved tradeoff placeholder `{n}` (run the back-end first)"
                )
            }
            ExecError::ArityMismatch {
                function,
                expected,
                got,
            } => write!(f, "`{function}` takes {expected} arguments, got {got}"),
            ExecError::OutOfFuel => write!(f, "execution exceeded the step budget"),
            ExecError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Interpreter over a module, with a fuel budget shared across calls.
///
/// Cross-invocation state variables (`state NAME = ..;` declarations) live
/// in the interpreter, seeded from the module's state table, and persist
/// across [`Interp::call`]s — one `Interp` models one sequential stream of
/// invocations, matching the paper's `State` that `computeOutput` carries
/// from invocation to invocation.
pub struct Interp<'m> {
    module: &'m Module,
    fuel: u64,
    /// Cross-invocation state, persisting across `call`s.
    state: HashMap<String, Value>,
    /// Host intrinsics callable from IR (e.g. `sqrt` variants used by
    /// function tradeoffs in tests and workload descriptors).
    intrinsics: HashMap<String, fn(&[Value]) -> Value>,
}

impl<'m> Interp<'m> {
    /// Create an interpreter with the default fuel budget (1M steps).
    pub fn new(module: &'m Module) -> Self {
        let mut intrinsics: HashMap<String, fn(&[Value]) -> Value> = HashMap::new();
        intrinsics.insert("sqrt".into(), |args| {
            Value::Float(args.first().map(|v| v.as_float()).unwrap_or(0.0).sqrt())
        });
        intrinsics.insert("abs".into(), |args| match args.first() {
            Some(Value::Int(v)) => Value::Int(v.wrapping_abs()),
            Some(Value::Float(v)) => Value::Float(v.abs()),
            None => Value::Int(0),
        });
        intrinsics.insert("min".into(), |args| {
            let a = args.first().map(|v| v.as_float()).unwrap_or(0.0);
            let b = args.get(1).map(|v| v.as_float()).unwrap_or(0.0);
            Value::Float(a.min(b))
        });
        intrinsics.insert("max".into(), |args| {
            let a = args.first().map(|v| v.as_float()).unwrap_or(0.0);
            let b = args.get(1).map(|v| v.as_float()).unwrap_or(0.0);
            Value::Float(a.max(b))
        });
        intrinsics.insert("exp".into(), |args| {
            Value::Float(args.first().map(|v| v.as_float()).unwrap_or(0.0).exp())
        });
        intrinsics.insert("ln".into(), |args| {
            Value::Float(
                args.first()
                    .map(|v| v.as_float())
                    .unwrap_or(0.0)
                    .max(f64::MIN_POSITIVE)
                    .ln(),
            )
        });
        intrinsics.insert("pow".into(), |args| {
            let a = args.first().map(|v| v.as_float()).unwrap_or(0.0);
            let b = args.get(1).map(|v| v.as_float()).unwrap_or(0.0);
            Value::Float(a.powf(b))
        });
        intrinsics.insert("floor".into(), |args| {
            Value::Int(args.first().map(|v| v.as_float()).unwrap_or(0.0).floor() as i64)
        });
        let state = module
            .metadata
            .state_vars
            .iter()
            .map(|v| {
                let init = match v.init {
                    crate::metadata::StateInit::Int(i) => Value::Int(i),
                    crate::metadata::StateInit::Float(f) => Value::Float(f),
                };
                (v.name.clone(), init)
            })
            .collect();
        Interp {
            module,
            fuel: 1_000_000,
            state,
            intrinsics,
        }
    }

    /// Replace the fuel budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// The current value of a state variable.
    pub fn state_value(&self, name: &str) -> Option<Value> {
        self.state.get(name).copied()
    }

    /// Overwrite a state variable (e.g. to restore a checkpoint).
    pub fn set_state(&mut self, name: impl Into<String>, value: Value) {
        self.state.insert(name.into(), value);
    }

    /// Register a host intrinsic callable from IR.
    pub fn register_intrinsic(&mut self, name: impl Into<String>, f: fn(&[Value]) -> Value) {
        self.intrinsics.insert(name.into(), f);
    }

    /// Call `name` with `args`; returns the function's returned value.
    pub fn call(&mut self, name: &str, args: &[Value]) -> Result<Option<Value>, ExecError> {
        let f = self
            .module
            .function(name)
            .ok_or_else(|| ExecError::UnknownFunction(name.to_string()))?;
        if f.params.len() != args.len() {
            return Err(ExecError::ArityMismatch {
                function: name.to_string(),
                expected: f.params.len(),
                got: args.len(),
            });
        }
        self.exec(f, args)
    }

    fn exec(&mut self, f: &Function, args: &[Value]) -> Result<Option<Value>, ExecError> {
        let mut regs: HashMap<Reg, Value> = HashMap::new();
        for (&p, &a) in f.params.iter().zip(args) {
            regs.insert(p, a);
        }
        let mut block = 0usize;
        let mut pc = 0usize;
        loop {
            if self.fuel == 0 {
                return Err(ExecError::OutOfFuel);
            }
            self.fuel -= 1;
            let inst = &f.blocks[block].insts[pc];
            pc += 1;
            match inst {
                Inst::Const { dst, value } => {
                    let v = read(&regs, *value);
                    regs.insert(*dst, v);
                }
                Inst::Bin { op, dst, lhs, rhs } => {
                    let a = read(&regs, *lhs);
                    let b = read(&regs, *rhs);
                    regs.insert(*dst, binop(*op, a, b)?);
                }
                Inst::Cast { dst, src, to } => {
                    let v = read(&regs, *src);
                    let ty = match to {
                        TyRef::Concrete(t) => *t,
                        TyRef::Tradeoff(name) => {
                            return Err(ExecError::UnresolvedTradeoff(name.clone()))
                        }
                    };
                    regs.insert(*dst, cast(v, ty));
                }
                Inst::TradeoffRef { tradeoff, .. } => {
                    return Err(ExecError::UnresolvedTradeoff(tradeoff.clone()))
                }
                Inst::LoadState { dst, state } => {
                    let v = self.state.get(state).copied().unwrap_or(Value::Int(0));
                    regs.insert(*dst, v);
                }
                Inst::StoreState { state, src } => {
                    let v = read(&regs, *src);
                    self.state.insert(state.clone(), v);
                }
                Inst::CallTradeoff { tradeoff, .. } => {
                    return Err(ExecError::UnresolvedTradeoff(tradeoff.clone()))
                }
                Inst::Call { dst, callee, args } => {
                    let vals: Vec<Value> = args.iter().map(|&a| read(&regs, a)).collect();
                    let result = if let Some(intrinsic) = self.intrinsics.get(callee) {
                        Some(intrinsic(&vals))
                    } else {
                        self.call(callee, &vals)?
                    };
                    if let Some(dst) = dst {
                        regs.insert(*dst, result.unwrap_or(Value::Int(0)));
                    }
                }
                Inst::Jmp { target } => {
                    block = target.0;
                    pc = 0;
                }
                Inst::Br {
                    cond,
                    then_b,
                    else_b,
                } => {
                    let c = read(&regs, *cond);
                    block = if c.truthy() { then_b.0 } else { else_b.0 };
                    pc = 0;
                }
                Inst::Ret { value } => {
                    return Ok(value.map(|v| read(&regs, v)));
                }
            }
        }
    }
}

fn read(regs: &HashMap<Reg, Value>, op: Operand) -> Value {
    match op {
        Operand::Reg(r) => *regs.get(&r).unwrap_or(&Value::Int(0)),
        Operand::ImmInt(v) => Value::Int(v),
        Operand::ImmFloat(v) => Value::Float(v),
    }
}

fn cast(v: Value, ty: Ty) -> Value {
    match ty {
        Ty::I64 => Value::Int(match v {
            Value::Int(i) => i,
            Value::Float(f) => f as i64,
        }),
        Ty::F32 => Value::Float(v.as_float() as f32 as f64),
        Ty::F64 => Value::Float(v.as_float()),
    }
}

fn binop(op: BinOp, a: Value, b: Value) -> Result<Value, ExecError> {
    use BinOp::*;
    // Integer op if both sides are integers; float otherwise.
    if let (Value::Int(x), Value::Int(y)) = (a, b) {
        let v = match op {
            Add => x.wrapping_add(y),
            Sub => x.wrapping_sub(y),
            Mul => x.wrapping_mul(y),
            Div => {
                if y == 0 {
                    return Err(ExecError::DivisionByZero);
                }
                x.wrapping_div(y)
            }
            Rem => {
                if y == 0 {
                    return Err(ExecError::DivisionByZero);
                }
                x.wrapping_rem(y)
            }
            Lt => (x < y) as i64,
            Le => (x <= y) as i64,
            Gt => (x > y) as i64,
            Ge => (x >= y) as i64,
            Eq => (x == y) as i64,
            Ne => (x != y) as i64,
        };
        return Ok(Value::Int(v));
    }
    let x = a.as_float();
    let y = b.as_float();
    Ok(match op {
        Add => Value::Float(x + y),
        Sub => Value::Float(x - y),
        Mul => Value::Float(x * y),
        Div => Value::Float(x / y),
        Rem => Value::Float(x % y),
        Lt => Value::Int((x < y) as i64),
        Le => Value::Int((x <= y) as i64),
        Gt => Value::Int((x > y) as i64),
        Ge => Value::Int((x >= y) as i64),
        Eq => Value::Int((x == y) as i64),
        Ne => Value::Int((x != y) as i64),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower_fn, validate};
    use crate::parser::parse;

    fn module_of(src: &str) -> Module {
        let p = parse(src).unwrap();
        let mut m = Module::new();
        for f in &p.functions {
            let lowered = lower_fn(f).unwrap();
            validate(&lowered).unwrap();
            m.add_function(lowered);
        }
        m
    }

    fn run(src: &str, f: &str, args: &[Value]) -> Value {
        let m = module_of(src);
        Interp::new(&m).call(f, args).unwrap().unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(
            run(
                "fn f(a, b) { return a * b + 2; }",
                "f",
                &[3.into(), 4.into()]
            ),
            Value::Int(14)
        );
    }

    #[test]
    fn float_arithmetic() {
        assert_eq!(
            run("fn f(a) { return a / 2.0; }", "f", &[7.into()]),
            Value::Float(3.5)
        );
    }

    #[test]
    fn loops_terminate() {
        assert_eq!(
            run(
                "fn sum(n) { let s = 0; let i = 1; while (i <= n) { s = s + i; i = i + 1; } return s; }",
                "sum",
                &[100.into()],
            ),
            Value::Int(5050)
        );
    }

    #[test]
    fn conditionals() {
        let src = "fn sign(x) { if (x > 0) { return 1; } else if (x < 0) { return 0 - 1; } else { return 0; } }";
        assert_eq!(run(src, "sign", &[5.into()]), Value::Int(1));
        assert_eq!(run(src, "sign", &[(-5).into()]), Value::Int(-1));
        assert_eq!(run(src, "sign", &[0.into()]), Value::Int(0));
    }

    #[test]
    fn calls_between_functions() {
        let src = "fn sq(x) { return x * x; } fn f(a) { return sq(a) + sq(a + 1); }";
        assert_eq!(run(src, "f", &[3.into()]), Value::Int(25));
    }

    #[test]
    fn recursion() {
        let src = "fn fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }";
        assert_eq!(run(src, "fact", &[10.into()]), Value::Int(3628800));
    }

    #[test]
    fn intrinsic_sqrt() {
        assert_eq!(
            run("fn f(x) { return sqrt(x); }", "f", &[9.0.into()]),
            Value::Float(3.0)
        );
    }

    #[test]
    fn for_loops() {
        assert_eq!(
            run(
                "fn sum(n) { let s = 0; for i in 0..n { s = s + i; } return s; }",
                "sum",
                &[10.into()],
            ),
            Value::Int(45)
        );
        // The bound is evaluated once; mutating it in the body has no
        // effect on trip count.
        assert_eq!(
            run(
                "fn f() { let n = 3; let c = 0; for i in 0..n { n = 100; c = c + 1; } return c; }",
                "f",
                &[],
            ),
            Value::Int(3)
        );
        // Empty and reversed ranges run zero iterations.
        assert_eq!(
            run(
                "fn f() { let c = 0; for i in 5..5 { c = c + 1; } return c; }",
                "f",
                &[]
            ),
            Value::Int(0)
        );
        assert_eq!(
            run(
                "fn f() { let c = 0; for i in 7..2 { c = c + 1; } return c; }",
                "f",
                &[]
            ),
            Value::Int(0)
        );
    }

    #[test]
    fn nested_for_loops() {
        assert_eq!(
            run(
                "fn f(n) { let s = 0; for i in 0..n { for j in 0..i { s = s + 1; } } return s; }",
                "f",
                &[5.into()],
            ),
            Value::Int(10)
        );
    }

    #[test]
    fn math_intrinsics() {
        assert_eq!(
            run("fn f(x) { return exp(ln(x)); }", "f", &[5.0.into()])
                .as_float()
                .round(),
            5.0
        );
        assert_eq!(
            run(
                "fn f(a, b) { return pow(a, b); }",
                "f",
                &[2.0.into(), 10.0.into()]
            ),
            Value::Float(1024.0)
        );
        assert_eq!(
            run("fn f(x) { return floor(x); }", "f", &[3.9.into()]),
            Value::Int(3)
        );
    }

    #[test]
    fn fuel_limits_runaway_loops() {
        let m = module_of("fn spin() { let i = 0; while (i < 100) { i = i; } return i; }");
        let err = Interp::new(&m)
            .with_fuel(1000)
            .call("spin", &[])
            .unwrap_err();
        assert_eq!(err, ExecError::OutOfFuel);
    }

    #[test]
    fn unresolved_tradeoff_is_an_error() {
        let m = module_of("fn f() { return tradeoff k; }");
        let err = Interp::new(&m).call("f", &[]).unwrap_err();
        assert_eq!(err, ExecError::UnresolvedTradeoff("k".into()));
    }

    #[test]
    fn division_by_zero() {
        let m = module_of("fn f(a) { return a / 0; }");
        let err = Interp::new(&m).call("f", &[1.into()]).unwrap_err();
        assert_eq!(err, ExecError::DivisionByZero);
    }

    #[test]
    fn unknown_function() {
        let m = module_of("fn f() { return g(); }");
        let err = Interp::new(&m).call("f", &[]).unwrap_err();
        assert_eq!(err, ExecError::UnknownFunction("g".into()));
    }

    #[test]
    fn arity_mismatch() {
        let m = module_of("fn f(a, b) { return a + b; }");
        let err = Interp::new(&m).call("f", &[1.into()]).unwrap_err();
        assert!(matches!(err, ExecError::ArityMismatch { .. }));
    }

    #[test]
    fn logical_operators() {
        let src = "fn f(a, b) { if (a > 0 && b > 0) { return 1; } return 0; }";
        assert_eq!(run(src, "f", &[1.into(), 1.into()]), Value::Int(1));
        assert_eq!(run(src, "f", &[1.into(), 0.into()]), Value::Int(0));
        let src2 = "fn f(a, b) { if (a > 0 || b > 0) { return 1; } return 0; }";
        assert_eq!(run(src2, "f", &[0.into(), 1.into()]), Value::Int(1));
        assert_eq!(run(src2, "f", &[0.into(), 0.into()]), Value::Int(0));
    }

    #[test]
    fn f32_cast_quantizes() {
        use crate::ir::{BlockId, Inst, TyRef};
        let mut f = crate::ir::Function::new("q", 1);
        let p = f.params[0];
        let dst = f.fresh_reg();
        f.push(
            BlockId(0),
            Inst::Cast {
                dst,
                src: p.into(),
                to: TyRef::Concrete(Ty::F32),
            },
        );
        f.push(
            BlockId(0),
            Inst::Ret {
                value: Some(dst.into()),
            },
        );
        let mut m = Module::new();
        m.add_function(f);
        let x = 0.1_f64 + 1e-12;
        let out = Interp::new(&m).call("q", &[x.into()]).unwrap().unwrap();
        assert_ne!(out.as_float(), x);
        assert_eq!(out.as_float(), x as f32 as f64);
    }
}
