//! Module metadata tables (paper §3.4).
//!
//! The middle-end encodes STATS-specific information in metadata tables
//! riding with the IR, "inspired by the DotNET compilation framework, which
//! encodes source level information in metadata tables included in CIL
//! bytecode files". Two tables exist: tradeoffs and state dependences.

use crate::ast::TradeoffKind;
use crate::ir::Ty;

/// How a tradeoff's values are produced at configuration time.
#[derive(Debug, Clone, PartialEq)]
pub enum TradeoffValues {
    /// Values come from interpreting the tradeoff's `getValue` IR function
    /// (the paper's dynamic-compilation path).
    Computed {
        /// Name of the `getValue(i)` IR function.
        get_value_fn: String,
    },
    /// An enumerated list of numeric values.
    Values(Vec<f64>),
    /// An enumerated list of callee names (function tradeoff).
    Functions(Vec<String>),
    /// An enumerated list of scalar types (type tradeoff).
    Types(Vec<Ty>),
}

/// One row of the tradeoff table.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffMeta {
    /// Tradeoff name, as referenced by IR instructions.
    pub name: String,
    /// Number of possible values (`getMaxIndex`).
    pub max_index: i64,
    /// Index used outside auxiliary code (`getDefaultIndex`).
    pub default_index: i64,
    /// Value production rule.
    pub values: TradeoffValues,
    /// For clones created by the middle-end: the original tradeoff's name.
    pub cloned_from: Option<String>,
    /// For clones: the state dependence whose auxiliary code owns them.
    pub owner_dep: Option<String>,
}

/// One row of the state-dependence table.
#[derive(Debug, Clone, PartialEq)]
pub struct StateDepMeta {
    /// Dependence name.
    pub name: String,
    /// The original `compute_output` function's name.
    pub compute_fn: String,
    /// The auxiliary clone's name (filled in by the middle-end).
    pub aux_fn: Option<String>,
    /// Names of the cloned tradeoffs owned by this dependence's auxiliary
    /// code, in declaration order — the order of configuration indices.
    pub aux_tradeoffs: Vec<String>,
    /// State variables this dependence *declares* it carries between
    /// invocations (the `state = [..];` field). The speculation-safety
    /// analysis checks the compute function's actual accesses against this
    /// set — an undeclared access is a race under speculative execution.
    pub declared_state: Vec<String>,
}

/// One row of the state-variable table: a cross-invocation global declared
/// with `state NAME = <literal>;`.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVarMeta {
    /// State variable name, as referenced by IR instructions.
    pub name: String,
    /// Initial value before the first invocation.
    pub init: StateInit,
}

/// The initial value of a state variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StateInit {
    /// Integer initializer.
    Int(i64),
    /// Float initializer.
    Float(f64),
}

/// The metadata tables of a module.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metadata {
    /// Tradeoff table.
    pub tradeoffs: Vec<TradeoffMeta>,
    /// State-dependence table.
    pub state_deps: Vec<StateDepMeta>,
    /// State-variable table (cross-invocation globals).
    pub state_vars: Vec<StateVarMeta>,
}

impl Metadata {
    /// Look up a tradeoff row by name.
    pub fn tradeoff(&self, name: &str) -> Option<&TradeoffMeta> {
        self.tradeoffs.iter().find(|t| t.name == name)
    }

    /// Look up a state dependence row by name.
    pub fn state_dep(&self, name: &str) -> Option<&StateDepMeta> {
        self.state_deps.iter().find(|d| d.name == name)
    }

    /// Look up a state variable row by name.
    pub fn state_var(&self, name: &str) -> Option<&StateVarMeta> {
        self.state_vars.iter().find(|v| v.name == name)
    }

    /// Remove a tradeoff row (the middle-end deletes rows of tradeoffs it
    /// pins to their defaults).
    pub fn remove_tradeoff(&mut self, name: &str) {
        self.tradeoffs.retain(|t| t.name != name);
    }
}

/// Convert a parsed AST tradeoff kind into metadata values, resolving type
/// names. `get_value_fn` names the IR function lowered from a computed rule.
pub fn values_from_kind(
    kind: &TradeoffKind,
    get_value_fn: String,
) -> Result<TradeoffValues, String> {
    Ok(match kind {
        TradeoffKind::Computed { .. } => TradeoffValues::Computed { get_value_fn },
        TradeoffKind::Values(vs) => TradeoffValues::Values(vs.clone()),
        TradeoffKind::Functions(fs) => TradeoffValues::Functions(fs.clone()),
        TradeoffKind::Types(ts) => {
            let mut tys = Vec::with_capacity(ts.len());
            for t in ts {
                tys.push(match t.as_str() {
                    "i64" => Ty::I64,
                    "f32" => Ty::F32,
                    "f64" => Ty::F64,
                    other => return Err(format!("unknown type `{other}` in type tradeoff")),
                });
            }
            TradeoffValues::Types(tys)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_remove() {
        let mut md = Metadata::default();
        md.tradeoffs.push(TradeoffMeta {
            name: "k".into(),
            max_index: 3,
            default_index: 0,
            values: TradeoffValues::Values(vec![1.0, 2.0, 4.0]),
            cloned_from: None,
            owner_dep: None,
        });
        assert!(md.tradeoff("k").is_some());
        md.remove_tradeoff("k");
        assert!(md.tradeoff("k").is_none());
    }

    #[test]
    fn type_names_resolve() {
        let v = values_from_kind(
            &TradeoffKind::Types(vec!["f64".into(), "f32".into()]),
            String::new(),
        )
        .unwrap();
        assert_eq!(v, TradeoffValues::Types(vec![Ty::F64, Ty::F32]));
    }

    #[test]
    fn unknown_type_rejected() {
        let e = values_from_kind(&TradeoffKind::Types(vec!["f16".into()]), String::new());
        assert!(e.is_err());
    }
}
