//! Purity / side-effect analysis of auxiliary code clones.
//!
//! The middle-end's `*__aux_*` clones run speculatively ahead of the
//! committed execution, so their effects must be confined to state the
//! runtime knows how to predict and validate — the dependence's
//! `declared_state`. This pass proves, per dependence, that the auxiliary
//! clone's whole reachable set touches only declared state:
//!
//! - a **store** to undeclared state is a hard error (an unrevertible side
//!   effect escaping speculation);
//! - a **load** of undeclared state that some dependence writes is a hard
//!   error (the value observed speculatively may differ from the committed
//!   one);
//! - a load of undeclared state *nobody* writes is only a warning (the
//!   variable is effectively a constant, but should still be declared).
//!
//! The per-dependence facts are exposed as [`DepPurity`] via
//! [`purity_facts`], independent of diagnostic rendering, so runtime
//! schedulers can consume them programmatically.

use std::collections::HashSet;

use crate::ir::{Inst, Module};

use super::callgraph::{state_escape, CallGraph};
use super::{Diagnostic, LintKind, Severity};

/// Purity facts for one state dependence's auxiliary code.
#[derive(Debug, Clone, PartialEq)]
pub struct DepPurity {
    /// The dependence's name.
    pub dep: String,
    /// The function analyzed: the auxiliary clone when the middle-end ran,
    /// otherwise the compute function.
    pub subject_fn: String,
    /// Whether `subject_fn` is an auxiliary clone.
    pub is_aux: bool,
    /// State variables the subject's reachable set loads (sorted).
    pub reads: Vec<String>,
    /// State variables the subject's reachable set stores (sorted).
    pub writes: Vec<String>,
    /// Accesses (reads or writes) to state outside `declared_state`
    /// (sorted).
    pub undeclared: Vec<String>,
}

impl DepPurity {
    /// True when every state access is covered by the declaration — the
    /// clone is pure with respect to undeclared state.
    pub fn is_pure(&self) -> bool {
        self.undeclared.is_empty()
    }
}

/// Compute purity facts for every state dependence in `module`.
pub fn purity_facts(module: &Module, cg: &CallGraph) -> Vec<DepPurity> {
    module
        .metadata
        .state_deps
        .iter()
        .map(|dep| {
            let subject = dep.aux_fn.as_deref().unwrap_or(&dep.compute_fn);
            let esc = state_escape(module, cg, subject);
            let declared: HashSet<&str> = dep.declared_state.iter().map(String::as_str).collect();
            let mut reads: Vec<String> = esc.reads.iter().cloned().collect();
            let mut writes: Vec<String> = esc.writes.iter().cloned().collect();
            let mut undeclared: Vec<String> = esc
                .reads
                .union(&esc.writes)
                .filter(|s| !declared.contains(s.as_str()))
                .cloned()
                .collect();
            reads.sort();
            writes.sort();
            undeclared.sort();
            DepPurity {
                dep: dep.name.clone(),
                subject_fn: subject.to_string(),
                is_aux: dep.aux_fn.is_some(),
                reads,
                writes,
                undeclared,
            }
        })
        .collect()
}

/// Locate the first matching access of `state` reachable from `root` (store
/// when `want_store`, load otherwise), for diagnostics.
fn locate(
    module: &Module,
    cg: &CallGraph,
    root: &str,
    state: &str,
    want_store: bool,
) -> Option<crate::verify::Location> {
    let reachable = cg.reachable(root);
    for f in module.functions() {
        if !reachable.contains(&f.name) {
            continue;
        }
        for (i, inst) in f.insts().enumerate() {
            let hit = match inst {
                Inst::StoreState { state: s, .. } => want_store && s == state,
                Inst::LoadState { state: s, .. } => !want_store && s == state,
                _ => false,
            };
            if hit {
                return Some(crate::verify::Location::new(&f.name, i));
            }
        }
    }
    None
}

/// Run the purity check over every *auxiliary* clone of `module`. Before
/// the middle-end runs (no clones yet) this reports nothing — the race
/// check covers the compute functions.
pub fn check(module: &Module, cg: &CallGraph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // State written by any dependence's compute set: loads of these are
    // unstable under speculation.
    let written_anywhere: HashSet<String> = module
        .metadata
        .state_deps
        .iter()
        .flat_map(|d| state_escape(module, cg, &d.compute_fn).writes)
        .collect();

    for fact in purity_facts(module, cg) {
        if !fact.is_aux {
            continue;
        }
        for state in &fact.undeclared {
            if fact.writes.contains(state) {
                diags.push(Diagnostic {
                    lint: LintKind::ImpureAux,
                    severity: Severity::Error,
                    message: format!(
                        "auxiliary clone `{}` of dependence `{}` stores undeclared \
                         state variable `{state}`: a side effect escaping speculation",
                        fact.subject_fn, fact.dep
                    ),
                    location: locate(module, cg, &fact.subject_fn, state, true),
                });
            } else {
                let (severity, why) = if written_anywhere.contains(state) {
                    (
                        Severity::Error,
                        "its speculative value may differ from the committed one",
                    )
                } else {
                    (Severity::Warning, "it behaves as an undeclared constant")
                };
                diags.push(Diagnostic {
                    lint: LintKind::ImpureAux,
                    severity,
                    message: format!(
                        "auxiliary clone `{}` of dependence `{}` loads undeclared \
                         state variable `{state}`: {why}",
                        fact.subject_fn, fact.dep
                    ),
                    location: locate(module, cg, &fact.subject_fn, state, false),
                });
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::compile;
    use crate::midend::{self, MidendOptions};

    fn midend_module(src: &str) -> Module {
        // Gate disabled: these tests exercise the analysis on modules the
        // gate would reject.
        midend::run_with(
            compile(src).unwrap(),
            MidendOptions {
                enforce_analysis: false,
                ..MidendOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn facts_cover_aux_clone_and_mark_impurity() {
        let m = midend_module(
            "state log = 0;
             state_dependence d { compute = step; }
             fn step(x) { log = x; return x; }",
        );
        let cg = CallGraph::build(&m);
        let facts = purity_facts(&m, &cg);
        assert_eq!(facts.len(), 1);
        let f = &facts[0];
        assert!(f.is_aux);
        assert_eq!(f.subject_fn, "step__aux_d");
        assert_eq!(f.writes, ["log"]);
        assert!(!f.is_pure());
        let diags = check(&m, &cg);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("stores undeclared"));
        assert_eq!(diags[0].location.as_ref().unwrap().function, "step__aux_d");
    }

    #[test]
    fn declared_state_is_pure() {
        let m = midend_module(
            "state acc = 0;
             state_dependence d { compute = step; state = [acc]; }
             fn step(x) { acc = acc + x; return acc; }",
        );
        let cg = CallGraph::build(&m);
        let facts = purity_facts(&m, &cg);
        assert!(facts[0].is_pure());
        assert!(check(&m, &cg).is_empty());
    }

    #[test]
    fn constant_state_load_is_warning() {
        let m = midend_module(
            "state scale = 2;
             state_dependence d { compute = step; }
             fn step(x) { return x * scale; }",
        );
        let cg = CallGraph::build(&m);
        let diags = check(&m, &cg);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("undeclared constant"));
    }

    #[test]
    fn no_aux_no_findings() {
        let m = compile(
            "state acc = 0;
             state_dependence d { compute = step; }
             fn step(x) { acc = acc + x; return acc; }",
        )
        .unwrap()
        .module;
        let cg = CallGraph::build(&m);
        assert!(check(&m, &cg).is_empty());
        // Facts still available, on the compute function.
        let facts = purity_facts(&m, &cg);
        assert!(!facts[0].is_aux);
        assert_eq!(facts[0].subject_fn, "step");
    }
}
