//! Speculation-safety static analysis.
//!
//! STATS parallelizes nondeterministic applications by running each state
//! dependence's auxiliary clone speculatively, one invocation ahead. That
//! is only sound when the compiler can see every channel through which an
//! invocation influences the next. This module tree proves (or refutes)
//! that, over the block IR, with four checks built on a shared
//! forward-dataflow framework ([`dataflow`]) and call graph + state-escape
//! analysis ([`callgraph`]):
//!
//! | check | lint | severity |
//! |---|---|---|
//! | undeclared cross-invocation flow | [`LintKind::UndeclaredStateRace`] | error |
//! | aux clone touching undeclared state | [`LintKind::ImpureAux`] | error |
//! | default-vs-full-range interval divergence | [`LintKind::IntervalDivergence`] | warning |
//! | dead tradeoffs / unreachable functions | [`LintKind::UnusedTradeoff`], [`LintKind::UnreachableFunction`] | warning |
//!
//! The checks are exposed three ways: the `stats-lint` binary (structured
//! diagnostics for humans and CI), the middle-end gate
//! ([`crate::midend::MidendOptions::enforce_analysis`], which refuses
//! codegen on error-severity findings), and the
//! [`purity::purity_facts`] library API for runtime schedulers.

pub mod callgraph;
pub mod dataflow;
pub mod interval;
pub mod lints;
pub mod purity;
pub mod races;

pub use purity::{purity_facts, DepPurity};

use crate::ir::Module;
use crate::verify::Location;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not unsound; never blocks compilation.
    Warning,
    /// Unsound under speculative execution; blocks the middle-end unless
    /// the gate is disabled.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Which check produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintKind {
    /// Cross-invocation state flow not covered by a `state = [..];`
    /// declaration — a data race under speculation.
    UndeclaredStateRace,
    /// An auxiliary clone reads or writes state outside its dependence's
    /// declaration.
    ImpureAux,
    /// A value interval bounded at the default configuration but
    /// divergent (zero divisor / unbounded) over the full tradeoff range.
    IntervalDivergence,
    /// A tradeoff row no instruction references.
    UnusedTradeoff,
    /// A function unreachable from every dependence entry point.
    UnreachableFunction,
}

impl LintKind {
    /// Stable kebab-case lint name, as printed in diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            LintKind::UndeclaredStateRace => "undeclared-state-race",
            LintKind::ImpureAux => "impure-aux",
            LintKind::IntervalDivergence => "interval-divergence",
            LintKind::UnusedTradeoff => "unused-tradeoff",
            LintKind::UnreachableFunction => "unreachable-function",
        }
    }
}

/// One analysis finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The check that fired.
    pub lint: LintKind,
    /// Error (gates codegen) or warning.
    pub severity: Severity,
    /// Human-readable explanation, naming the offending items.
    pub message: String,
    /// The offending instruction, when the finding is tied to one (shares
    /// [`crate::verify::Location`] with the IR verifier).
    pub location: Option<Location>,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.severity,
            self.lint.name(),
            self.message
        )?;
        if let Some(loc) = &self.location {
            write!(f, " (at {loc})")?;
        }
        Ok(())
    }
}

/// Run every check over `module` and return the findings, errors first,
/// deduplicated. Sound on both front-end output (no auxiliary clones yet:
/// purity and interval checks have nothing to inspect) and middle-end
/// output.
pub fn analyze(module: &Module) -> Vec<Diagnostic> {
    let cg = callgraph::CallGraph::build(module);
    let mut diags = races::check(module, &cg);
    diags.extend(purity::check(module, &cg));
    diags.extend(interval::check(module, &cg));
    diags.extend(lints::check(module, &cg));
    dedup_sorted(diags)
}

/// Sort errors before warnings (stable within a severity) and drop exact
/// duplicates (same lint, message, and location).
pub fn dedup_sorted(mut diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut seen: Vec<(LintKind, String)> = Vec::new();
    diags.retain(|d| {
        let key = (d.lint, d.message.clone());
        if seen.contains(&key) {
            false
        } else {
            seen.push(key);
            true
        }
    });
    diags.sort_by_key(|d| std::cmp::Reverse(d.severity));
    diags
}

/// Do any findings gate compilation?
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::compile;

    #[test]
    fn analyze_clean_program_is_quiet() {
        let m = compile(
            "tradeoff layers { max_index = 10; default_index = 4; value(i) = i + 1; }
             state_dependence d { compute = step; }
             fn step(v) { return v * tradeoff layers; }",
        )
        .unwrap()
        .module;
        assert!(analyze(&m).is_empty());
    }

    #[test]
    fn analyze_orders_errors_first_and_dedups() {
        let m = compile(
            "state acc = 0;
             tradeoff dead { values = [1]; default_index = 0; }
             state_dependence d { compute = step; }
             fn step(x) { acc = acc + x; return acc; }",
        )
        .unwrap()
        .module;
        let diags = analyze(&m);
        assert!(diags.len() >= 2);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(has_errors(&diags));
        // Re-analyzing and concatenating must not duplicate findings.
        let twice = dedup_sorted(diags.iter().cloned().chain(diags.iter().cloned()).collect());
        assert_eq!(twice.len(), diags.len());
    }

    #[test]
    fn diagnostic_display_carries_lint_and_location() {
        let d = Diagnostic {
            lint: LintKind::UndeclaredStateRace,
            severity: Severity::Error,
            message: "boom".into(),
            location: Some(Location::new("f", 3)),
        };
        assert_eq!(
            format!("{d}"),
            "error[undeclared-state-race]: boom (at f@3)"
        );
    }
}
