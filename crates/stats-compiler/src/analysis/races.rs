//! Undeclared-state-dependence detection (race check).
//!
//! Under STATS, each state dependence's compute function is re-executed
//! speculatively: invocation *i+1*'s clone runs concurrently with
//! invocation *i*'s. Any cross-invocation flow through a state variable is
//! therefore a data race **unless the dependence declares that variable**
//! (`state = [..];`), which tells the runtime to predict and validate it.
//!
//! The rule, per dependence *d* with transitive state reads `R_d` and
//! writes `W_d` (from [`super::callgraph::state_escape`]), and `R_all` /
//! `W_all` the unions over *all* dependences:
//!
//! ```text
//! required_d = (R_d ∩ W_all) ∪ (W_d ∩ R_all)
//! ```
//!
//! i.e. a variable *d* reads that anyone (including *d* itself) writes, or
//! writes that anyone reads, carries a cross-invocation flow. Every
//! variable in `required_d` not listed in *d*'s `declared_state` is a hard
//! error. A declared variable the dependence never touches is reported as
//! a warning (stale declaration).

use std::collections::HashSet;

use crate::ir::{Inst, Module};

use super::callgraph::{state_escape, CallGraph, StateEscape};
use super::{Diagnostic, LintKind, Severity};

/// Locate the first access (load or store) of `state` in any function of
/// `set`, for diagnostics. Deterministic: scans functions in module order.
fn first_access(
    module: &Module,
    cg: &CallGraph,
    root: &str,
    state: &str,
) -> Option<crate::verify::Location> {
    let reachable = cg.reachable(root);
    for f in module.functions() {
        if !reachable.contains(&f.name) {
            continue;
        }
        for (i, inst) in f.insts().enumerate() {
            match inst {
                Inst::LoadState { state: s, .. } | Inst::StoreState { state: s, .. }
                    if s == state =>
                {
                    return Some(crate::verify::Location::new(&f.name, i));
                }
                _ => {}
            }
        }
    }
    None
}

/// Run the race check over every state dependence of `module`.
pub fn check(module: &Module, cg: &CallGraph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let deps = &module.metadata.state_deps;
    if deps.is_empty() {
        return diags;
    }

    let escapes: Vec<StateEscape> = deps
        .iter()
        .map(|d| state_escape(module, cg, &d.compute_fn))
        .collect();
    let mut all_reads: HashSet<&str> = HashSet::new();
    let mut all_writes: HashSet<&str> = HashSet::new();
    for esc in &escapes {
        all_reads.extend(esc.reads.iter().map(String::as_str));
        all_writes.extend(esc.writes.iter().map(String::as_str));
    }

    for (dep, esc) in deps.iter().zip(&escapes) {
        let declared: HashSet<&str> = dep.declared_state.iter().map(String::as_str).collect();
        let mut required: Vec<&String> = esc
            .reads
            .iter()
            .filter(|s| all_writes.contains(s.as_str()))
            .chain(esc.writes.iter().filter(|s| all_reads.contains(s.as_str())))
            .collect();
        required.sort();
        required.dedup();

        for state in required {
            if declared.contains(state.as_str()) {
                continue;
            }
            let role = match (esc.reads.contains(state), esc.writes.contains(state)) {
                (true, true) => "reads and writes",
                (true, false) => "reads",
                _ => "writes",
            };
            diags.push(Diagnostic {
                lint: LintKind::UndeclaredStateRace,
                severity: Severity::Error,
                message: format!(
                    "dependence `{}` {role} state variable `{state}` carrying a \
                     cross-invocation flow, but does not declare it; this is a data \
                     race under speculative execution (add `state = [{state}];`)",
                    dep.name
                ),
                location: first_access(module, cg, &dep.compute_fn, state),
            });
        }

        for state in &dep.declared_state {
            if !esc.reads.contains(state) && !esc.writes.contains(state) {
                diags.push(Diagnostic {
                    lint: LintKind::UndeclaredStateRace,
                    severity: Severity::Warning,
                    message: format!(
                        "dependence `{}` declares state variable `{state}` but its \
                         compute function never accesses it",
                        dep.name
                    ),
                    location: None,
                });
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::compile;

    fn run(src: &str) -> Vec<Diagnostic> {
        let m = compile(src).unwrap().module;
        let cg = CallGraph::build(&m);
        check(&m, &cg)
    }

    #[test]
    fn undeclared_carried_state_is_error() {
        let diags = run("state acc = 0;
             state_dependence d { compute = step; }
             fn step(x) { acc = acc + x; return acc; }");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("`acc`"));
        assert!(diags[0].location.is_some());
    }

    #[test]
    fn declared_carried_state_is_clean() {
        let diags = run("state acc = 0;
             state_dependence d { compute = step; state = [acc]; }
             fn step(x) { acc = acc + x; return acc; }");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn cross_dependence_flow_requires_declaration_on_both_sides() {
        // d1 writes `shared`, d2 reads it: both carry the flow.
        let diags = run("state shared = 0;
             state_dependence d1 { compute = producer; }
             state_dependence d2 { compute = consumer; }
             fn producer(x) { shared = x; return x; }
             fn consumer(x) { return shared + x; }");
        let errors: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert_eq!(errors.len(), 2);
        assert!(errors.iter().any(|d| d.message.contains("`d1` writes")));
        assert!(errors.iter().any(|d| d.message.contains("`d2` reads")));
    }

    #[test]
    fn write_only_private_state_is_not_a_race() {
        // Written but never read by anyone: no cross-invocation flow.
        let diags = run("state log = 0;
             state_dependence d { compute = step; }
             fn step(x) { log = x; return x; }");
        assert!(diags.iter().all(|d| d.severity != Severity::Error));
    }

    #[test]
    fn stale_declaration_is_warning() {
        let diags = run("state acc = 0;
             state_dependence d { compute = step; state = [acc]; }
             fn step(x) { return x; }");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("never accesses"));
    }

    #[test]
    fn transitive_access_through_helper_is_found() {
        let diags = run("state acc = 0;
             state_dependence d { compute = step; }
             fn bump(x) { acc = acc + x; return acc; }
             fn step(x) { return bump(x); }");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Error);
        // Location points into the helper that performs the access.
        assert_eq!(diags[0].location.as_ref().unwrap().function, "bump");
    }
}
