//! Tradeoff interval analysis (divergence-from-default check).
//!
//! Each auxiliary tradeoff ranges over `value(i)` for `i` in
//! `0..max_index`, but only the default index is ever exercised outside
//! auxiliary code. A program can therefore look perfectly healthy at the
//! default configuration and still divide by zero — or produce unbounded
//! values — at some other setting the autotuner is free to pick.
//!
//! This pass runs the forward dataflow framework twice per function in a
//! dependence's clone set, over an interval domain ([`Interval`]):
//!
//! 1. a **default run**, where each owned tradeoff is the *point* interval
//!    of its default value, and
//! 2. a **full-range run**, where each owned tradeoff is the hull of its
//!    values over *all* indices.
//!
//! A finding is reported only when the two runs *diverge*: a division
//! whose divisor may be zero under the full range but not at the default,
//! or a return interval unbounded under the full range but bounded at the
//! default. Unboundedness present in both runs (e.g. from input
//! parameters, which are `⊤` in both) cancels out, which is what makes
//! the comparison tradeoff-specific.

use std::collections::{HashMap, HashSet};

use crate::ir::{BinOp, Function, Inst, Module, Operand, Reg};
use crate::metadata::TradeoffValues;
use crate::midend::{tradeoff_value_at, ResolvedValue};
use crate::verify::Location;

use super::dataflow::{self, ForwardAnalysis, Lattice};
use super::{Diagnostic, LintKind, Severity};

/// A closed interval of reals, possibly unbounded on either side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound (may be `-inf`).
    pub lo: f64,
    /// Upper bound (may be `+inf`).
    pub hi: f64,
}

/// The full real line.
const TOP: Interval = Interval {
    lo: f64::NEG_INFINITY,
    hi: f64::INFINITY,
};

impl Interval {
    /// The interval `[v, v]`.
    pub fn point(v: f64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// The unbounded interval.
    pub fn top() -> Self {
        TOP
    }

    /// Build `[lo, hi]`, collapsing NaN bounds (from `∞ - ∞` style
    /// arithmetic) to the unbounded interval.
    fn make(lo: f64, hi: f64) -> Self {
        if lo.is_nan() || hi.is_nan() {
            TOP
        } else {
            Interval { lo, hi }
        }
    }

    /// Both bounds finite?
    pub fn is_bounded(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// Does the interval contain zero?
    pub fn contains_zero(&self) -> bool {
        self.lo <= 0.0 && self.hi >= 0.0
    }

    /// Smallest interval containing both.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval::make(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    fn apply(op: BinOp, a: Interval, b: Interval) -> Interval {
        let corners = |f: fn(f64, f64) -> f64| {
            let cs = [f(a.lo, b.lo), f(a.lo, b.hi), f(a.hi, b.lo), f(a.hi, b.hi)];
            if cs.iter().any(|c| c.is_nan()) {
                return TOP;
            }
            Interval::make(
                cs.iter().cloned().fold(f64::INFINITY, f64::min),
                cs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            )
        };
        match op {
            BinOp::Add => Interval::make(a.lo + b.lo, a.hi + b.hi),
            BinOp::Sub => Interval::make(a.lo - b.hi, a.hi - b.lo),
            BinOp::Mul => corners(|x, y| x * y),
            BinOp::Div => {
                if b.contains_zero() {
                    TOP
                } else {
                    corners(|x, y| x / y)
                }
            }
            BinOp::Rem => {
                if b.contains_zero() || !b.is_bounded() {
                    TOP
                } else {
                    // |a % b| < |b|, sign follows the dividend.
                    let m = b.lo.abs().max(b.hi.abs());
                    Interval::make(-m, m)
                }
            }
            // Comparisons produce 0/1.
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                Interval::make(0.0, 1.0)
            }
        }
    }
}

/// Per-register interval environment (the dataflow fact). A register
/// absent from the map has never been written on this path, which the
/// interpreter reads as `0`.
#[derive(Debug, Clone, PartialEq)]
pub struct Env {
    regs: HashMap<Reg, Interval>,
}

impl Env {
    fn get(&self, r: Reg) -> Interval {
        self.regs.get(&r).copied().unwrap_or(Interval::point(0.0))
    }

    fn eval(&self, op: &Operand) -> Interval {
        match op {
            Operand::Reg(r) => self.get(*r),
            Operand::ImmInt(v) => Interval::point(*v as f64),
            Operand::ImmFloat(v) => Interval::point(*v),
        }
    }

    fn set(&mut self, r: Reg, v: Interval) {
        self.regs.insert(r, v);
    }
}

impl Lattice for Env {
    fn join(&mut self, other: &Self) -> bool {
        let mut changed = false;
        let keys: HashSet<Reg> = self.regs.keys().chain(other.regs.keys()).copied().collect();
        for r in keys {
            let joined = self.get(r).hull(&other.get(r));
            if self.regs.get(&r) != Some(&joined) {
                self.regs.insert(r, joined);
                changed = true;
            }
        }
        changed
    }
}

/// The interval analysis proper: a forward dataflow over [`Env`],
/// parameterized by the tradeoff environment (name → value interval).
pub struct IntervalAnalysis<'a> {
    /// Known value intervals for tradeoff placeholders; anything absent is
    /// treated as `⊤`.
    pub tradeoffs: &'a HashMap<String, Interval>,
}

fn intrinsic_interval(callee: &str, args: &[Interval]) -> Interval {
    match (callee, args) {
        ("abs", [a]) => {
            if a.contains_zero() {
                Interval::make(0.0, a.lo.abs().max(a.hi.abs()))
            } else {
                let (x, y) = (a.lo.abs(), a.hi.abs());
                Interval::make(x.min(y), x.max(y))
            }
        }
        ("sqrt", [a]) => Interval::make(0.0, if a.hi >= 0.0 { a.hi.sqrt() } else { 0.0 }),
        ("floor", [a]) => Interval::make(a.lo.floor(), a.hi.floor()),
        ("min", [a, b]) => Interval::make(a.lo.min(b.lo), a.hi.min(b.hi)),
        ("max", [a, b]) => Interval::make(a.lo.max(b.lo), a.hi.max(b.hi)),
        ("exp", [a]) => Interval::make(0.0, a.hi.exp()),
        _ => Interval::top(),
    }
}

impl ForwardAnalysis for IntervalAnalysis<'_> {
    type Fact = Env;

    fn boundary(&self, f: &Function) -> Env {
        let mut env = Env {
            regs: HashMap::new(),
        };
        // Invocation inputs are arbitrary in both runs.
        for p in &f.params {
            env.set(*p, Interval::top());
        }
        env
    }

    fn transfer(&self, _f: &Function, inst: &Inst, env: &mut Env, widen: bool) {
        let widened = |env: &Env, dst: Reg, new: Interval| {
            if !widen {
                return new;
            }
            // Accelerate loops: any bound still growing jumps to infinity.
            let old = env.get(dst);
            Interval::make(
                if new.lo < old.lo {
                    f64::NEG_INFINITY
                } else {
                    new.lo
                },
                if new.hi > old.hi {
                    f64::INFINITY
                } else {
                    new.hi
                },
            )
        };
        match inst {
            Inst::Const { dst, value } => {
                let v = widened(env, *dst, env.eval(value));
                env.set(*dst, v);
            }
            Inst::Bin { op, dst, lhs, rhs } => {
                let v = Interval::apply(*op, env.eval(lhs), env.eval(rhs));
                let v = widened(env, *dst, v);
                env.set(*dst, v);
            }
            Inst::Cast { dst, src, .. } => {
                let v = widened(env, *dst, env.eval(src));
                env.set(*dst, v);
            }
            Inst::Call { dst, callee, args } => {
                if let Some(dst) = dst {
                    let arg_ivs: Vec<Interval> = args.iter().map(|a| env.eval(a)).collect();
                    let v = widened(env, *dst, intrinsic_interval(callee, &arg_ivs));
                    env.set(*dst, v);
                }
            }
            Inst::CallTradeoff { dst, .. } => {
                if let Some(dst) = dst {
                    env.set(*dst, Interval::top());
                }
            }
            Inst::TradeoffRef { dst, tradeoff } => {
                let v = self
                    .tradeoffs
                    .get(tradeoff)
                    .copied()
                    .unwrap_or(Interval::top());
                env.set(*dst, v);
            }
            // Cross-invocation state is arbitrary by the time a later
            // invocation observes it.
            Inst::LoadState { dst, .. } => env.set(*dst, Interval::top()),
            Inst::StoreState { .. } | Inst::Jmp { .. } | Inst::Br { .. } | Inst::Ret { .. } => {}
        }
    }
}

/// What one run of the analysis concluded about a function.
#[derive(Debug, Clone, PartialEq)]
pub struct FnSummary {
    /// Hull over all `ret <value>` sites; `None` if the function never
    /// returns a value (or is unreachable past entry).
    pub ret: Option<Interval>,
    /// Flat instruction indices (in [`Function::insts`] order) of `Div` /
    /// `Rem` instructions whose divisor may be zero.
    pub zero_divisors: Vec<usize>,
}

/// Analyze one function under a tradeoff environment.
pub fn analyze_function(f: &Function, tradeoffs: &HashMap<String, Interval>) -> FnSummary {
    let analysis = IntervalAnalysis { tradeoffs };
    let entry_facts = dataflow::run(f, &analysis);

    let mut ret: Option<Interval> = None;
    let mut zero_divisors = Vec::new();
    let mut flat = 0usize;
    for (bi, block) in f.blocks.iter().enumerate() {
        let Some(fact) = entry_facts.get(bi).and_then(Clone::clone) else {
            flat += block.insts.len();
            continue;
        };
        let mut env = fact;
        for inst in &block.insts {
            match inst {
                Inst::Bin {
                    op: BinOp::Div | BinOp::Rem,
                    rhs,
                    ..
                } if env.eval(rhs).contains_zero() => zero_divisors.push(flat),
                Inst::Ret { value: Some(v) } => {
                    let iv = env.eval(v);
                    ret = Some(match ret {
                        Some(prev) => prev.hull(&iv),
                        None => iv,
                    });
                }
                _ => {}
            }
            analysis.transfer(f, inst, &mut env, false);
            flat += 1;
        }
    }
    FnSummary { ret, zero_divisors }
}

/// Tradeoff environments for one dependence's owned rows: `(default,
/// full-range)`. Rows whose values are functions or types contribute
/// nothing (calls through them are `⊤` either way).
fn dep_envs(module: &Module, dep: &str) -> (HashMap<String, Interval>, HashMap<String, Interval>) {
    let mut default = HashMap::new();
    let mut full = HashMap::new();
    for row in &module.metadata.tradeoffs {
        if row.owner_dep.as_deref() != Some(dep) {
            continue;
        }
        if matches!(
            row.values,
            TradeoffValues::Functions(_) | TradeoffValues::Types(_)
        ) {
            continue;
        }
        let value_at = |i: i64| -> Option<f64> {
            match tradeoff_value_at(module, row, i).ok()? {
                ResolvedValue::Int(v) => Some(v as f64),
                ResolvedValue::Float(v) => Some(v),
                _ => None,
            }
        };
        let Some(d) = value_at(row.default_index) else {
            continue;
        };
        let mut range = Interval::point(d);
        let mut complete = true;
        for i in 0..row.max_index {
            match value_at(i) {
                Some(v) => range = range.hull(&Interval::point(v)),
                None => complete = false,
            }
        }
        default.insert(row.name.clone(), Interval::point(d));
        full.insert(
            row.name.clone(),
            if complete { range } else { Interval::top() },
        );
    }
    (default, full)
}

/// Run the divergence check over every dependence that has auxiliary code.
pub fn check(module: &Module, cg: &super::callgraph::CallGraph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for dep in &module.metadata.state_deps {
        let Some(aux) = &dep.aux_fn else { continue };
        let (env_default, env_full) = dep_envs(module, &dep.name);
        if env_full.is_empty() {
            continue;
        }
        for name in cg.reachable(aux) {
            let Some(f) = module.function(&name) else {
                continue;
            };
            let at_default = analyze_function(f, &env_default);
            let at_full = analyze_function(f, &env_full);

            for site in &at_full.zero_divisors {
                if !at_default.zero_divisors.contains(site) {
                    diags.push(Diagnostic {
                        lint: LintKind::IntervalDivergence,
                        severity: Severity::Warning,
                        message: format!(
                            "in dependence `{}`: division may hit a zero divisor for \
                             some setting of the auxiliary tradeoffs (the default \
                             configuration is safe)",
                            dep.name
                        ),
                        location: Some(Location::new(&f.name, *site)),
                    });
                }
            }
            if let (Some(d), Some(fu)) = (&at_default.ret, &at_full.ret) {
                if d.is_bounded() && !fu.is_bounded() {
                    diags.push(Diagnostic {
                        lint: LintKind::IntervalDivergence,
                        severity: Severity::Warning,
                        message: format!(
                            "in dependence `{}`: `{}` returns a bounded value \
                             [{}, {}] at the default configuration but an unbounded \
                             one over the full tradeoff range",
                            dep.name, f.name, d.lo, d.hi
                        ),
                        location: None,
                    });
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::callgraph::CallGraph;
    use crate::frontend::compile;
    use crate::midend::{self, MidendOptions};

    fn midend_module(src: &str) -> Module {
        midend::run_with(
            compile(src).unwrap(),
            MidendOptions {
                enforce_analysis: false,
                ..MidendOptions::default()
            },
        )
        .unwrap()
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        let m = midend_module(src);
        let cg = CallGraph::build(&m);
        check(&m, &cg)
    }

    #[test]
    fn interval_arithmetic_basics() {
        let a = Interval::point(4.0).hull(&Interval::point(-2.0));
        assert_eq!(a, Interval { lo: -2.0, hi: 4.0 });
        assert!(a.contains_zero());
        let sq = Interval::apply(BinOp::Mul, a, a);
        assert_eq!(sq, Interval { lo: -8.0, hi: 16.0 });
        // Division by an interval containing zero is unbounded.
        assert!(!Interval::apply(BinOp::Div, Interval::point(1.0), a).is_bounded());
        // Division by a safe interval is bounded.
        let safe = Interval { lo: 1.0, hi: 2.0 };
        assert_eq!(
            Interval::apply(BinOp::Div, Interval::point(4.0), safe),
            Interval { lo: 2.0, hi: 4.0 }
        );
    }

    #[test]
    fn zero_divisor_under_full_range_is_flagged() {
        // Default (index 1) maps to divisor 1; index 0 maps to divisor 0.
        let diags = run("tradeoff step { values = [0, 1, 2]; default_index = 1; }
             state_dependence d { compute = f; }
             fn f(x) { return x / tradeoff step; }");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].lint, LintKind::IntervalDivergence);
        assert!(diags[0].message.contains("zero divisor"));
        let loc = diags[0].location.as_ref().unwrap();
        assert_eq!(loc.function, "f__aux_d");
    }

    #[test]
    fn safe_range_is_clean() {
        let diags = run("tradeoff step { values = [1, 2, 4]; default_index = 0; }
             state_dependence d { compute = f; }
             fn f(x) { return x / tradeoff step; }");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn divisor_zero_in_both_runs_is_not_divergence() {
        // The *parameter* may be zero in both runs — not tradeoff-caused.
        let diags = run("tradeoff step { values = [1, 2]; default_index = 0; }
             state_dependence d { compute = f; }
             fn f(x) { return (tradeoff step) / x; }");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unbounded_return_divergence_is_flagged() {
        // 100 / (value - 3): default value 1 -> -50; but value 3 in range
        // makes the divisor interval contain zero -> unbounded.
        let diags = run("tradeoff v { values = [1, 3]; default_index = 0; }
             state_dependence d { compute = f; }
             fn f(x) { return 100 / ((tradeoff v) - 3); }");
        assert!(
            diags.iter().any(|d| d.message.contains("zero divisor")),
            "{diags:?}"
        );
    }

    #[test]
    fn loops_terminate_via_widening() {
        // A loop accumulating a tradeoff-scaled value must converge.
        let diags = run(
            "tradeoff k { values = [1, 2]; default_index = 0; }
             state_dependence d { compute = f; }
             fn f(x) { let s = 0; let i = 0; while (i < x) { s = s + tradeoff k; i = i + 1; } return s; }",
        );
        // Unbounded in both runs (loop count depends on x): no divergence.
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn computed_rows_resolve_via_get_value() {
        // value(i) = i -> index 0 gives divisor 0 under full range.
        let diags = run(
            "tradeoff step { max_index = 4; default_index = 2; value(i) = i; }
             state_dependence d { compute = f; }
             fn f(x) { return x / tradeoff step; }",
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
    }
}
