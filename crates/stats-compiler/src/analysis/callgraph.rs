//! Call graph construction and state-escape analysis.
//!
//! The call graph records, for every function, which module functions it
//! may transfer control to: direct `Call` targets plus — because a
//! function tradeoff dispatches to any of its candidates at configuration
//! time — every candidate of every tradeoff the function references
//! through `CallTradeoff` or a `cast .. to tradeoff<f>` placeholder.
//!
//! On top of reachability the module computes *state escape*: the set of
//! cross-invocation state variables a function's whole reachable set may
//! read or write. A state variable "escapes" a dependence's clone set when
//! any transitively callable function touches it; this is the input to the
//! race check ([`super::races`]) and the purity check ([`super::purity`]).

use std::collections::{HashMap, HashSet};

use crate::ir::{Inst, Module, TyRef};
use crate::metadata::TradeoffValues;

/// A module's call graph, including function-tradeoff candidate edges.
#[derive(Debug)]
pub struct CallGraph {
    edges: HashMap<String, Vec<String>>,
}

impl CallGraph {
    /// Build the call graph of `module`. Only edges to functions defined in
    /// the module are recorded (intrinsics have no bodies to analyze).
    pub fn build(module: &Module) -> Self {
        let mut edges: HashMap<String, Vec<String>> = HashMap::new();
        for f in module.functions() {
            let mut out: Vec<String> = Vec::new();
            let mut add = |name: &str| {
                if module.function(name).is_some() && !out.iter().any(|c| c == name) {
                    out.push(name.to_string());
                }
            };
            for inst in f.insts() {
                match inst {
                    Inst::Call { callee, .. } => add(callee),
                    Inst::CallTradeoff { tradeoff, .. }
                    | Inst::Cast {
                        to: TyRef::Tradeoff(tradeoff),
                        ..
                    } => {
                        if let Some(row) = module.metadata.tradeoff(tradeoff) {
                            if let TradeoffValues::Functions(candidates) = &row.values {
                                for c in candidates {
                                    add(c);
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
            edges.insert(f.name.clone(), out);
        }
        CallGraph { edges }
    }

    /// Direct callees of `name` (empty for unknown functions).
    pub fn callees(&self, name: &str) -> &[String] {
        self.edges.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All functions reachable from `root`, including `root` itself (when
    /// it is defined in the module).
    pub fn reachable(&self, root: &str) -> HashSet<String> {
        let mut seen = HashSet::new();
        if !self.edges.contains_key(root) {
            return seen;
        }
        let mut stack = vec![root.to_string()];
        while let Some(name) = stack.pop() {
            if !seen.insert(name.clone()) {
                continue;
            }
            for callee in self.callees(&name) {
                if !seen.contains(callee) {
                    stack.push(callee.clone());
                }
            }
        }
        seen
    }

    /// All functions reachable from any of `roots`.
    pub fn reachable_from_all<'a>(
        &self,
        roots: impl IntoIterator<Item = &'a str>,
    ) -> HashSet<String> {
        let mut seen = HashSet::new();
        for root in roots {
            seen.extend(self.reachable(root));
        }
        seen
    }
}

/// The state variables that escape a root function: everything its whole
/// reachable set may read or write across invocations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateEscape {
    /// State variables some reachable function loads.
    pub reads: HashSet<String>,
    /// State variables some reachable function stores.
    pub writes: HashSet<String>,
}

impl StateEscape {
    /// Variables both read and written somewhere in the reachable set —
    /// candidates for cross-invocation carried state.
    pub fn read_write(&self) -> HashSet<String> {
        self.reads.intersection(&self.writes).cloned().collect()
    }
}

/// Compute the state escaping `root` through `cg` over `module`.
pub fn state_escape(module: &Module, cg: &CallGraph, root: &str) -> StateEscape {
    let mut esc = StateEscape::default();
    for name in cg.reachable(root) {
        if let Some(f) = module.function(&name) {
            let (reads, writes) = f.state_accesses();
            esc.reads.extend(reads);
            esc.writes.extend(writes);
        }
    }
    esc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::compile;

    #[test]
    fn direct_and_tradeoff_edges() {
        let m = compile(
            "tradeoff impl { functions = [fast, slow]; default_index = 0; }
             fn fast(x) { return x; }
             fn slow(x) { return x * 2; }
             fn helper(x) { return x + 1; }
             fn top(x) { return helper(choose impl(x)); }",
        )
        .unwrap()
        .module;
        let cg = CallGraph::build(&m);
        let mut callees = cg.callees("top").to_vec();
        callees.sort();
        assert_eq!(callees, ["fast", "helper", "slow"]);
        let reach = cg.reachable("top");
        assert!(reach.contains("top") && reach.contains("fast") && reach.contains("slow"));
        assert!(cg.reachable("helper").len() == 1);
    }

    #[test]
    fn escape_is_transitive() {
        let m = compile(
            "state acc = 0;
             state other = 1;
             fn leaf(x) { acc = acc + x; return acc; }
             fn mid(x) { return leaf(x); }
             fn top(x) { return mid(x) + other; }",
        )
        .unwrap()
        .module;
        let cg = CallGraph::build(&m);
        let esc = state_escape(&m, &cg, "top");
        assert!(esc.reads.contains("acc") && esc.reads.contains("other"));
        assert_eq!(esc.writes, ["acc".to_string()].into_iter().collect());
        assert_eq!(esc.read_write(), ["acc".to_string()].into_iter().collect());
        // The leaf alone never touches `other`.
        let leaf = state_escape(&m, &cg, "leaf");
        assert!(!leaf.reads.contains("other"));
    }

    #[test]
    fn unknown_root_is_empty() {
        let m = compile("fn f(x) { return x; }").unwrap().module;
        let cg = CallGraph::build(&m);
        assert!(cg.reachable("ghost").is_empty());
        assert_eq!(state_escape(&m, &cg, "ghost"), StateEscape::default());
    }
}
