//! Dead-code lints: unused tradeoffs and unreachable functions.
//!
//! - **Unused tradeoff**: a source tradeoff row (not a middle-end clone)
//!   that no instruction in the module references. It contributes nothing
//!   but still enlarges every dependence's configuration space.
//! - **Unreachable function**: when the program defines state dependences,
//!   the analysis roots are the dependence entry points (compute and aux
//!   functions), `getValue` functions of referenced tradeoffs, and
//!   function-tradeoff candidates. A defined function reachable from none
//!   of them can never execute. Programs without dependences are skipped —
//!   they have no well-defined entry points (any function may be the
//!   driver's entry).

use std::collections::HashSet;

use crate::ir::Module;
use crate::metadata::TradeoffValues;

use super::callgraph::CallGraph;
use super::{Diagnostic, LintKind, Severity};

/// Report source tradeoff rows never referenced by any instruction.
pub fn unused_tradeoffs(module: &Module) -> Vec<Diagnostic> {
    let mut referenced: HashSet<String> = HashSet::new();
    for f in module.functions() {
        referenced.extend(f.tradeoff_refs());
    }
    module
        .metadata
        .tradeoffs
        .iter()
        .filter(|row| row.cloned_from.is_none() && !referenced.contains(&row.name))
        .map(|row| Diagnostic {
            lint: LintKind::UnusedTradeoff,
            severity: Severity::Warning,
            message: format!(
                "tradeoff `{}` is declared but never referenced; it only \
                 enlarges the configuration space",
                row.name
            ),
            location: None,
        })
        .collect()
}

/// Report functions unreachable from every dependence entry point. Empty
/// when the module declares no state dependences.
pub fn unreachable_functions(module: &Module, cg: &CallGraph) -> Vec<Diagnostic> {
    if module.metadata.state_deps.is_empty() {
        return Vec::new();
    }
    let mut roots: Vec<&str> = Vec::new();
    for dep in &module.metadata.state_deps {
        roots.push(&dep.compute_fn);
        if let Some(aux) = &dep.aux_fn {
            roots.push(aux);
        }
    }
    // Tradeoff machinery is reachable at configuration time: getValue
    // functions run in the dynamic-compilation step, and every candidate
    // of a referenced function tradeoff may be selected.
    let referenced: HashSet<String> = module
        .functions()
        .iter()
        .flat_map(|f| f.tradeoff_refs())
        .collect();
    for row in &module.metadata.tradeoffs {
        if !referenced.contains(&row.name) {
            continue;
        }
        match &row.values {
            TradeoffValues::Computed { get_value_fn } => roots.push(get_value_fn),
            TradeoffValues::Functions(fs) => roots.extend(fs.iter().map(String::as_str)),
            _ => {}
        }
    }
    let live = cg.reachable_from_all(roots.iter().copied());
    module
        .functions()
        .iter()
        .filter(|f| !live.contains(&f.name))
        .map(|f| Diagnostic {
            lint: LintKind::UnreachableFunction,
            severity: Severity::Warning,
            message: format!(
                "function `{}` is unreachable from every dependence entry \
                 point and tradeoff candidate",
                f.name
            ),
            location: None,
        })
        .collect()
}

/// Run both dead-code lints.
pub fn check(module: &Module, cg: &CallGraph) -> Vec<Diagnostic> {
    let mut diags = unused_tradeoffs(module);
    diags.extend(unreachable_functions(module, cg));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::compile;

    fn run(src: &str) -> Vec<Diagnostic> {
        let m = compile(src).unwrap().module;
        let cg = CallGraph::build(&m);
        check(&m, &cg)
    }

    #[test]
    fn unused_tradeoff_is_flagged() {
        let diags = run("tradeoff dead { values = [1, 2]; default_index = 0; }
             state_dependence d { compute = f; }
             fn f(x) { return x; }");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].lint, LintKind::UnusedTradeoff);
        assert!(diags[0].message.contains("`dead`"));
    }

    #[test]
    fn unreachable_function_is_flagged() {
        let diags = run("state_dependence d { compute = f; }
             fn f(x) { return x; }
             fn orphan(x) { return x * 2; }");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].lint, LintKind::UnreachableFunction);
        assert!(diags[0].message.contains("`orphan`"));
    }

    #[test]
    fn tradeoff_machinery_counts_as_reachable() {
        let diags = run(
            "tradeoff impl { functions = [fast, slow]; default_index = 0; }
             tradeoff k { max_index = 3; default_index = 0; value(i) = i * 2; }
             state_dependence d { compute = f; }
             fn fast(x) { return x; }
             fn slow(x) { return x * 2; }
             fn f(x) { return choose impl(x) + tradeoff k; }",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn programs_without_dependences_are_not_linted_for_reachability() {
        let diags = run("fn lonely(x) { return x; }");
        assert!(diags.is_empty(), "{diags:?}");
    }
}
