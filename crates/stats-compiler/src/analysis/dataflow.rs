//! A reusable forward-dataflow framework over the block IR.
//!
//! The IR's registers are mutable slots (not SSA), so classic iterative
//! dataflow applies directly: facts flow block to block along `Jmp`/`Br`
//! edges, joining at merge points, until a fixed point. Analyses implement
//! [`ForwardAnalysis`] (a transfer function over instructions) on a fact
//! type implementing [`Lattice`] (a join); [`run`] drives the worklist and
//! returns the fact holding at each block's entry.
//!
//! The framework is deliberately small: the speculation-safety checks in
//! this module tree ([`super::interval`] in particular) need exactly
//! forward flow with widening, and nothing here is specific to any one of
//! them.

use crate::ir::{Block, Function, Inst};

/// A join-semilattice of dataflow facts.
pub trait Lattice: Clone {
    /// Join `other` into `self`; return whether `self` changed. Joins must
    /// be monotone (repeated joining reaches a fixed point).
    fn join(&mut self, other: &Self) -> bool;
}

/// A forward dataflow analysis: a boundary fact for the entry block and a
/// transfer function applied instruction by instruction.
pub trait ForwardAnalysis {
    /// The fact domain.
    type Fact: Lattice;

    /// The fact holding on entry to the function (block 0).
    fn boundary(&self, f: &Function) -> Self::Fact;

    /// Apply one instruction's effect to the fact. `widen` is true when the
    /// containing block has been visited enough times that the analysis
    /// should accelerate convergence (loop heads).
    fn transfer(&self, f: &Function, inst: &Inst, fact: &mut Self::Fact, widen: bool);
}

/// Control-flow successors of a block (from its terminator).
pub fn successors(block: &Block) -> Vec<usize> {
    match block.insts.last() {
        Some(Inst::Jmp { target }) => vec![target.0],
        Some(Inst::Br { then_b, else_b, .. }) => vec![then_b.0, else_b.0],
        _ => Vec::new(),
    }
}

/// How many times a block may be re-visited before `transfer` is asked to
/// widen. Small: interval bounds only need a couple of refinement rounds
/// before acceleration.
const WIDEN_AFTER: usize = 3;

/// Run `analysis` over `f` to a fixed point. Returns the fact holding at
/// each block's *entry*; `None` for blocks never reached from the entry
/// block. To inspect state mid-block, re-apply `transfer` from the entry
/// fact (see [`super::interval`] for an example).
pub fn run<A: ForwardAnalysis>(f: &Function, analysis: &A) -> Vec<Option<A::Fact>> {
    let n = f.blocks.len();
    let mut entry_facts: Vec<Option<A::Fact>> = vec![None; n];
    let mut visits = vec![0usize; n];
    if n == 0 {
        return entry_facts;
    }
    entry_facts[0] = Some(analysis.boundary(f));
    let mut worklist = vec![0usize];
    while let Some(b) = worklist.pop() {
        visits[b] += 1;
        let widen = visits[b] > WIDEN_AFTER;
        let mut fact = entry_facts[b].clone().expect("reached block has a fact");
        for inst in &f.blocks[b].insts {
            analysis.transfer(f, inst, &mut fact, widen);
        }
        for succ in successors(&f.blocks[b]) {
            if succ >= n {
                continue; // malformed target; verify reports it elsewhere
            }
            let changed = match &mut entry_facts[succ] {
                Some(existing) => existing.join(&fact),
                slot @ None => {
                    *slot = Some(fact.clone());
                    true
                }
            };
            if changed && !worklist.contains(&succ) {
                worklist.push(succ);
            }
        }
    }
    entry_facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_fn;
    use crate::parser::parse;

    /// Toy analysis: may a register hold a value derived from a parameter?
    /// (Taint-style bit set, one bool per register.)
    #[derive(Clone, PartialEq)]
    struct Taint(Vec<bool>);

    impl Lattice for Taint {
        fn join(&mut self, other: &Self) -> bool {
            let mut changed = false;
            for (a, b) in self.0.iter_mut().zip(&other.0) {
                if *b && !*a {
                    *a = true;
                    changed = true;
                }
            }
            changed
        }
    }

    struct TaintAnalysis;

    impl ForwardAnalysis for TaintAnalysis {
        type Fact = Taint;

        fn boundary(&self, f: &Function) -> Taint {
            let mut bits = vec![false; f.next_reg as usize];
            for p in &f.params {
                bits[p.0 as usize] = true;
            }
            Taint(bits)
        }

        fn transfer(&self, _f: &Function, inst: &Inst, fact: &mut Taint, _widen: bool) {
            use crate::ir::Operand;
            let tainted = |fact: &Taint, op: &Operand| match op {
                Operand::Reg(r) => fact.0[r.0 as usize],
                _ => false,
            };
            match inst {
                Inst::Const { dst, value } => fact.0[dst.0 as usize] = tainted(fact, value),
                Inst::Bin { dst, lhs, rhs, .. } => {
                    fact.0[dst.0 as usize] = tainted(fact, lhs) || tainted(fact, rhs)
                }
                Inst::Cast { dst, src, .. } => fact.0[dst.0 as usize] = tainted(fact, src),
                _ => {}
            }
        }
    }

    fn lowered(src: &str) -> Function {
        lower_fn(&parse(src).unwrap().functions[0]).unwrap()
    }

    #[test]
    fn taint_flows_through_loop() {
        let f = lowered(
            "fn f(a) { let s = 0; let i = 0; while (i < 10) { s = s + a; i = i + 1; } return s; }",
        );
        let facts = run(&f, &TaintAnalysis);
        // Every block is reachable and has a fact.
        assert!(facts.iter().all(Option::is_some));
        // In the exit block, `s` (joined over the loop) is tainted by `a`.
        // Find the Ret and check its operand's taint at block entry,
        // re-applying transfer through the block.
        let exit = facts.len() - 1;
        let mut fact = facts[exit].clone().unwrap();
        for inst in &f.blocks[exit].insts {
            if let Inst::Ret {
                value: Some(crate::ir::Operand::Reg(r)),
            } = inst
            {
                assert!(fact.0[r.0 as usize], "return value should be tainted");
            }
            TaintAnalysis.transfer(&f, inst, &mut fact, false);
        }
    }

    #[test]
    fn untainted_constant_stays_clean() {
        let f = lowered("fn f(a) { let s = 7; return s; }");
        let facts = run(&f, &TaintAnalysis);
        let fact = facts[0].clone().unwrap();
        // Initially only the parameter is tainted.
        assert!(fact.0[f.params[0].0 as usize]);
        assert_eq!(fact.0.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn unreachable_blocks_have_no_fact() {
        // `if (1) return; else return;` lowers to a diamond whose join block
        // is unreachable only if branches end in Ret — construct directly.
        use crate::ir::{BlockId, Inst, Operand};
        let mut f = Function::new("g", 0);
        f.push(
            BlockId(0),
            Inst::Ret {
                value: Some(Operand::ImmInt(1)),
            },
        );
        let dead = f.new_block();
        f.push(dead, Inst::Ret { value: None });
        let facts = run(&f, &TaintAnalysis);
        assert!(facts[0].is_some());
        assert!(facts[dead.0].is_none());
    }
}
