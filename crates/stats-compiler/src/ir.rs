//! The STATS intermediate representation.
//!
//! A compact, block-based register IR. Two properties matter for the STATS
//! pipeline and are explicit in the instruction set:
//!
//! - **tradeoff references are first-class instructions**
//!   ([`Inst::TradeoffRef`], [`Inst::CallTradeoff`], and the
//!   [`TyRef::Tradeoff`] type placeholder), so compiler passes can find,
//!   clone, and substitute them mechanically;
//! - **metadata rides with the module** ([`crate::metadata`]), mirroring the
//!   paper's CIL-inspired design: state dependences and tradeoffs are rows
//!   in module-level tables that link to IR functions.

use std::collections::HashMap;
use std::fmt;

/// A scalar IR type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 64-bit integer.
    I64,
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::I64 => write!(f, "i64"),
            Ty::F32 => write!(f, "f32"),
            Ty::F64 => write!(f, "f64"),
        }
    }
}

/// A type reference: concrete, or a placeholder resolved by a type tradeoff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TyRef {
    /// A concrete type.
    Concrete(Ty),
    /// The type selected by the named tradeoff (back-end substitutes).
    Tradeoff(String),
}

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// A register.
    Reg(Reg),
    /// An integer immediate.
    ImmInt(i64),
    /// A float immediate.
    ImmFloat(f64),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

/// A binary ALU/compare operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division on `i64` values).
    Div,
    /// Remainder.
    Rem,
    /// Less-than (produces 0/1).
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
}

/// A basic-block id within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockId(pub usize);

/// An IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `dst = imm`
    Const {
        /// Destination register.
        dst: Reg,
        /// The immediate.
        value: Operand,
    },
    /// `dst = op lhs, rhs`
    Bin {
        /// The operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = cast src to ty` — for a [`TyRef::Tradeoff`], the back-end
    /// substitutes the configured type before execution; quantization to
    /// `f32` models the precision loss of a narrower variable type.
    Cast {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
        /// Target type (possibly a tradeoff placeholder).
        to: TyRef,
    },
    /// `dst = call callee(args)` — direct call.
    Call {
        /// Destination register (None for calls used for effect).
        dst: Option<Reg>,
        /// Callee function name.
        callee: String,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// `dst = call <tradeoff>(args)` — the callee is chosen by a function
    /// tradeoff; the back-end replaces this with a direct [`Inst::Call`].
    CallTradeoff {
        /// Destination register.
        dst: Option<Reg>,
        /// The function tradeoff's name.
        tradeoff: String,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// `dst = tradeoff <name>` — a constant-tradeoff placeholder (the
    /// `T_42(42)` call of paper Figure 11); the back-end replaces it with
    /// [`Inst::Const`].
    TradeoffRef {
        /// Destination register.
        dst: Reg,
        /// The tradeoff's name.
        tradeoff: String,
    },
    /// `dst = load_state <name>` — read a declared cross-invocation state
    /// variable (the paper's `State` that `computeOutput` carries between
    /// invocations). State variables live in the module-level state table
    /// and persist across interpreter calls.
    LoadState {
        /// Destination register.
        dst: Reg,
        /// The state variable's name.
        state: String,
    },
    /// `store_state <name>, src` — write a cross-invocation state variable.
    StoreState {
        /// The state variable's name.
        state: String,
        /// The value written.
        src: Operand,
    },
    /// Unconditional jump.
    Jmp {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch (`cond != 0` takes `then_b`).
    Br {
        /// Condition operand.
        cond: Operand,
        /// Block on true.
        then_b: BlockId,
        /// Block on false.
        else_b: BlockId,
    },
    /// Return.
    Ret {
        /// Returned operand, if any.
        value: Option<Operand>,
    },
}

/// A basic block: straight-line instructions ending in a terminator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Block {
    /// Instructions, the last of which must be `Jmp`/`Br`/`Ret`.
    pub insts: Vec<Inst>,
}

/// An IR function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (module-unique).
    pub name: String,
    /// Parameter registers, in call order.
    pub params: Vec<Reg>,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Next unallocated register number (for cloning/rewriting passes).
    pub next_reg: u32,
}

impl Function {
    /// Create an empty function with `params` parameters.
    pub fn new(name: impl Into<String>, params: usize) -> Self {
        Function {
            name: name.into(),
            params: (0..params as u32).map(Reg).collect(),
            blocks: vec![Block::default()],
            next_reg: params as u32,
        }
    }

    /// Allocate a fresh register.
    pub fn fresh_reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Append a new empty block, returning its id.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        BlockId(self.blocks.len() - 1)
    }

    /// Append an instruction to a block.
    pub fn push(&mut self, block: BlockId, inst: Inst) {
        self.blocks[block.0].insts.push(inst);
    }

    /// Total instruction count.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Iterate over all instructions.
    pub fn insts(&self) -> impl Iterator<Item = &Inst> {
        self.blocks.iter().flat_map(|b| b.insts.iter())
    }

    /// Iterate mutably over all instructions.
    pub fn insts_mut(&mut self) -> impl Iterator<Item = &mut Inst> {
        self.blocks.iter_mut().flat_map(|b| b.insts.iter_mut())
    }

    /// Names of directly called functions (both direct calls and the
    /// candidates of function tradeoffs are *not* included here — only
    /// static callees, which is what the call-graph analysis needs).
    pub fn callees(&self) -> Vec<String> {
        let mut out = Vec::new();
        for inst in self.insts() {
            if let Inst::Call { callee, .. } = inst {
                if !out.contains(callee) {
                    out.push(callee.clone());
                }
            }
        }
        out
    }

    /// Names of tradeoffs referenced by this function (constant refs,
    /// function-tradeoff calls, and type-tradeoff casts).
    pub fn tradeoff_refs(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut add = |name: &String| {
            if !out.contains(name) {
                out.push(name.clone());
            }
        };
        for inst in self.insts() {
            match inst {
                Inst::TradeoffRef { tradeoff, .. } => add(tradeoff),
                Inst::CallTradeoff { tradeoff, .. } => add(tradeoff),
                Inst::Cast {
                    to: TyRef::Tradeoff(t),
                    ..
                } => add(t),
                _ => {}
            }
        }
        out
    }

    /// Names of state variables this function reads and writes *directly*
    /// (not through callees): `(reads, writes)`, each deduplicated in first
    /// occurrence order. Transitive access sets are the call-graph
    /// analysis's job ([`crate::analysis`]).
    pub fn state_accesses(&self) -> (Vec<String>, Vec<String>) {
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        for inst in self.insts() {
            match inst {
                Inst::LoadState { state, .. } if !reads.contains(state) => {
                    reads.push(state.clone());
                }
                Inst::StoreState { state, .. } if !writes.contains(state) => {
                    writes.push(state.clone());
                }
                _ => {}
            }
        }
        (reads, writes)
    }
}

/// A module: functions plus the metadata tables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    functions: Vec<Function>,
    by_name: HashMap<String, usize>,
    /// State-dependence and tradeoff tables (the paper's CIL-style metadata).
    pub metadata: crate::metadata::Metadata,
}

impl Module {
    /// An empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a function. Replaces any function with the same name.
    pub fn add_function(&mut self, f: Function) {
        if let Some(&i) = self.by_name.get(&f.name) {
            self.functions[i] = f;
        } else {
            self.by_name.insert(f.name.clone(), self.functions.len());
            self.functions.push(f);
        }
    }

    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.by_name.get(name).map(|&i| &self.functions[i])
    }

    /// Index of a function by name, valid into [`Module::functions`].
    ///
    /// Indices are stable (functions are never removed), which lets
    /// execution engines resolve call targets to plain indices once
    /// instead of hashing names per call.
    pub fn function_index(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Look up a function mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        let i = *self.by_name.get(name)?;
        Some(&mut self.functions[i])
    }

    /// All functions, in insertion order.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// All functions, mutably.
    pub fn functions_mut(&mut self) -> impl Iterator<Item = &mut Function> {
        self.functions.iter_mut()
    }

    /// Total instruction count across functions (the "binary size" proxy of
    /// Table 1).
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(Function::inst_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_fn() -> Function {
        // f(x) = 2*x + tradeoff k
        let mut f = Function::new("f", 1);
        let x = f.params[0];
        let two_x = f.fresh_reg();
        let k = f.fresh_reg();
        let sum = f.fresh_reg();
        let entry = BlockId(0);
        f.push(
            entry,
            Inst::Bin {
                op: BinOp::Mul,
                dst: two_x,
                lhs: x.into(),
                rhs: Operand::ImmInt(2),
            },
        );
        f.push(
            entry,
            Inst::TradeoffRef {
                dst: k,
                tradeoff: "k".into(),
            },
        );
        f.push(
            entry,
            Inst::Bin {
                op: BinOp::Add,
                dst: sum,
                lhs: two_x.into(),
                rhs: k.into(),
            },
        );
        f.push(
            entry,
            Inst::Ret {
                value: Some(sum.into()),
            },
        );
        f
    }

    #[test]
    fn function_accounting() {
        let f = linear_fn();
        assert_eq!(f.inst_count(), 4);
        assert_eq!(f.tradeoff_refs(), vec!["k".to_string()]);
        assert!(f.callees().is_empty());
    }

    #[test]
    fn module_add_and_lookup() {
        let mut m = Module::new();
        m.add_function(linear_fn());
        assert!(m.function("f").is_some());
        assert!(m.function("g").is_none());
        assert_eq!(m.inst_count(), 4);
    }

    #[test]
    fn module_replace_same_name() {
        let mut m = Module::new();
        m.add_function(linear_fn());
        m.add_function(Function::new("f", 0));
        assert_eq!(m.functions().len(), 1);
        assert_eq!(m.function("f").unwrap().params.len(), 0);
    }

    #[test]
    fn callees_deduplicated() {
        let mut f = Function::new("g", 0);
        let e = BlockId(0);
        for _ in 0..3 {
            f.push(
                e,
                Inst::Call {
                    dst: None,
                    callee: "h".into(),
                    args: vec![],
                },
            );
        }
        f.push(e, Inst::Ret { value: None });
        assert_eq!(f.callees(), vec!["h".to_string()]);
    }
}
