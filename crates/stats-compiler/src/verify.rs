//! Module-level IR verification.
//!
//! [`lower::validate`](crate::lower::validate) checks one function's block
//! structure; this pass checks whole-module invariants the pipeline relies
//! on between phases:
//!
//! - every direct call targets a defined function or a known host
//!   intrinsic, with matching arity for defined functions;
//! - metadata referential integrity: each state dependence's `compute_fn`
//!   (and `aux_fn`, once the middle-end ran) exists; every name in
//!   `aux_tradeoffs` has a tradeoff row; every tradeoff row's
//!   `cloned_from`/`owner_dep` references exist; computed rows point at a
//!   defined `getValue` function;
//! - every tradeoff referenced by instructions has a metadata row (before
//!   the back-end) — after instantiation, [`verify_instantiated`] instead
//!   requires that *no* placeholder survived.

use std::collections::HashSet;

use crate::ir::{Function, Inst, Module};

/// Host intrinsics the interpreter provides (calls to these are legal
/// without a module definition).
pub const INTRINSICS: &[&str] = &["sqrt", "abs", "min", "max", "exp", "ln", "pow", "floor"];

/// A precise code location: a function plus a flat instruction index (the
/// position in [`Function::insts`] iteration order). Shared by verification
/// errors and the [`crate::analysis`] lint diagnostics so every finding can
/// point at the offending instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Location {
    /// The containing function's name.
    pub function: String,
    /// Flat instruction index within the function (0-based, in
    /// [`Function::insts`] order).
    pub inst: usize,
}

impl Location {
    /// Build a location.
    pub fn new(function: impl Into<String>, inst: usize) -> Self {
        Location {
            function: function.into(),
            inst,
        }
    }
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.function, self.inst)
    }
}

/// A verification failure, with the offending item named and (for
/// per-instruction failures) located.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    /// Human-readable description.
    pub message: String,
    /// The offending instruction, when the failure is inside a function
    /// body (metadata-table failures carry no location).
    pub location: Option<Location>,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.location {
            Some(loc) => write!(f, "verify: {} (at {loc})", self.message),
            None => write!(f, "verify: {}", self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

fn err(message: String) -> VerifyError {
    VerifyError {
        message,
        location: None,
    }
}

fn err_at(message: String, location: Location) -> VerifyError {
    VerifyError {
        message,
        location: Some(location),
    }
}

/// Per-instruction checks: calls resolve with matching arity, tradeoff
/// references have metadata rows, state accesses name declared variables.
fn check_insts(
    module: &Module,
    f: &Function,
    tradeoff_names: &HashSet<&str>,
    state_names: &HashSet<&str>,
) -> Result<(), VerifyError> {
    for (i, inst) in f.insts().enumerate() {
        let at = || Location::new(&f.name, i);
        match inst {
            Inst::Call { callee, args, .. } => {
                if INTRINSICS.contains(&callee.as_str()) {
                    continue;
                }
                match module.function(callee) {
                    None => {
                        return Err(err_at(
                            format!("`{}` calls undefined function `{callee}`", f.name),
                            at(),
                        ))
                    }
                    Some(target) if target.params.len() != args.len() => {
                        return Err(err_at(
                            format!(
                                "`{}` calls `{callee}` with {} arguments; it takes {}",
                                f.name,
                                args.len(),
                                target.params.len()
                            ),
                            at(),
                        ))
                    }
                    Some(_) => {}
                }
            }
            Inst::TradeoffRef { tradeoff, .. } | Inst::CallTradeoff { tradeoff, .. }
                if !tradeoff_names.contains(tradeoff.as_str()) =>
            {
                return Err(err_at(
                    format!(
                        "`{}` references tradeoff `{tradeoff}` with no metadata row",
                        f.name
                    ),
                    at(),
                ));
            }
            Inst::Cast {
                to: crate::ir::TyRef::Tradeoff(t),
                ..
            } if !tradeoff_names.contains(t.as_str()) => {
                return Err(err_at(
                    format!(
                        "`{}` references tradeoff `{t}` with no metadata row",
                        f.name
                    ),
                    at(),
                ));
            }
            Inst::LoadState { state, .. } | Inst::StoreState { state, .. }
                if !state_names.contains(state.as_str()) =>
            {
                return Err(err_at(
                    format!("`{}` accesses undeclared state variable `{state}`", f.name),
                    at(),
                ));
            }
            _ => {}
        }
    }
    Ok(())
}

/// Verify a module in its pre-instantiation state (front-end or middle-end
/// output): calls resolve and metadata is internally consistent.
pub fn verify(module: &Module) -> Result<(), VerifyError> {
    let tradeoff_names: HashSet<&str> = module
        .metadata
        .tradeoffs
        .iter()
        .map(|t| t.name.as_str())
        .collect();
    let state_names: HashSet<&str> = module
        .metadata
        .state_vars
        .iter()
        .map(|v| v.name.as_str())
        .collect();

    for f in module.functions() {
        crate::lower::validate(f).map_err(|e| err(format!("{}: {e}", f.name)))?;
        check_insts(module, f, &tradeoff_names, &state_names)?;
    }

    for row in &module.metadata.tradeoffs {
        if row.default_index < 0 || row.default_index >= row.max_index {
            return Err(err(format!(
                "tradeoff `{}`: default index {} outside 0..{}",
                row.name, row.default_index, row.max_index
            )));
        }
        if let crate::metadata::TradeoffValues::Computed { get_value_fn } = &row.values {
            if module.function(get_value_fn).is_none() {
                return Err(err(format!(
                    "tradeoff `{}`: getValue function `{get_value_fn}` missing",
                    row.name
                )));
            }
        }
        if let Some(orig) = &row.cloned_from {
            // The original row is deleted by the middle-end; only require
            // the owner dependence to exist.
            let _ = orig;
            match &row.owner_dep {
                Some(dep) if module.metadata.state_dep(dep).is_some() => {}
                Some(dep) => {
                    return Err(err(format!(
                        "tradeoff `{}` owned by unknown dependence `{dep}`",
                        row.name
                    )))
                }
                None => {
                    return Err(err(format!(
                        "cloned tradeoff `{}` has no owner dependence",
                        row.name
                    )))
                }
            }
        }
    }

    for dep in &module.metadata.state_deps {
        if module.function(&dep.compute_fn).is_none() {
            return Err(err(format!(
                "dependence `{}`: compute function `{}` missing",
                dep.name, dep.compute_fn
            )));
        }
        if let Some(aux) = &dep.aux_fn {
            if module.function(aux).is_none() {
                return Err(err(format!(
                    "dependence `{}`: auxiliary function `{aux}` missing",
                    dep.name
                )));
            }
        }
        for t in &dep.aux_tradeoffs {
            if !tradeoff_names.contains(t.as_str()) {
                return Err(err(format!(
                    "dependence `{}` lists unknown auxiliary tradeoff `{t}`",
                    dep.name
                )));
            }
        }
        for s in &dep.declared_state {
            if !state_names.contains(s.as_str()) {
                return Err(err(format!(
                    "dependence `{}` declares unknown state variable `{s}`",
                    dep.name
                )));
            }
        }
    }
    Ok(())
}

/// Verify a back-end output: everything [`verify`] checks, plus no
/// tradeoff placeholder of any kind survived instantiation.
pub fn verify_instantiated(module: &Module) -> Result<(), VerifyError> {
    verify(module)?;
    for f in module.functions() {
        let refs = f.tradeoff_refs();
        if !refs.is_empty() {
            return Err(err(format!(
                "`{}` still contains tradeoff placeholders after \
                 instantiation: {refs:?}",
                f.name
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{self, DepConfig};
    use crate::frontend::compile;
    use crate::midend;

    const SRC: &str = r#"
        tradeoff layers { max_index = 10; default_index = 4; value(i) = i + 1; }
        state_dependence d { compute = step; }
        fn helper(x) { return x * tradeoff layers; }
        fn step(v) { return helper(v) + sqrt(v); }
    "#;

    #[test]
    fn frontend_and_midend_outputs_verify() {
        let compiled = compile(SRC).unwrap();
        verify(&compiled.module).unwrap();
        let module = midend::run(compiled).unwrap();
        verify(&module).unwrap();
    }

    #[test]
    fn instantiated_output_verifies() {
        let module = midend::run(compile(SRC).unwrap()).unwrap();
        let cfg: DepConfig = [("d".to_string(), vec![3])].into_iter().collect();
        let binary = backend::instantiate(&module, &cfg).unwrap();
        verify_instantiated(&binary).unwrap();
    }

    #[test]
    fn pre_instantiation_module_fails_instantiated_check() {
        let module = midend::run(compile(SRC).unwrap()).unwrap();
        let e = verify_instantiated(&module).unwrap_err();
        assert!(e.message.contains("placeholders"));
    }

    #[test]
    fn undefined_call_detected() {
        use crate::ir::{BlockId, Function, Inst};
        let mut m = Module::new();
        let mut f = Function::new("f", 0);
        f.push(
            BlockId(0),
            Inst::Call {
                dst: None,
                callee: "ghost".into(),
                args: vec![],
            },
        );
        f.push(BlockId(0), Inst::Ret { value: None });
        m.add_function(f);
        let e = verify(&m).unwrap_err();
        assert!(e.message.contains("ghost"));
    }

    #[test]
    fn call_arity_detected() {
        use crate::ir::{BlockId, Function, Inst, Operand};
        let mut m = Module::new();
        m.add_function(Function::new("g", 2));
        // g has no terminator -> give it one.
        m.function_mut("g")
            .unwrap()
            .push(BlockId(0), Inst::Ret { value: None });
        let mut f = Function::new("f", 0);
        f.push(
            BlockId(0),
            Inst::Call {
                dst: None,
                callee: "g".into(),
                args: vec![Operand::ImmInt(1)],
            },
        );
        f.push(BlockId(0), Inst::Ret { value: None });
        m.add_function(f);
        let e = verify(&m).unwrap_err();
        assert!(e.message.contains("takes 2"));
    }

    #[test]
    fn dangling_metadata_detected() {
        use crate::metadata::StateDepMeta;
        let mut m = Module::new();
        m.metadata.state_deps.push(StateDepMeta {
            name: "d".into(),
            compute_fn: "missing".into(),
            aux_fn: None,
            aux_tradeoffs: vec![],
            declared_state: vec![],
        });
        let e = verify(&m).unwrap_err();
        assert!(e.message.contains("missing"));
    }

    #[test]
    fn orphan_tradeoff_reference_detected() {
        let mut m = Module::new();
        use crate::ir::{BlockId, Function, Inst};
        let mut f = Function::new("f", 0);
        let dst = f.fresh_reg();
        f.push(
            BlockId(0),
            Inst::TradeoffRef {
                dst,
                tradeoff: "nowhere".into(),
            },
        );
        f.push(
            BlockId(0),
            Inst::Ret {
                value: Some(dst.into()),
            },
        );
        m.add_function(f);
        let e = verify(&m).unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn intrinsics_need_no_definition() {
        let m = midend::run(compile("fn f(x) { return max(x, floor(x)); }").unwrap()).unwrap();
        verify(&m).unwrap();
    }
}
