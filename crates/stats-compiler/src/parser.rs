//! Recursive-descent parser for the `.stats` language.

use std::fmt;

use crate::ast::*;
use crate::lexer::{lex, LexError, Spanned, Token};

/// A parse error with a source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

/// Parse a complete `.stats` source file.
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            line: self.line(),
        })
    }

    fn expect(&mut self, want: Token) -> Result<(), ParseError> {
        if *self.peek() == want {
            self.next();
            Ok(())
        } else {
            self.err(format!("expected {want}, found {}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let line = self.line();
        match self.next() {
            Token::Ident(s) => Ok(s),
            other => Err(ParseError {
                message: format!("expected identifier, found {other}"),
                line,
            }),
        }
    }

    fn int(&mut self) -> Result<i64, ParseError> {
        let line = self.line();
        match self.next() {
            Token::Int(v) => Ok(v),
            other => Err(ParseError {
                message: format!("expected integer, found {other}"),
                line,
            }),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut program = Program::default();
        loop {
            match self.peek() {
                Token::Eof => break,
                Token::Tradeoff => program.tradeoffs.push(self.tradeoff_def()?),
                Token::StateDependence => program.state_deps.push(self.state_dep_def()?),
                Token::State => program.states.push(self.state_def()?),
                Token::Fn => program.functions.push(self.fn_def()?),
                other => return self.err(format!("expected a declaration, found {other}")),
            }
        }
        Ok(program)
    }

    fn tradeoff_def(&mut self) -> Result<TradeoffDef, ParseError> {
        self.expect(Token::Tradeoff)?;
        let name = self.ident()?;
        self.expect(Token::LBrace)?;
        let mut max_index: Option<i64> = None;
        let mut default_index: Option<i64> = None;
        let mut kind: Option<TradeoffKind> = None;
        while *self.peek() != Token::RBrace {
            let field = self.ident()?;
            match field.as_str() {
                "max_index" => {
                    self.expect(Token::Assign)?;
                    max_index = Some(self.int()?);
                    self.expect(Token::Semi)?;
                }
                "default_index" => {
                    self.expect(Token::Assign)?;
                    default_index = Some(self.int()?);
                    self.expect(Token::Semi)?;
                }
                "value" => {
                    // value(i) = expr;
                    self.expect(Token::LParen)?;
                    let param = self.ident()?;
                    self.expect(Token::RParen)?;
                    self.expect(Token::Assign)?;
                    let expr = self.expr()?;
                    self.expect(Token::Semi)?;
                    kind = Some(TradeoffKind::Computed { param, expr });
                }
                "functions" => {
                    self.expect(Token::Assign)?;
                    kind = Some(TradeoffKind::Functions(self.ident_list()?));
                    self.expect(Token::Semi)?;
                }
                "types" => {
                    self.expect(Token::Assign)?;
                    kind = Some(TradeoffKind::Types(self.ident_list()?));
                    self.expect(Token::Semi)?;
                }
                "values" => {
                    self.expect(Token::Assign)?;
                    kind = Some(TradeoffKind::Values(self.number_list()?));
                    self.expect(Token::Semi)?;
                }
                other => return self.err(format!("unknown tradeoff field `{other}`")),
            }
        }
        self.expect(Token::RBrace)?;
        let kind = match kind {
            Some(k) => k,
            None => return self.err(format!("tradeoff `{name}` has no value rule")),
        };
        let inferred = match &kind {
            TradeoffKind::Computed { .. } => None,
            TradeoffKind::Functions(v) => Some(v.len() as i64),
            TradeoffKind::Types(v) => Some(v.len() as i64),
            TradeoffKind::Values(v) => Some(v.len() as i64),
        };
        let max_index = match (max_index, inferred) {
            (Some(m), None) => m,
            (None, Some(i)) => i,
            (Some(m), Some(i)) if m == i => m,
            (Some(m), Some(i)) => {
                return self.err(format!(
                    "tradeoff `{name}`: max_index {m} disagrees with list length {i}"
                ))
            }
            (None, None) => {
                return self.err(format!("tradeoff `{name}` with value(i) needs max_index"))
            }
        };
        let default_index = match default_index {
            Some(d) if (0..max_index).contains(&d) => d,
            Some(d) => {
                return self.err(format!(
                    "tradeoff `{name}`: default_index {d} out of range 0..{max_index}"
                ))
            }
            None => return self.err(format!("tradeoff `{name}` needs default_index")),
        };
        Ok(TradeoffDef {
            name,
            max_index,
            default_index,
            kind,
        })
    }

    fn ident_list(&mut self) -> Result<Vec<String>, ParseError> {
        self.expect(Token::LBracket)?;
        let mut items = Vec::new();
        while *self.peek() != Token::RBracket {
            items.push(self.ident()?);
            if *self.peek() == Token::Comma {
                self.next();
            }
        }
        self.expect(Token::RBracket)?;
        if items.is_empty() {
            return self.err("empty list");
        }
        Ok(items)
    }

    fn number_list(&mut self) -> Result<Vec<f64>, ParseError> {
        self.expect(Token::LBracket)?;
        let mut items = Vec::new();
        while *self.peek() != Token::RBracket {
            let neg = if *self.peek() == Token::Minus {
                self.next();
                true
            } else {
                false
            };
            let v = match self.next() {
                Token::Int(v) => v as f64,
                Token::Float(v) => v,
                other => return self.err(format!("expected number, found {other}")),
            };
            items.push(if neg { -v } else { v });
            if *self.peek() == Token::Comma {
                self.next();
            }
        }
        self.expect(Token::RBracket)?;
        if items.is_empty() {
            return self.err("empty list");
        }
        Ok(items)
    }

    fn state_dep_def(&mut self) -> Result<StateDepDef, ParseError> {
        self.expect(Token::StateDependence)?;
        let name = self.ident()?;
        self.expect(Token::LBrace)?;
        let mut compute: Option<String> = None;
        let mut state: Vec<String> = Vec::new();
        while *self.peek() != Token::RBrace {
            // `state` lexes as a keyword, so the field name is either an
            // identifier or the `state` token itself.
            if *self.peek() == Token::State {
                self.next();
                self.expect(Token::Assign)?;
                state = self.ident_list()?;
                self.expect(Token::Semi)?;
                continue;
            }
            let field = self.ident()?;
            self.expect(Token::Assign)?;
            match field.as_str() {
                "compute" => compute = Some(self.ident()?),
                other => return self.err(format!("unknown state_dependence field `{other}`")),
            }
            self.expect(Token::Semi)?;
        }
        self.expect(Token::RBrace)?;
        match compute {
            Some(compute) => Ok(StateDepDef {
                name,
                compute,
                state,
            }),
            None => self.err(format!("state_dependence `{name}` needs compute")),
        }
    }

    /// `state NAME = <numeric literal>;` — a cross-invocation global.
    fn state_def(&mut self) -> Result<StateDef, ParseError> {
        self.expect(Token::State)?;
        let name = self.ident()?;
        self.expect(Token::Assign)?;
        let neg = if *self.peek() == Token::Minus {
            self.next();
            true
        } else {
            false
        };
        let line = self.line();
        let init = match self.next() {
            Token::Int(v) => Expr::Int(if neg { -v } else { v }),
            Token::Float(v) => Expr::Float(if neg { -v } else { v }),
            other => {
                return Err(ParseError {
                    message: format!(
                        "state `{name}` initializer must be a numeric literal, found {other}"
                    ),
                    line,
                })
            }
        };
        self.expect(Token::Semi)?;
        Ok(StateDef { name, init })
    }

    fn fn_def(&mut self) -> Result<FnDef, ParseError> {
        self.expect(Token::Fn)?;
        let name = self.ident()?;
        self.expect(Token::LParen)?;
        let mut params = Vec::new();
        while *self.peek() != Token::RParen {
            params.push(self.ident()?);
            if *self.peek() == Token::Comma {
                self.next();
            }
        }
        self.expect(Token::RParen)?;
        let body = self.block()?;
        Ok(FnDef { name, params, body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(Token::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != Token::RBrace {
            stmts.push(self.stmt()?);
        }
        self.expect(Token::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Token::Let => {
                self.next();
                let name = self.ident()?;
                self.expect(Token::Assign)?;
                let e = self.expr()?;
                self.expect(Token::Semi)?;
                Ok(Stmt::Let(name, e))
            }
            Token::Return => {
                self.next();
                let e = self.expr()?;
                self.expect(Token::Semi)?;
                Ok(Stmt::Return(e))
            }
            Token::If => {
                self.next();
                self.expect(Token::LParen)?;
                let cond = self.expr()?;
                self.expect(Token::RParen)?;
                let then_b = self.block()?;
                let else_b = if *self.peek() == Token::Else {
                    self.next();
                    if *self.peek() == Token::If {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then_b, else_b))
            }
            Token::While => {
                self.next();
                self.expect(Token::LParen)?;
                let cond = self.expr()?;
                self.expect(Token::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While(cond, body))
            }
            Token::For => {
                self.next();
                let var = self.ident()?;
                self.expect(Token::In)?;
                let lo = self.expr()?;
                self.expect(Token::DotDot)?;
                let hi = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::For(var, lo, hi, body))
            }
            Token::Ident(name) => {
                // Assignment or expression statement.
                if self.tokens[self.pos + 1].token == Token::Assign {
                    self.next();
                    self.next();
                    let e = self.expr()?;
                    self.expect(Token::Semi)?;
                    Ok(Stmt::Assign(name, e))
                } else {
                    let e = self.expr()?;
                    self.expect(Token::Semi)?;
                    Ok(Stmt::Expr(e))
                }
            }
            other => self.err(format!("expected a statement, found {other}")),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == Token::OrOr {
            self.next();
            let rhs = self.and_expr()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while *self.peek() == Token::AndAnd {
            self.next();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Token::Lt => BinOp::Lt,
            Token::Le => BinOp::Le,
            Token::Gt => BinOp::Gt,
            Token::Ge => BinOp::Ge,
            Token::EqEq => BinOp::Eq,
            Token::NotEq => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.next();
        let rhs = self.add_expr()?;
        Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                Token::Percent => BinOp::Rem,
                _ => break,
            };
            self.next();
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Token::Minus => {
                self.next();
                Ok(Expr::Neg(Box::new(self.unary_expr()?)))
            }
            Token::Not => {
                self.next();
                Ok(Expr::Not(Box::new(self.unary_expr()?)))
            }
            _ => self.primary_expr(),
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        match self.next() {
            Token::Int(v) => Ok(Expr::Int(v)),
            Token::Float(v) => Ok(Expr::Float(v)),
            Token::Tradeoff => {
                let name = self.ident()?;
                Ok(Expr::TradeoffRef(name))
            }
            Token::Choose => {
                let name = self.ident()?;
                self.expect(Token::LParen)?;
                let mut args = Vec::new();
                while *self.peek() != Token::RParen {
                    args.push(self.expr()?);
                    if *self.peek() == Token::Comma {
                        self.next();
                    }
                }
                self.expect(Token::RParen)?;
                Ok(Expr::TradeoffCall(name, args))
            }
            Token::Quantize => {
                let name = self.ident()?;
                self.expect(Token::LParen)?;
                let inner = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(Expr::TradeoffCast(name, Box::new(inner)))
            }
            Token::LParen => {
                let e = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                if *self.peek() == Token::LParen {
                    self.next();
                    let mut args = Vec::new();
                    while *self.peek() != Token::RParen {
                        args.push(self.expr()?);
                        if *self.peek() == Token::Comma {
                            self.next();
                        }
                    }
                    self.expect(Token::RParen)?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(ParseError {
                message: format!("expected an expression, found {other}"),
                line,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure10_tradeoff() {
        let p = parse(
            "tradeoff numAnnealingLayers { max_index = 10; default_index = 4; value(i) = i + 1; }",
        )
        .unwrap();
        assert_eq!(p.tradeoffs.len(), 1);
        let t = &p.tradeoffs[0];
        assert_eq!(t.name, "numAnnealingLayers");
        assert_eq!(t.max_index, 10);
        assert_eq!(t.default_index, 4);
        assert!(matches!(t.kind, TradeoffKind::Computed { .. }));
    }

    #[test]
    fn parses_list_tradeoffs() {
        let p = parse(
            "tradeoff sqrtVersion { functions = [sqrt_exact, sqrt_newton2]; default_index = 0; }
             tradeoff prec { types = [f64, f32]; default_index = 0; }
             tradeoff particles { values = [128, 256, 512]; default_index = 1; }",
        )
        .unwrap();
        assert_eq!(p.tradeoffs.len(), 3);
        assert_eq!(p.tradeoffs[0].max_index, 2);
        assert_eq!(p.tradeoffs[2].max_index, 3);
    }

    #[test]
    fn parses_function_with_control_flow() {
        let p = parse(
            "fn f(a, b) {
                let x = 0;
                while (x < a) {
                    x = x + 1;
                    if (x % 2 == 0) { b = b + x; } else { b = b - 1; }
                }
                return b;
            }",
        )
        .unwrap();
        let f = p.function("f").unwrap();
        assert_eq!(f.params, vec!["a", "b"]);
        assert_eq!(f.body.len(), 3);
    }

    #[test]
    fn parses_state_dependence() {
        let p = parse("state_dependence body { compute = step; }").unwrap();
        assert_eq!(p.state_deps[0].compute, "step");
    }

    #[test]
    fn tradeoff_ref_in_expression() {
        let p = parse("fn f() { return tradeoff layers + 1; }").unwrap();
        match &p.functions[0].body[0] {
            Stmt::Return(Expr::Bin(BinOp::Add, lhs, _)) => {
                assert_eq!(**lhs, Expr::TradeoffRef("layers".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence() {
        let p = parse("fn f() { return 1 + 2 * 3; }").unwrap();
        match &p.functions[0].body[0] {
            Stmt::Return(Expr::Bin(BinOp::Add, _, rhs)) => {
                assert!(matches!(**rhs, Expr::Bin(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn default_index_out_of_range_rejected() {
        let err = parse("tradeoff t { values = [1, 2]; default_index = 5; }").unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn missing_value_rule_rejected() {
        let err = parse("tradeoff t { max_index = 3; default_index = 0; }").unwrap_err();
        assert!(err.message.contains("no value rule"));
    }

    #[test]
    fn error_carries_line_number() {
        let err = parse("fn f() {\n  let x = ;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn choose_call_parses() {
        let p = parse("fn f(x) { return choose sqrtVersion(x, 2); }").unwrap();
        match &p.functions[0].body[0] {
            Stmt::Return(Expr::TradeoffCall(name, args)) => {
                assert_eq!(name, "sqrtVersion");
                assert_eq!(args.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quantize_parses() {
        let p = parse("fn f(x) { return quantize prec(x + 1); }").unwrap();
        match &p.functions[0].body[0] {
            Stmt::Return(Expr::TradeoffCast(name, inner)) => {
                assert_eq!(name, "prec");
                assert!(matches!(**inner, Expr::Bin(BinOp::Add, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn else_if_chain() {
        let p = parse(
            "fn f(x) { if (x < 0) { return 0; } else if (x < 10) { return 1; } else { return 2; } }",
        )
        .unwrap();
        assert_eq!(p.functions.len(), 1);
    }
}
