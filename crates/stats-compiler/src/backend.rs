//! The back-end compiler (paper §3.4, "Generating a binary").
//!
//! The back-end takes the middle-end's IR plus one autotuner configuration
//! (which state dependences get auxiliary code, and each auxiliary
//! tradeoff's index) and produces the executable artifact. Setting each
//! tradeoff fetches its value by "dynamically compiling" `getValue(i)`
//! (here: interpreting it) and then rewrites references: constants replace
//! placeholder calls, type tradeoffs retype casts, function tradeoffs
//! replace callees. The instantiation step is deliberately cheap — the
//! autotuner instantiates the same IR for many configurations.

use std::collections::HashMap;

use stats_core::{ScalarType, TradeoffBindings, TradeoffValue};

use crate::bytecode::BytecodeInterp;
use crate::frontend::CompileError;
use crate::interp::{ExecError, Value};
use crate::ir::{Module, Ty};
use crate::midend::{substitute, tradeoff_value_at, ResolvedValue};

/// A per-dependence configuration: tradeoff indices in the order of the
/// dependence's `aux_tradeoffs` metadata.
pub type DepConfig = HashMap<String, Vec<i64>>;

/// Instantiate `module` for one configuration, producing an executable
/// module (the "binary"). Dependences absent from `config` have their
/// auxiliary tradeoffs pinned to defaults (the autotuner may still decide
/// not to *use* the auxiliary code at run time; that switch lives in
/// `SpecConfig::speculate`).
pub fn instantiate(module: &Module, config: &DepConfig) -> Result<Module, CompileError> {
    let mut out = module.clone();
    let rows = out.metadata.tradeoffs.clone();
    for row in &rows {
        let Some(dep) = row.owner_dep.clone() else {
            return Err(CompileError::Semantic(format!(
                "tradeoff `{}` survived the middle-end without an owner",
                row.name
            )));
        };
        let position = out
            .metadata
            .state_dep(&dep)
            .and_then(|d| d.aux_tradeoffs.iter().position(|t| *t == row.name));
        let index = match (config.get(&dep), position) {
            (Some(indices), Some(pos)) => indices.get(pos).copied().unwrap_or(row.default_index),
            _ => row.default_index,
        };
        let value = tradeoff_value_at(&out, row, index)?;
        substitute(&mut out, &row.name, &value)?;
    }
    debug_assert!(
        crate::verify::verify_instantiated(&out).is_ok(),
        "back-end produced an unverifiable module: {:?}",
        crate::verify::verify_instantiated(&out)
    );
    Ok(out)
}

/// Execute a function of an instantiated module. The bytecode engine plays
/// the role of running the generated binary — the IR is lowered to a flat
/// executable form first, as the paper's dynamic compiler would emit
/// machine code (`interp::Interp` remains as the reference semantics).
pub fn call(module: &Module, function: &str, args: &[Value]) -> Result<Option<Value>, ExecError> {
    BytecodeInterp::new(module).call(function, args)
}

/// Build [`stats_core::TradeoffBindings`] for one dependence's auxiliary
/// code from an instantiated configuration — the bridge between the
/// compiler pipeline and native-Rust workloads. Keys are the *original*
/// tradeoff names (what workload code references via `InvocationCtx`).
pub fn core_bindings(
    module: &Module,
    dep: &str,
    indices: &[i64],
) -> Result<TradeoffBindings, CompileError> {
    let dep_row = module
        .metadata
        .state_dep(dep)
        .ok_or_else(|| CompileError::Semantic(format!("unknown state dependence `{dep}`")))?;
    let mut bindings = TradeoffBindings::new();
    for (pos, t) in dep_row.aux_tradeoffs.clone().iter().enumerate() {
        let row = module
            .metadata
            .tradeoff(t)
            .ok_or_else(|| CompileError::Semantic(format!("unknown tradeoff `{t}`")))?;
        let index = indices.get(pos).copied().unwrap_or(row.default_index);
        let key = row.cloned_from.clone().unwrap_or_else(|| row.name.clone());
        let value = match tradeoff_value_at(module, row, index)? {
            ResolvedValue::Int(v) => TradeoffValue::Int(v),
            ResolvedValue::Float(v) => TradeoffValue::Float(v),
            ResolvedValue::Function(name) => TradeoffValue::Function(name),
            ResolvedValue::Type(Ty::F32) => TradeoffValue::Type(ScalarType::F32),
            ResolvedValue::Type(Ty::F64) => TradeoffValue::Type(ScalarType::F64),
            ResolvedValue::Type(Ty::I64) => TradeoffValue::Int(0),
        };
        bindings.set(key, value);
    }
    Ok(bindings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::compile;
    use crate::midend;

    fn module() -> Module {
        let src = r#"
            tradeoff layers { max_index = 10; default_index = 4; value(i) = i + 1; }
            state_dependence d { compute = step; }
            fn step(v) {
                let l = tradeoff layers;
                return v * l;
            }
        "#;
        midend::run(compile(src).unwrap()).unwrap()
    }

    #[test]
    fn constant_tradeoff_substitution() {
        let m = module();
        let cfg: DepConfig = [("d".to_string(), vec![9])].into_iter().collect();
        let binary = instantiate(&m, &cfg).unwrap();
        // Aux clone uses index 9 -> value 10.
        let out = call(&binary, "step__aux_d", &[3.into()]).unwrap().unwrap();
        assert_eq!(out.as_int(), Some(30));
        // Original code uses the default (index 4 -> 5).
        let out = call(&binary, "step", &[3.into()]).unwrap().unwrap();
        assert_eq!(out.as_int(), Some(15));
    }

    #[test]
    fn missing_config_uses_defaults() {
        let m = module();
        let binary = instantiate(&m, &DepConfig::new()).unwrap();
        let out = call(&binary, "step__aux_d", &[3.into()]).unwrap().unwrap();
        assert_eq!(out.as_int(), Some(15));
    }

    #[test]
    fn out_of_range_index_is_clamped() {
        let m = module();
        let cfg: DepConfig = [("d".to_string(), vec![1000])].into_iter().collect();
        let binary = instantiate(&m, &cfg).unwrap();
        let out = call(&binary, "step__aux_d", &[1.into()]).unwrap().unwrap();
        assert_eq!(out.as_int(), Some(10));
    }

    #[test]
    fn instantiation_is_repeatable() {
        // The autotuner instantiates the same IR many times; instantiation
        // must not mutate its input.
        let m = module();
        let cfg1: DepConfig = [("d".to_string(), vec![0])].into_iter().collect();
        let cfg2: DepConfig = [("d".to_string(), vec![9])].into_iter().collect();
        let b1 = instantiate(&m, &cfg1).unwrap();
        let b2 = instantiate(&m, &cfg2).unwrap();
        let o1 = call(&b1, "step__aux_d", &[1.into()]).unwrap().unwrap();
        let o2 = call(&b2, "step__aux_d", &[1.into()]).unwrap().unwrap();
        assert_eq!(o1.as_int(), Some(1));
        assert_eq!(o2.as_int(), Some(10));
    }

    #[test]
    fn instantiated_module_has_no_placeholders() {
        let m = module();
        let cfg: DepConfig = [("d".to_string(), vec![2])].into_iter().collect();
        let binary = instantiate(&m, &cfg).unwrap();
        for f in binary.functions() {
            assert!(
                f.tradeoff_refs().is_empty(),
                "{} still has tradeoff refs",
                f.name
            );
        }
    }

    #[test]
    fn function_tradeoff_substitution() {
        use crate::ir::{BlockId, Function, Inst};
        use crate::metadata::{StateDepMeta, TradeoffMeta, TradeoffValues};
        // Build: step(v) = <sqrtVersion>(v), tradeoff over {sqrt, half}.
        let mut m = Module::new();
        let mut half = Function::new("half", 1);
        let p = half.params[0];
        let dst = half.fresh_reg();
        half.push(
            BlockId(0),
            Inst::Bin {
                op: crate::ir::BinOp::Div,
                dst,
                lhs: p.into(),
                rhs: crate::ir::Operand::ImmFloat(2.0),
            },
        );
        half.push(
            BlockId(0),
            Inst::Ret {
                value: Some(dst.into()),
            },
        );
        m.add_function(half);

        let mut step = Function::new("step__aux_d", 1);
        let p = step.params[0];
        let dst = step.fresh_reg();
        step.push(
            BlockId(0),
            Inst::CallTradeoff {
                dst: Some(dst),
                tradeoff: "sqrtVersion__aux_d".into(),
                args: vec![p.into()],
            },
        );
        step.push(
            BlockId(0),
            Inst::Ret {
                value: Some(dst.into()),
            },
        );
        m.add_function(step);

        // The original compute function the metadata row points at (the
        // module verifier checks referential integrity).
        let mut orig = Function::new("step", 1);
        let po = orig.params[0];
        orig.push(
            BlockId(0),
            Inst::Ret {
                value: Some(po.into()),
            },
        );
        m.add_function(orig);

        m.metadata.tradeoffs.push(TradeoffMeta {
            name: "sqrtVersion__aux_d".into(),
            max_index: 2,
            default_index: 0,
            values: TradeoffValues::Functions(vec!["sqrt".into(), "half".into()]),
            cloned_from: Some("sqrtVersion".into()),
            owner_dep: Some("d".into()),
        });
        m.metadata.state_deps.push(StateDepMeta {
            name: "d".into(),
            compute_fn: "step".into(),
            aux_fn: Some("step__aux_d".into()),
            aux_tradeoffs: vec!["sqrtVersion__aux_d".into()],
            declared_state: vec![],
        });

        let cfg: DepConfig = [("d".to_string(), vec![1])].into_iter().collect();
        let binary = instantiate(&m, &cfg).unwrap();
        let out = call(&binary, "step__aux_d", &[8.0.into()])
            .unwrap()
            .unwrap();
        assert_eq!(out.as_float(), 4.0);

        let cfg0: DepConfig = [("d".to_string(), vec![0])].into_iter().collect();
        let binary0 = instantiate(&m, &cfg0).unwrap();
        let out0 = call(&binary0, "step__aux_d", &[9.0.into()])
            .unwrap()
            .unwrap();
        assert_eq!(out0.as_float(), 3.0);
    }

    #[test]
    fn choose_syntax_end_to_end() {
        // A function tradeoff declared and used entirely in the DSL.
        let src = r#"
            tradeoff rootVersion { functions = [exact_like, half]; default_index = 0; }
            state_dependence d { compute = step; }
            fn exact_like(x) { return x; }
            fn half(x) { return x / 2; }
            fn step(v) { return choose rootVersion(v) + 1; }
        "#;
        let m = midend::run(compile(src).unwrap()).unwrap();
        let cfg1: DepConfig = [("d".to_string(), vec![1])].into_iter().collect();
        let b1 = instantiate(&m, &cfg1).unwrap();
        let out = call(&b1, "step__aux_d", &[8.into()]).unwrap().unwrap();
        assert_eq!(out.as_int(), Some(5)); // half(8) + 1
                                           // Original code pins to the default (exact_like).
        let out = call(&b1, "step", &[8.into()]).unwrap().unwrap();
        assert_eq!(out.as_int(), Some(9));
    }

    #[test]
    fn quantize_syntax_end_to_end() {
        // A type tradeoff declared and applied entirely in the DSL: at f32
        // the value loses precision, at f64 it is exact.
        let src = r#"
            tradeoff prec { types = [f32, f64]; default_index = 1; }
            state_dependence d { compute = step; }
            fn step(v) { return quantize prec(v / 3.0); }
        "#;
        let m = midend::run(compile(src).unwrap()).unwrap();
        let x = 1.0_f64;
        let exact = x / 3.0;
        let cfg64: DepConfig = [("d".to_string(), vec![1])].into_iter().collect();
        let b64 = instantiate(&m, &cfg64).unwrap();
        let out64 = call(&b64, "step__aux_d", &[x.into()]).unwrap().unwrap();
        assert_eq!(out64.as_float(), exact);

        let cfg32: DepConfig = [("d".to_string(), vec![0])].into_iter().collect();
        let b32 = instantiate(&m, &cfg32).unwrap();
        let out32 = call(&b32, "step__aux_d", &[x.into()]).unwrap().unwrap();
        assert_eq!(out32.as_float(), exact as f32 as f64);
        assert_ne!(out32.as_float(), exact);
    }

    #[test]
    fn core_bindings_bridge() {
        let m = module();
        let b = core_bindings(&m, "d", &[9]).unwrap();
        assert_eq!(b.get("layers").unwrap().as_int(), Some(10));
        let b_def = core_bindings(&m, "d", &[]).unwrap();
        assert_eq!(b_def.get("layers").unwrap().as_int(), Some(5));
    }

    #[test]
    fn unknown_dep_in_bindings_is_error() {
        let m = module();
        assert!(core_bindings(&m, "ghost", &[]).is_err());
    }
}
