//! Hand-written lexer for the `.stats` language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    // Keywords.
    Tradeoff,
    StateDependence,
    State,
    Fn,
    Let,
    If,
    Else,
    While,
    Return,
    Choose,
    Quantize,
    For,
    In,
    DotDot,
    // Literals and identifiers.
    Ident(String),
    Int(i64),
    Float(f64),
    // Punctuation.
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Assign,
    // Operators.
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    NotEq,
    AndAnd,
    OrOr,
    Not,
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::Int(v) => write!(f, "integer `{v}`"),
            Token::Float(v) => write!(f, "float `{v}`"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token with its source line (1-based), for error messages.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: usize,
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `source`. Line comments start with `//` or `#`.
pub fn lex(source: &str) -> Result<Vec<Spanned>, LexError> {
    let mut tokens = Vec::new();
    let mut chars = source.chars().peekable();
    let mut line = 1usize;

    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    chars.next();
                }
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    while let Some(&c) = chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        chars.next();
                    }
                } else {
                    tokens.push(Spanned {
                        token: Token::Slash,
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                let mut is_float = false;
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        chars.next();
                    } else if c == '.' && !is_float {
                        // Two-character lookahead: `1.5` continues a float,
                        // but `1..n` is a range — leave both dots alone.
                        let mut ahead = chars.clone();
                        ahead.next();
                        if ahead.peek().is_some_and(|d| d.is_ascii_digit()) {
                            is_float = true;
                            text.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    } else {
                        break;
                    }
                }
                let token = if is_float {
                    Token::Float(text.parse().map_err(|_| LexError {
                        message: format!("malformed float literal `{text}`"),
                        line,
                    })?)
                } else {
                    Token::Int(text.parse().map_err(|_| LexError {
                        message: format!("malformed integer literal `{text}`"),
                        line,
                    })?)
                };
                tokens.push(Spanned { token, line });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        ident.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let token = match ident.as_str() {
                    "tradeoff" => Token::Tradeoff,
                    "state_dependence" => Token::StateDependence,
                    "state" => Token::State,
                    "fn" => Token::Fn,
                    "let" => Token::Let,
                    "if" => Token::If,
                    "else" => Token::Else,
                    "while" => Token::While,
                    "return" => Token::Return,
                    "choose" => Token::Choose,
                    "quantize" => Token::Quantize,
                    "for" => Token::For,
                    "in" => Token::In,
                    _ => Token::Ident(ident),
                };
                tokens.push(Spanned { token, line });
            }
            _ => {
                chars.next();
                let token = match c {
                    '.' => {
                        if chars.peek() == Some(&'.') {
                            chars.next();
                            Token::DotDot
                        } else {
                            return Err(LexError {
                                message: "expected `..`".into(),
                                line,
                            });
                        }
                    }
                    '{' => Token::LBrace,
                    '}' => Token::RBrace,
                    '(' => Token::LParen,
                    ')' => Token::RParen,
                    '[' => Token::LBracket,
                    ']' => Token::RBracket,
                    ',' => Token::Comma,
                    ';' => Token::Semi,
                    '+' => Token::Plus,
                    '-' => Token::Minus,
                    '*' => Token::Star,
                    '%' => Token::Percent,
                    '=' => {
                        if chars.peek() == Some(&'=') {
                            chars.next();
                            Token::EqEq
                        } else {
                            Token::Assign
                        }
                    }
                    '<' => {
                        if chars.peek() == Some(&'=') {
                            chars.next();
                            Token::Le
                        } else {
                            Token::Lt
                        }
                    }
                    '>' => {
                        if chars.peek() == Some(&'=') {
                            chars.next();
                            Token::Ge
                        } else {
                            Token::Gt
                        }
                    }
                    '!' => {
                        if chars.peek() == Some(&'=') {
                            chars.next();
                            Token::NotEq
                        } else {
                            Token::Not
                        }
                    }
                    '&' => {
                        if chars.peek() == Some(&'&') {
                            chars.next();
                            Token::AndAnd
                        } else {
                            return Err(LexError {
                                message: "expected `&&`".into(),
                                line,
                            });
                        }
                    }
                    '|' => {
                        if chars.peek() == Some(&'|') {
                            chars.next();
                            Token::OrOr
                        } else {
                            return Err(LexError {
                                message: "expected `||`".into(),
                                line,
                            });
                        }
                    }
                    other => {
                        return Err(LexError {
                            message: format!("unexpected character `{other}`"),
                            line,
                        })
                    }
                };
                tokens.push(Spanned { token, line });
            }
        }
    }
    tokens.push(Spanned {
        token: Token::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("tradeoff foo fn"),
            vec![
                Token::Tradeoff,
                Token::Ident("foo".into()),
                Token::Fn,
                Token::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 3.5"),
            vec![Token::Int(42), Token::Float(3.5), Token::Eof]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a <= b == c != d"),
            vec![
                Token::Ident("a".into()),
                Token::Le,
                Token::Ident("b".into()),
                Token::EqEq,
                Token::Ident("c".into()),
                Token::NotEq,
                Token::Ident("d".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_ignored() {
        assert_eq!(
            toks("a // b c\n# d\ne"),
            vec![
                Token::Ident("a".into()),
                Token::Ident("e".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn line_numbers() {
        let spanned = lex("a\nb\n\nc").unwrap();
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[1].line, 2);
        assert_eq!(spanned[2].line, 4);
    }

    #[test]
    fn negative_numbers_are_minus_then_literal() {
        assert_eq!(toks("-5"), vec![Token::Minus, Token::Int(5), Token::Eof]);
    }

    #[test]
    fn unknown_character_is_error() {
        assert!(lex("a $ b").is_err());
    }

    #[test]
    fn single_ampersand_is_error() {
        let err = lex("a & b").unwrap_err();
        assert!(err.message.contains("&&"));
    }
}
