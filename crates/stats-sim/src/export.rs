//! Schedule export in the Chrome trace-event format.
//!
//! The emitted JSON loads into `chrome://tracing` / Perfetto: one row per
//! simulated hardware thread, one complete ("X") event per task. Written by
//! hand (the sanctioned dependency set has no JSON serializer); the format
//! is simple enough that escaping task labels is the only subtlety.

use crate::engine::Schedule;
use crate::task::TaskGraph;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render `schedule` (of `graph`) as a Chrome trace-event JSON document.
/// Timestamps are microseconds of simulated time.
pub fn chrome_trace(graph: &TaskGraph, schedule: &Schedule) -> String {
    let scale = 1.0e6 / schedule.makespan_work().max(1e-12) * schedule.makespan_seconds().max(0.0);
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (id, task) in graph.iter() {
        let p = schedule.placements()[id.0];
        if !first {
            out.push(',');
        }
        first = false;
        let name = if task.label.is_empty() {
            format!("task{}", id.0)
        } else {
            escape(&task.label)
        };
        out.push_str(&format!(
            "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\
             \"ts\":{ts:.3},\"dur\":{dur:.3},\"args\":{{\"cost\":{cost},\
             \"mem_fraction\":{mem:.3}}}}}",
            tid = p.thread,
            ts = p.start * scale,
            dur = (p.finish - p.start) * scale,
            cost = task.cost,
            mem = task.mem_fraction,
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::platform::Platform;

    fn schedule() -> (TaskGraph, Schedule) {
        let mut g = TaskGraph::new();
        let a = g.add_labeled_task(10.0, 0.0, &[], "aux \"quote\"".into());
        g.add_task(5.0, 0.5, &[a]);
        let s = simulate(&g, &Platform::haswell_single_socket(), 2);
        (g, s)
    }

    #[test]
    fn emits_one_event_per_task() {
        let (g, s) = schedule();
        let json = chrome_trace(&g, &s);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), g.len());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn escapes_labels() {
        let (g, s) = schedule();
        let json = chrome_trace(&g, &s);
        assert!(json.contains("aux \\\"quote\\\""));
        assert!(!json.contains("aux \"quote\""));
    }

    #[test]
    fn durations_nonnegative_and_ordered() {
        let (g, s) = schedule();
        let json = chrome_trace(&g, &s);
        // crude structural check: every dur field parses and is >= 0
        for part in json.split("\"dur\":").skip(1) {
            let num: f64 = part.split(',').next().unwrap().parse().expect("dur parses");
            assert!(num >= 0.0);
        }
    }

    #[test]
    fn empty_graph_is_valid_json_shell() {
        let g = TaskGraph::new();
        let s = simulate(&g, &Platform::haswell_r730(), 1);
        assert_eq!(chrome_trace(&g, &s), "{\"traceEvents\":[]}");
    }
}
