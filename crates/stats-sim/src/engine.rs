//! Deterministic list-scheduling discrete-event engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::platform::{Placement, Platform};
use crate::task::{TaskGraph, TaskId};

/// Where and when a task executed in a [`Schedule`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskPlacement {
    /// Software thread the task ran on.
    pub thread: usize,
    /// Start time, in work units.
    pub start: f64,
    /// Finish time, in work units.
    pub finish: f64,
}

/// The output of [`simulate`]: a complete, deterministic schedule.
#[derive(Debug, Clone)]
pub struct Schedule {
    placements: Vec<TaskPlacement>,
    makespan: f64,
    busy: Vec<f64>,
    placement: Placement,
    work_units_per_second: f64,
}

impl Schedule {
    /// Makespan in abstract work units.
    pub fn makespan_work(&self) -> f64 {
        self.makespan
    }

    /// Makespan converted to simulated seconds via the platform clock.
    pub fn makespan_seconds(&self) -> f64 {
        self.makespan / self.work_units_per_second
    }

    /// Per-task placements, indexed by [`TaskId`].
    pub fn placements(&self) -> &[TaskPlacement] {
        &self.placements
    }

    /// Busy time (work units) accumulated by each software thread.
    pub fn thread_busy(&self) -> &[f64] {
        &self.busy
    }

    /// The thread placement the schedule was computed for.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Fraction of the allocated threads' capacity that was busy.
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0.0 {
            return 0.0;
        }
        let capacity = self.makespan * self.busy.len() as f64;
        self.busy.iter().sum::<f64>() / capacity
    }
}

/// Tie-breaking policy when several tasks are ready at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Smallest task id first (submission order) — the default; matches a
    /// FIFO work queue.
    #[default]
    Fifo,
    /// Longest remaining dependence chain first (HLF / critical-path
    /// scheduling): classic list scheduling with level priorities, usually
    /// at or below FIFO's makespan on fork/join-heavy graphs.
    CriticalPathFirst,
}

/// Schedule `graph` on `threads` software threads of `platform` with the
/// default FIFO tie-break.
///
/// The scheduler is greedy, non-preemptive, work-conserving list scheduling:
/// when several tasks are ready, the policy picks one; when several threads
/// are idle, the fastest (then lowest-numbered) thread is chosen. The result
/// is fully deterministic.
pub fn simulate(graph: &TaskGraph, platform: &Platform, threads: usize) -> Schedule {
    simulate_with_policy(graph, platform, threads, SchedPolicy::Fifo)
}

/// [`simulate`] with an explicit ready-queue policy.
pub fn simulate_with_policy(
    graph: &TaskGraph,
    platform: &Platform,
    threads: usize,
    policy: SchedPolicy,
) -> Schedule {
    let placement = platform.place(threads);
    let n_threads = placement.threads();
    let n_tasks = graph.len();

    let mut indegree = vec![0usize; n_tasks];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n_tasks];
    for (id, task) in graph.iter() {
        indegree[id.0] = task.deps.len();
        for d in &task.deps {
            dependents[d.0].push(id.0);
        }
    }
    let mut ready_at = vec![0.0_f64; n_tasks];

    // Per-task priority: FIFO uses the id; critical-path-first uses the
    // downward rank (longest chain of costs from the task to a sink),
    // larger first. Encode as a key so smaller = higher priority.
    let priority: Vec<u64> = match policy {
        SchedPolicy::Fifo => (0..n_tasks as u64).collect(),
        SchedPolicy::CriticalPathFirst => {
            let mut rank = vec![0.0_f64; n_tasks];
            for i in (0..n_tasks).rev() {
                let down = dependents[i]
                    .iter()
                    .map(|&d| rank[d])
                    .fold(0.0_f64, f64::max);
                rank[i] = graph.task(TaskId(i)).cost + down;
            }
            // Negate so larger ranks sort first under Reverse ordering; the
            // bit trick keeps a total order for positive finite floats.
            rank.iter().map(|r| u64::MAX - r.to_bits()).collect()
        }
    };

    // Ready tasks, highest priority (smallest key, then smallest id) first.
    let mut ready: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for i in 0..n_tasks {
        if indegree[i] == 0 {
            ready.push(Reverse((priority[i], i)));
        }
    }

    // Idle threads become available when their free time passes the
    // simulation clock; among available threads the fastest (then lowest
    // id) is chosen. Encode speed as ordered bits for determinism.
    fn f64_key(x: f64) -> u64 {
        // Total order for non-negative finite floats.
        x.to_bits()
    }
    // (free_time bits, thread id) — min-heap by free time.
    let mut parked: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    // (neg speed bits, thread id) — min-heap = fastest first.
    let mut available: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for t in 0..n_threads {
        available.push(Reverse((f64_key(1.0 / placement.thread_speeds[t]), t)));
    }

    // Running tasks: (finish time bits, task id, thread).
    let mut running: BinaryHeap<Reverse<(u64, usize, usize)>> = BinaryHeap::new();

    let mut placements = vec![
        TaskPlacement {
            thread: 0,
            start: 0.0,
            finish: 0.0,
        };
        n_tasks
    ];
    let mut busy = vec![0.0_f64; n_threads];
    let mut makespan = 0.0_f64;
    let mut scheduled = 0usize;
    let mut now = 0.0_f64;

    while scheduled < n_tasks || !running.is_empty() {
        // Threads whose free time has passed become available.
        while let Some(&Reverse((ft, t))) = parked.peek() {
            if f64::from_bits(ft) <= now {
                parked.pop();
                available.push(Reverse((f64_key(1.0 / placement.thread_speeds[t]), t)));
            } else {
                break;
            }
        }
        // Dispatch: highest-priority ready task onto the fastest available
        // thread, starting at the simulation clock. A task only enters the
        // ready heap once its dependences completed (<= now), so starting
        // at `now` never violates data readiness.
        while ready.peek().is_some() && available.peek().is_some() {
            let Reverse((_, task_idx)) = ready.pop().expect("peeked");
            let Reverse((_, thread)) = available.pop().expect("peeked");
            let start = now.max(ready_at[task_idx]);
            let task = graph.task(TaskId(task_idx));
            let duration = placement.duration(thread, task.cost, task.mem_fraction);
            let finish = start + duration;
            placements[task_idx] = TaskPlacement {
                thread,
                start,
                finish,
            };
            busy[thread] += duration;
            makespan = makespan.max(finish);
            running.push(Reverse((f64_key(finish), task_idx, thread)));
            parked.push(Reverse((f64_key(finish), thread)));
            scheduled += 1;
        }

        // Advance to the next completion time and release the dependents of
        // *every* task finishing then — dispatching between two co-timed
        // completions would let low-priority work steal slots from tasks
        // that become ready in the same instant.
        if let Some(Reverse((ft, _, _))) = running.peek().copied() {
            now = f64::from_bits(ft);
            while let Some(&Reverse((ft2, _, _))) = running.peek() {
                if ft2 != ft {
                    break;
                }
                let Reverse((_, task_idx, _)) = running.pop().expect("peeked");
                let finish = placements[task_idx].finish;
                for &dep in &dependents[task_idx] {
                    ready_at[dep] = ready_at[dep].max(finish);
                    indegree[dep] -= 1;
                    if indegree[dep] == 0 {
                        ready.push(Reverse((priority[dep], dep)));
                    }
                }
            }
        }
    }

    Schedule {
        placements,
        makespan,
        busy,
        placement,
        work_units_per_second: platform.work_units_per_second,
    }
}

impl Schedule {
    /// A textual Gantt chart of the schedule: one row per software thread,
    /// `width` columns of time buckets, `#` where the thread is busy.
    /// Intended for debugging and examples, not parsing.
    pub fn gantt(&self, width: usize) -> String {
        let width = width.max(1);
        let mut rows = vec![vec![b' '; width]; self.busy.len()];
        if self.makespan > 0.0 {
            for p in &self.placements {
                if p.finish <= p.start {
                    continue;
                }
                let a = ((p.start / self.makespan) * width as f64) as usize;
                let b = (((p.finish / self.makespan) * width as f64).ceil() as usize)
                    .clamp(a + 1, width);
                for c in rows[p.thread][a..b].iter_mut() {
                    *c = b'#';
                }
            }
        }
        let mut out = String::new();
        for (t, row) in rows.iter().enumerate() {
            out.push_str(&format!("t{t:<3}|"));
            out.push_str(std::str::from_utf8(row).expect("ascii"));
            out.push_str("|\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TaskGraph {
        let mut g = TaskGraph::new();
        let a = g.add_task(10.0, 0.0, &[]);
        let b = g.add_task(20.0, 0.0, &[a]);
        let c = g.add_task(20.0, 0.0, &[a]);
        let _d = g.add_task(10.0, 0.0, &[b, c]);
        g
    }

    #[test]
    fn serial_on_one_thread() {
        let g = diamond();
        let s = simulate(&g, &Platform::haswell_single_socket(), 1);
        assert!((s.makespan_work() - 60.0).abs() < 1e-9);
        assert!((s.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn diamond_parallelizes_on_two_threads() {
        let g = diamond();
        let s = simulate(&g, &Platform::haswell_single_socket(), 2);
        assert!((s.makespan_work() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn makespan_never_below_critical_path() {
        let g = diamond();
        for threads in 1..=8 {
            let s = simulate(&g, &Platform::haswell_single_socket(), threads);
            assert!(s.makespan_work() + 1e-9 >= g.critical_path());
        }
    }

    #[test]
    fn more_threads_never_slower_for_independent_tasks() {
        let mut g = TaskGraph::new();
        for _ in 0..32 {
            g.add_task(10.0, 0.0, &[]);
        }
        let p = Platform::haswell_single_socket();
        let mut last = f64::INFINITY;
        for threads in 1..=14 {
            let s = simulate(&g, &p, threads);
            assert!(s.makespan_work() <= last + 1e-9);
            last = s.makespan_work();
        }
    }

    #[test]
    fn respects_dependences() {
        let g = diamond();
        let s = simulate(&g, &Platform::haswell_r730(), 4);
        let p = s.placements();
        for (id, task) in g.iter() {
            for d in &task.deps {
                assert!(p[d.0].finish <= p[id.0].start + 1e-9);
            }
        }
    }

    #[test]
    fn smt_threads_run_slower() {
        let mut g = TaskGraph::new();
        g.add_task(100.0, 0.0, &[]);
        let p = Platform::haswell_single_socket();
        // 28 threads on 14 cores: every thread is an SMT sibling.
        let s = simulate(&g, &p, 28);
        assert!((s.makespan_work() - 100.0 / 0.65).abs() < 1e-6);
    }

    #[test]
    fn numa_penalty_applies_across_sockets() {
        let mut g = TaskGraph::new();
        g.add_task(100.0, 1.0, &[]);
        let p = Platform::haswell_r730();
        let s1 = simulate(&g, &p, 14);
        let s2 = simulate(&g, &p, 28);
        assert!((s1.makespan_work() - 100.0).abs() < 1e-9);
        assert!(s2.makespan_work() > s1.makespan_work());
    }

    #[test]
    fn empty_graph() {
        let g = TaskGraph::new();
        let s = simulate(&g, &Platform::haswell_r730(), 4);
        assert_eq!(s.makespan_work(), 0.0);
    }

    #[test]
    fn critical_path_first_beats_fifo_on_adversarial_graph() {
        // Two chains: a long one submitted *after* a crowd of short tasks.
        // FIFO starts the short tasks first and the long chain straggles;
        // CP-first starts the chain immediately.
        let mut g = TaskGraph::new();
        for _ in 0..8 {
            g.add_task(10.0, 0.0, &[]);
        }
        let mut prev = g.add_task(10.0, 0.0, &[]);
        for _ in 0..7 {
            prev = g.add_task(10.0, 0.0, &[prev]);
        }
        let p = Platform::haswell_single_socket();
        let fifo = simulate_with_policy(&g, &p, 2, SchedPolicy::Fifo);
        let cp = simulate_with_policy(&g, &p, 2, SchedPolicy::CriticalPathFirst);
        assert!(
            cp.makespan_work() < fifo.makespan_work(),
            "cp {} !< fifo {}",
            cp.makespan_work(),
            fifo.makespan_work()
        );
        assert!((cp.makespan_work() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn policies_agree_on_serial_graphs() {
        let mut g = TaskGraph::new();
        let mut prev = None;
        for _ in 0..5 {
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(g.add_task(7.0, 0.0, &deps));
        }
        let p = Platform::haswell_single_socket();
        let a = simulate_with_policy(&g, &p, 4, SchedPolicy::Fifo);
        let b = simulate_with_policy(&g, &p, 4, SchedPolicy::CriticalPathFirst);
        assert_eq!(a.makespan_work(), b.makespan_work());
    }

    #[test]
    fn gantt_shows_busy_threads() {
        let g = diamond();
        let s = simulate(&g, &Platform::haswell_single_socket(), 2);
        let chart = s.gantt(40);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('#'));
        assert!(lines[1].contains('#'));
        // Thread 0 is busy for the whole makespan (a, then b or c, then d).
        let body = &lines[0][5..45];
        assert!(!body.contains(' '), "thread 0 has gaps: {body:?}");
    }

    #[test]
    fn gantt_empty_schedule() {
        let g = TaskGraph::new();
        let s = simulate(&g, &Platform::haswell_r730(), 2);
        let chart = s.gantt(10);
        assert!(!chart.contains('#'));
    }

    #[test]
    fn work_conservation() {
        let g = diamond();
        let s = simulate(&g, &Platform::haswell_single_socket(), 3);
        let busy: f64 = s.thread_busy().iter().sum();
        assert!((busy - g.total_work()).abs() < 1e-9);
    }
}
