//! Deterministic discrete-event multicore simulator and energy model.
//!
//! The STATS paper evaluates on a dual-socket Dell PowerEdge R730 with two
//! 14-core Intel Xeon E5-2695 v3 (Haswell) processors, 2-way Hyper-Threading,
//! and measures system-wide AC energy with a Watts Up Pro meter. This crate is
//! the substitute for that platform: it schedules a task graph — produced by
//! actually running the STATS speculation protocol — onto a configurable
//! virtual machine with sockets, cores, SMT contexts, a NUMA cross-socket
//! penalty, and a static+dynamic power model.
//!
//! The simulator is deterministic: the same task graph and platform always
//! produce the same schedule, makespan, and energy. Task costs are abstract
//! *work units* accumulated by the real workload computations; the platform
//! converts them to seconds at a configurable rate.
//!
//! # Example
//!
//! ```
//! use stats_sim::{Platform, TaskGraph, simulate};
//!
//! let platform = Platform::haswell_r730();
//! let mut graph = TaskGraph::new();
//! let a = graph.add_task(100.0, 0.1, &[]);
//! let b = graph.add_task(50.0, 0.1, &[a]);
//! let c = graph.add_task(50.0, 0.1, &[a]);
//! let _ = (b, c);
//! let schedule = simulate(&graph, &platform, 2);
//! assert!(schedule.makespan_work() >= 150.0);
//! ```

#![deny(missing_docs)]

mod energy;
mod engine;
pub mod export;
mod platform;
mod task;

pub use energy::{EnergyModel, EnergyReport};
pub use engine::{simulate, simulate_with_policy, SchedPolicy, Schedule, TaskPlacement};
pub use platform::{Placement, Platform};
pub use task::{Task, TaskGraph, TaskId};
