//! System-wide energy model (Watts Up Pro substitute).
//!
//! The paper measures AC-side, system-wide power at 1-second intervals with a
//! Watts Up Pro meter. We model the same quantity with a standard
//! static+dynamic decomposition: a baseline system power (fans, DRAM, disks,
//! PSU losses, idle uncore), a per-powered-socket uncore power, and a
//! per-core dynamic power proportional to busy time. Energy is power
//! integrated over the simulated schedule.

use crate::engine::Schedule;
use crate::platform::Platform;

/// Parameters of the system power model, in watts.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// System baseline power drawn for the whole run regardless of activity.
    pub baseline_w: f64,
    /// Additional power per socket that has at least one allocated thread.
    pub socket_w: f64,
    /// Dynamic power of a core actively executing (full-speed context).
    pub core_active_w: f64,
    /// Static power of a core that is allocated but currently idle.
    pub core_idle_w: f64,
}

impl EnergyModel {
    /// Calibrated to the paper's platform: two Xeon E5-2695 v3 (120 W TDP
    /// each) in a server whose idle AC draw is on the order of 100 W.
    pub fn haswell_r730() -> Self {
        EnergyModel {
            baseline_w: 100.0,
            socket_w: 18.0,
            core_active_w: 6.0,
            core_idle_w: 1.5,
        }
    }

    /// Integrate the model over a schedule, producing a report.
    ///
    /// `threads` software threads were allocated; busy time comes from the
    /// schedule. Two SMT siblings on one core count as one active core while
    /// either is busy; we approximate by charging active power per *core*
    /// busy time, i.e. the union of its contexts' busy times, conservatively
    /// estimated as `min(sum of context busy, makespan)`.
    pub fn energy(&self, schedule: &Schedule, platform: &Platform) -> EnergyReport {
        let seconds = schedule.makespan_seconds();
        let makespan_work = schedule.makespan_work();
        if seconds == 0.0 {
            return EnergyReport {
                joules: 0.0,
                avg_power_w: 0.0,
                seconds: 0.0,
            };
        }
        let placement = schedule.placement();
        let n_threads = placement.threads();
        let cores = platform.physical_cores();

        // Aggregate busy work per physical core (threads are placed
        // round-robin over cores, mirroring `Platform::place`).
        let mut core_busy = vec![0.0_f64; cores];
        for (t, &busy) in schedule.thread_busy().iter().enumerate().take(n_threads) {
            core_busy[t % cores] += busy;
        }

        let allocated_cores = n_threads.min(cores);
        let mut active_core_seconds = 0.0;
        for busy in core_busy.iter().take(allocated_cores) {
            let busy_work = busy.min(makespan_work);
            active_core_seconds += busy_work / platform.work_units_per_second;
        }
        let allocated_core_seconds = allocated_cores as f64 * seconds;
        let idle_core_seconds = (allocated_core_seconds - active_core_seconds).max(0.0);

        let joules = self.baseline_w * seconds
            + self.socket_w * placement.sockets_used as f64 * seconds
            + self.core_active_w * active_core_seconds
            + self.core_idle_w * idle_core_seconds;
        EnergyReport {
            joules,
            avg_power_w: joules / seconds,
            seconds,
        }
    }
}

/// Energy accounting for one simulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Total system energy in joules.
    pub joules: f64,
    /// Average system power over the run, in watts.
    pub avg_power_w: f64,
    /// Simulated wall-clock duration in seconds.
    pub seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::task::TaskGraph;

    fn chain(n: usize, cost: f64) -> TaskGraph {
        let mut g = TaskGraph::new();
        let mut prev = None;
        for _ in 0..n {
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(g.add_task(cost, 0.0, &deps));
        }
        g
    }

    #[test]
    fn finishing_earlier_saves_energy() {
        let p = Platform::haswell_single_socket();
        let m = EnergyModel::haswell_r730();
        // 8 independent tasks: 8 threads finish 8x earlier than 1 thread.
        let mut g = TaskGraph::new();
        for _ in 0..8 {
            g.add_task(1.0e6, 0.0, &[]);
        }
        let e1 = m.energy(&simulate(&g, &p, 1), &p);
        let e8 = m.energy(&simulate(&g, &p, 8), &p);
        assert!(e8.joules < e1.joules, "e8={} e1={}", e8.joules, e1.joules);
    }

    #[test]
    fn extra_idle_cores_waste_energy() {
        let p = Platform::haswell_single_socket();
        let m = EnergyModel::haswell_r730();
        // A serial chain gains nothing from extra threads but pays their
        // static power.
        let g = chain(4, 1.0e6);
        let e1 = m.energy(&simulate(&g, &p, 1), &p);
        let e14 = m.energy(&simulate(&g, &p, 14), &p);
        assert!(e14.joules > e1.joules);
        assert!((e1.seconds - e14.seconds).abs() < 1e-9);
    }

    #[test]
    fn empty_schedule_zero_energy() {
        let p = Platform::haswell_r730();
        let m = EnergyModel::haswell_r730();
        let g = TaskGraph::new();
        let e = m.energy(&simulate(&g, &p, 4), &p);
        assert_eq!(e.joules, 0.0);
    }

    #[test]
    fn average_power_bounded_by_model() {
        let p = Platform::haswell_r730();
        let m = EnergyModel::haswell_r730();
        let g = chain(3, 5.0e5);
        let e = m.energy(&simulate(&g, &p, 28), &p);
        let max_power = m.baseline_w + 2.0 * m.socket_w + 28.0 * m.core_active_w.max(m.core_idle_w);
        assert!(e.avg_power_w <= max_power);
        assert!(e.avg_power_w >= m.baseline_w);
    }
}
