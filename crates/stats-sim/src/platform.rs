//! Virtual platform description: sockets, cores, SMT contexts, NUMA, clock.

/// Description of a simulated shared-memory multiprocessor.
///
/// The default preset, [`Platform::haswell_r730`], models the paper's
/// evaluation machine: a dual-socket server with two 14-core Haswell Xeons,
/// 2-way Hyper-Threading, and a NUMA interconnect between the sockets.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Number of sockets (processor packages).
    pub sockets: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Hardware threads (SMT contexts) per core.
    pub smt_per_core: usize,
    /// Relative execution rate of a hardware thread whose sibling context on
    /// the same core is also populated. Intel guidance puts the aggregate
    /// benefit of Hyper-Threading around +30%, i.e. each sibling runs at
    /// roughly 0.65x of an unshared core.
    pub smt_factor: f64,
    /// Multiplier (> 1.0) applied to the memory-bound fraction of a task's
    /// work when the allocated threads span more than one socket, modelling
    /// remote-socket memory accesses over QPI.
    pub numa_penalty: f64,
    /// Work units executed per simulated second by an unshared core.
    pub work_units_per_second: f64,
}

impl Platform {
    /// The paper's evaluation platform: dual-socket Dell PowerEdge R730 with
    /// two 14-core Intel Xeon E5-2695 v3 processors, 2-way Hyper-Threading.
    pub fn haswell_r730() -> Self {
        Platform {
            sockets: 2,
            cores_per_socket: 14,
            smt_per_core: 2,
            smt_factor: 0.65,
            numa_penalty: 1.55,
            work_units_per_second: 1.0e6,
        }
    }

    /// A single-socket view of the same machine, used by the Hyper-Threading
    /// experiment (Figure 14), which constrains execution to one socket.
    pub fn haswell_single_socket() -> Self {
        Platform {
            sockets: 1,
            ..Self::haswell_r730()
        }
    }

    /// Total physical cores across all sockets.
    pub fn physical_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Total hardware threads (logical CPUs) across all sockets.
    pub fn hardware_threads(&self) -> usize {
        self.physical_cores() * self.smt_per_core
    }

    /// Compute the placement of `n` software threads onto hardware threads.
    ///
    /// Placement policy (mirrors the paper's experiments, which pin within a
    /// socket first): fill one hardware context per core on socket 0, then
    /// socket 1, …; only once every core has one thread do sibling SMT
    /// contexts get populated. `n` is clamped to the machine's capacity.
    pub fn place(&self, n: usize) -> Placement {
        let n = n.clamp(1, self.hardware_threads());
        let cores = self.physical_cores();
        let mut speeds = Vec::with_capacity(n);
        let mut sockets_used = 0usize;
        for t in 0..n {
            let core = t % cores;
            let socket = core / self.cores_per_socket;
            sockets_used = sockets_used.max(socket + 1);
            // The thread shares its core iff another thread wraps onto the
            // same core: with round-robin by core, core c hosts
            // ceil((n - c) / cores) threads.
            let occupants = (n - core).div_ceil(cores);
            let speed = if occupants > 1 { self.smt_factor } else { 1.0 };
            speeds.push(speed);
        }
        let numa_multiplier = if sockets_used > 1 {
            self.numa_penalty
        } else {
            1.0
        };
        Placement {
            thread_speeds: speeds,
            sockets_used,
            numa_multiplier,
        }
    }
}

/// The result of mapping software threads onto a [`Platform`].
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Relative execution rate of each software thread (1.0 = unshared core).
    pub thread_speeds: Vec<f64>,
    /// Number of sockets spanned by the allocation.
    pub sockets_used: usize,
    /// Slowdown multiplier applied to the memory-bound fraction of every
    /// task's work (1.0 when the allocation fits in one socket).
    pub numa_multiplier: f64,
}

impl Placement {
    /// Number of software threads in this placement.
    pub fn threads(&self) -> usize {
        self.thread_speeds.len()
    }

    /// Simulated duration in work units of a task with `cost` work units and
    /// memory-bound fraction `mem_fraction` on thread `thread`.
    pub fn duration(&self, thread: usize, cost: f64, mem_fraction: f64) -> f64 {
        let mem = mem_fraction.clamp(0.0, 1.0);
        let numa_scale = 1.0 + mem * (self.numa_multiplier - 1.0);
        cost * numa_scale / self.thread_speeds[thread]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haswell_capacity() {
        let p = Platform::haswell_r730();
        assert_eq!(p.physical_cores(), 28);
        assert_eq!(p.hardware_threads(), 56);
    }

    #[test]
    fn placement_single_socket_no_numa() {
        let p = Platform::haswell_r730();
        let pl = p.place(14);
        assert_eq!(pl.threads(), 14);
        assert_eq!(pl.sockets_used, 1);
        assert_eq!(pl.numa_multiplier, 1.0);
        assert!(pl.thread_speeds.iter().all(|&s| s == 1.0));
    }

    #[test]
    fn placement_two_sockets_numa() {
        let p = Platform::haswell_r730();
        let pl = p.place(28);
        assert_eq!(pl.sockets_used, 2);
        assert!(pl.numa_multiplier > 1.0);
        // No SMT sharing yet at 28 threads on 28 cores.
        assert!(pl.thread_speeds.iter().all(|&s| s == 1.0));
    }

    #[test]
    fn placement_smt_sharing() {
        let p = Platform::haswell_r730();
        let pl = p.place(56);
        assert!(pl.thread_speeds.iter().all(|&s| (s - 0.65).abs() < 1e-12));
    }

    #[test]
    fn placement_partial_smt() {
        let p = Platform::haswell_single_socket();
        // 15 threads on 14 cores: core 0 hosts 2 threads, others 1.
        let pl = p.place(15);
        assert_eq!(pl.thread_speeds[0], 0.65);
        assert_eq!(pl.thread_speeds[14], 0.65);
        assert_eq!(pl.thread_speeds[1], 1.0);
    }

    #[test]
    fn placement_clamps_to_capacity() {
        let p = Platform::haswell_r730();
        assert_eq!(p.place(1000).threads(), 56);
        assert_eq!(p.place(0).threads(), 1);
    }

    #[test]
    fn duration_applies_numa_to_mem_fraction_only() {
        let p = Platform::haswell_r730();
        let pl = p.place(28);
        let d_cpu = pl.duration(0, 100.0, 0.0);
        let d_mem = pl.duration(0, 100.0, 1.0);
        assert_eq!(d_cpu, 100.0);
        assert!((d_mem - 100.0 * p.numa_penalty).abs() < 1e-9);
    }
}
