//! Task graphs: the unit of work scheduled by the simulator.

/// Identifier of a task within a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub usize);

/// A unit of work with data dependences on earlier tasks.
#[derive(Debug, Clone)]
pub struct Task {
    /// Work units of computation (accumulated by the real workload run).
    pub cost: f64,
    /// Fraction of `cost` that is memory-bound (subject to the NUMA penalty).
    pub mem_fraction: f64,
    /// Tasks that must finish before this one may start.
    pub deps: Vec<TaskId>,
    /// Free-form label (used in traces and tests).
    pub label: String,
}

/// A directed acyclic graph of [`Task`]s.
///
/// Dependences may only point to already-added tasks, which makes cycles
/// impossible by construction.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    tasks: Vec<Task>,
}

impl TaskGraph {
    /// Create an empty task graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a task and return its id.
    ///
    /// # Panics
    ///
    /// Panics if `cost` is negative or not finite, or if any dependence
    /// refers to a task that has not been added yet.
    pub fn add_task(&mut self, cost: f64, mem_fraction: f64, deps: &[TaskId]) -> TaskId {
        self.add_labeled_task(cost, mem_fraction, deps, String::new())
    }

    /// Add a task with a label and return its id.
    pub fn add_labeled_task(
        &mut self,
        cost: f64,
        mem_fraction: f64,
        deps: &[TaskId],
        label: String,
    ) -> TaskId {
        assert!(
            cost.is_finite() && cost >= 0.0,
            "task cost must be finite and >= 0"
        );
        let id = TaskId(self.tasks.len());
        for d in deps {
            assert!(
                d.0 < id.0,
                "dependence {:?} refers to a task not yet added",
                d
            );
        }
        self.tasks.push(Task {
            cost,
            mem_fraction,
            deps: deps.to_vec(),
            label,
        });
        id
    }

    /// Number of tasks in the graph.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Access a task by id.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// Iterate over `(id, task)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks.iter().enumerate().map(|(i, t)| (TaskId(i), t))
    }

    /// Total work units in the graph.
    pub fn total_work(&self) -> f64 {
        self.tasks.iter().map(|t| t.cost).sum()
    }

    /// Length (in work units, at unit speed and no NUMA penalty) of the
    /// longest dependence chain. This is a lower bound on any makespan.
    pub fn critical_path(&self) -> f64 {
        let mut finish = vec![0.0_f64; self.tasks.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            let ready = t.deps.iter().map(|d| finish[d.0]).fold(0.0_f64, f64::max);
            finish[i] = ready + t.cost;
        }
        finish.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = TaskGraph::new();
        let a = g.add_task(10.0, 0.0, &[]);
        let b = g.add_task(5.0, 0.5, &[a]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.task(b).deps, vec![a]);
        assert_eq!(g.total_work(), 15.0);
    }

    #[test]
    fn critical_path_chain_vs_fanout() {
        let mut g = TaskGraph::new();
        let a = g.add_task(10.0, 0.0, &[]);
        let b = g.add_task(20.0, 0.0, &[a]);
        let _c = g.add_task(5.0, 0.0, &[a]);
        let _d = g.add_task(1.0, 0.0, &[b]);
        assert_eq!(g.critical_path(), 31.0);
    }

    #[test]
    #[should_panic(expected = "not yet added")]
    fn forward_dependence_rejected() {
        let mut g = TaskGraph::new();
        g.add_task(1.0, 0.0, &[TaskId(3)]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_cost_rejected() {
        let mut g = TaskGraph::new();
        g.add_task(-1.0, 0.0, &[]);
    }
}
