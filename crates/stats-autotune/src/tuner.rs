//! The tuning loop.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::bandit::AucBandit;
use crate::history::{History, Measurement, ResultsDatabase};
use crate::param::{Configuration, SearchSpace};
use crate::technique::{
    DifferentialEvolution, GeneticAlgorithm, GreedyMutation, PatternSearch, RandomSearch, Technique,
};

/// What the tuner minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimize execution time (the paper's default mode).
    Time,
    /// Minimize system-wide energy (the paper's energy mode, Figure 15).
    Energy,
}

impl Objective {
    /// Extract the objective value from a measurement.
    pub fn of(self, m: &Measurement) -> f64 {
        match self {
            Objective::Time => m.time_s,
            Objective::Energy => m.energy_j,
        }
    }
}

/// The result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuningOutcome {
    /// The best configuration found.
    pub best: Configuration,
    /// Its measurement.
    pub best_measurement: Measurement,
    /// The full trial history (convergence analysis, Figure 20).
    pub history: History,
}

/// Drives the search: asks the technique portfolio for configurations,
/// measures them (through a user-supplied profiler function), and keeps the
/// results database.
pub struct Tuner {
    space: SearchSpace,
    objective: Objective,
    bandit: AucBandit,
    rng: SmallRng,
    database: ResultsDatabase,
    seed_configs: Vec<Configuration>,
}

impl Tuner {
    /// Create a tuner over `space` with the default OpenTuner-style
    /// portfolio, seeded deterministically.
    ///
    /// The paper notes the autotuner itself "uses nondeterminism for better
    /// exploration; different searches for the same program may find
    /// different best configurations" — different `seed`s reproduce that.
    pub fn new(space: SearchSpace, objective: Objective, seed: u64) -> Self {
        let bandit = AucBandit::new(vec![
            Box::new(RandomSearch),
            Box::new(GreedyMutation::default()),
            Box::new(GeneticAlgorithm::default()),
            Box::new(DifferentialEvolution::default()),
            Box::new(PatternSearch::default()),
        ]);
        Tuner {
            space,
            objective,
            bandit,
            rng: SmallRng::seed_from_u64(seed),
            database: ResultsDatabase::new(),
            seed_configs: Vec::new(),
        }
    }

    /// Evaluate these configurations first (repaired into the space), the
    /// way OpenTuner seeds a search with the program's default
    /// configuration. Guarantees the result is never worse than the best
    /// seed.
    pub fn with_seed_configs(mut self, seeds: Vec<Configuration>) -> Self {
        self.seed_configs = seeds;
        self
    }

    /// Seed the database with already-measured configurations (reuse of a
    /// previous exploration under a different objective).
    pub fn with_database(mut self, database: ResultsDatabase) -> Self {
        self.database = database;
        self
    }

    /// The search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Run `budget` trials, measuring each proposed configuration with
    /// `profile`. Cached configurations are *not* re-profiled (the database
    /// answers), but still count as trials — matching how OpenTuner reuses
    /// its results database.
    ///
    /// Returns the outcome and the (grown) database for reuse.
    pub fn run(
        mut self,
        budget: usize,
        mut profile: impl FnMut(&Configuration) -> Measurement,
    ) -> (TuningOutcome, ResultsDatabase) {
        let mut history = History::new();
        let mut seeds = std::mem::take(&mut self.seed_configs).into_iter();
        for _ in 0..budget {
            let cfg = match seeds.next() {
                Some(seed) => self.space.repair(&seed),
                None => self
                    .space
                    .repair(&self.bandit.propose(&self.space, &mut self.rng)),
            };
            let m = match self.database.get(&cfg) {
                Some(m) => m.clone(),
                None => {
                    let m = profile(&cfg);
                    self.database.insert(cfg.clone(), m.clone());
                    m
                }
            };
            let o = self.objective.of(&m);
            self.bandit.report(&cfg, o);
            history.record(cfg, m, o);
        }
        let (best, best_m, _) = history.best().expect("budget must be at least one trial");
        let outcome = TuningOutcome {
            best: best.clone(),
            best_measurement: best_m.clone(),
            history,
        };
        (outcome, self.database)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::IntegerParameter;

    fn space() -> SearchSpace {
        SearchSpace::new()
            .with(IntegerParameter::new("x", 0, 40))
            .with(IntegerParameter::new("y", 0, 40))
    }

    fn measure(cfg: &Configuration) -> Measurement {
        let t = 1.0 + ((cfg[0] - 13).pow(2) + (cfg[1] - 27).pow(2)) as f64;
        Measurement {
            time_s: t,
            energy_j: 100.0 - t.min(99.0), // anti-correlated on purpose
        }
    }

    #[test]
    fn finds_near_optimal_configuration() {
        let tuner = Tuner::new(space(), Objective::Time, 1);
        let (outcome, _) = tuner.run(400, measure);
        assert!(
            outcome.best_measurement.time_s <= 10.0,
            "best {:?} -> {}",
            outcome.best,
            outcome.best_measurement.time_s
        );
    }

    #[test]
    fn history_length_equals_budget() {
        let tuner = Tuner::new(space(), Objective::Time, 2);
        let (outcome, _) = tuner.run(50, measure);
        assert_eq!(outcome.history.len(), 50);
    }

    #[test]
    fn best_so_far_is_monotone() {
        let tuner = Tuner::new(space(), Objective::Time, 3);
        let (outcome, _) = tuner.run(100, measure);
        let curve = outcome.history.best_so_far_curve();
        assert!(curve.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn database_reuse_avoids_reprofiling() {
        let mut profiled = 0usize;
        let tuner = Tuner::new(space(), Objective::Time, 4);
        let (_, db) = tuner.run(200, |c| {
            profiled += 1;
            measure(c)
        });
        let measured_once = profiled;
        assert_eq!(db.len(), measured_once);

        // Re-tune under energy with the old database: only genuinely new
        // configurations get profiled.
        let mut new_profiles = 0usize;
        let tuner2 = Tuner::new(space(), Objective::Energy, 4).with_database(db);
        let (outcome2, _) = tuner2.run(200, |c| {
            new_profiles += 1;
            measure(c)
        });
        assert!(new_profiles < 200);
        // Energy mode must pick a *different* kind of winner than time mode
        // (the objectives are anti-correlated).
        assert!(outcome2.best_measurement.energy_j < 70.0);
    }

    #[test]
    fn different_seeds_may_find_different_paths() {
        let (o1, _) = Tuner::new(space(), Objective::Time, 10).run(30, measure);
        let (o2, _) = Tuner::new(space(), Objective::Time, 20).run(30, measure);
        // Histories differ (the search is seeded-nondeterministic)…
        let h1: Vec<_> = o1.history.trials().map(|(c, _, _)| c.clone()).collect();
        let h2: Vec<_> = o2.history.trials().map(|(c, _, _)| c.clone()).collect();
        assert_ne!(h1, h2);
    }

    #[test]
    fn seed_configs_evaluated_first() {
        let tuner = Tuner::new(space(), Objective::Time, 5)
            .with_seed_configs(vec![vec![13, 27], vec![0, 0]]);
        let (outcome, _) = tuner.run(10, measure);
        let trials: Vec<_> = outcome
            .history
            .trials()
            .map(|(c, _, _)| c.clone())
            .collect();
        assert_eq!(trials[0], vec![13, 27]);
        assert_eq!(trials[1], vec![0, 0]);
        // The optimum was seeded: the tuner can't do worse.
        assert_eq!(outcome.best_measurement.time_s, 1.0);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let (o1, _) = Tuner::new(space(), Objective::Time, 7).run(60, measure);
        let (o2, _) = Tuner::new(space(), Objective::Time, 7).run(60, measure);
        assert_eq!(o1.best, o2.best);
        assert_eq!(
            o1.history.best_so_far_curve(),
            o2.history.best_so_far_curve()
        );
    }
}
