//! The tuning loop.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::bandit::AucBandit;
use crate::history::{History, Measurement, ResultsDatabase};
use crate::param::{Configuration, SearchSpace};
use crate::technique::{
    DifferentialEvolution, GeneticAlgorithm, GreedyMutation, PatternSearch, RandomSearch, Technique,
};

/// What the tuner minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimize execution time (the paper's default mode).
    Time,
    /// Minimize system-wide energy (the paper's energy mode, Figure 15).
    Energy,
}

impl Objective {
    /// Extract the objective value from a measurement.
    pub fn of(self, m: &Measurement) -> f64 {
        match self {
            Objective::Time => m.time_s,
            Objective::Energy => m.energy_j,
        }
    }
}

/// A snapshot of one ask/tell generation, handed to the observer installed
/// with [`Tuner::with_telemetry`] right after the generation's results are
/// reported. The fields mirror what OpenTuner logs per "desired result"
/// batch and are what `stats-report`/`figures` surface for tuning runs.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationTelemetry {
    /// Zero-based generation index.
    pub generation: usize,
    /// Trials charged against the budget this generation.
    pub trials: usize,
    /// Configurations actually profiled (not answered by the database).
    pub evaluated: usize,
    /// Trials answered from the results database without re-profiling.
    pub cached: usize,
    /// Best objective value seen so far (lower is better).
    pub best_objective: f64,
}

/// A boxed per-generation observer (see [`Tuner::with_telemetry`]).
pub type TelemetryObserver = Box<dyn FnMut(&GenerationTelemetry)>;

/// The result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuningOutcome {
    /// The best configuration found.
    pub best: Configuration,
    /// Its measurement.
    pub best_measurement: Measurement,
    /// The full trial history (convergence analysis, Figure 20).
    pub history: History,
}

/// Drives the search: asks the technique portfolio for configurations,
/// measures them (through a user-supplied profiler function), and keeps the
/// results database.
pub struct Tuner {
    space: SearchSpace,
    objective: Objective,
    bandit: AucBandit,
    rng: SmallRng,
    database: ResultsDatabase,
    seed_configs: Vec<Configuration>,
    telemetry: Option<TelemetryObserver>,
}

impl Tuner {
    /// Create a tuner over `space` with the default OpenTuner-style
    /// portfolio, seeded deterministically.
    ///
    /// The paper notes the autotuner itself "uses nondeterminism for better
    /// exploration; different searches for the same program may find
    /// different best configurations" — different `seed`s reproduce that.
    pub fn new(space: SearchSpace, objective: Objective, seed: u64) -> Self {
        let bandit = AucBandit::new(vec![
            Box::new(RandomSearch),
            Box::new(GreedyMutation::default()),
            Box::new(GeneticAlgorithm::default()),
            Box::new(DifferentialEvolution::default()),
            Box::new(PatternSearch::default()),
        ]);
        Tuner {
            space,
            objective,
            bandit,
            rng: SmallRng::seed_from_u64(seed),
            database: ResultsDatabase::new(),
            seed_configs: Vec::new(),
            telemetry: None,
        }
    }

    /// Evaluate these configurations first (repaired into the space), the
    /// way OpenTuner seeds a search with the program's default
    /// configuration. Guarantees the result is never worse than the best
    /// seed.
    pub fn with_seed_configs(mut self, seeds: Vec<Configuration>) -> Self {
        self.seed_configs = seeds;
        self
    }

    /// Seed the database with already-measured configurations (reuse of a
    /// previous exploration under a different objective).
    pub fn with_database(mut self, database: ResultsDatabase) -> Self {
        self.database = database;
        self
    }

    /// Install an observer called once per ask/tell generation (after the
    /// generation's results are reported) with a [`GenerationTelemetry`]
    /// snapshot. Purely observational: the search trajectory is identical
    /// with or without an observer, under both runners.
    pub fn with_telemetry(mut self, observer: impl FnMut(&GenerationTelemetry) + 'static) -> Self {
        self.telemetry = Some(Box::new(observer));
        self
    }

    /// The search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Size of one ask/tell generation: how many configurations are
    /// proposed before any of their results is reported back.
    ///
    /// The serial and parallel runners both step in generations of exactly
    /// this size (independent of worker count), which is what makes
    /// [`Tuner::run`] and [`Tuner::run_parallel`] produce bit-identical
    /// histories for the same seed.
    pub const GENERATION: usize = 8;

    /// Run `budget` trials, measuring each proposed configuration with
    /// `profile`. Cached configurations are *not* re-profiled (the database
    /// answers), but still count as trials — matching how OpenTuner reuses
    /// its results database.
    ///
    /// Proposals are made in fixed-size generations ([`Tuner::GENERATION`])
    /// through the batched ask/tell interface; within a generation a
    /// duplicate of an already-profiled configuration is profiled once.
    ///
    /// Returns the outcome and the (grown) database for reuse.
    pub fn run(
        self,
        budget: usize,
        mut profile: impl FnMut(&Configuration) -> Measurement,
    ) -> (TuningOutcome, ResultsDatabase) {
        self.run_generations(budget, |todo| todo.iter().map(&mut profile).collect())
    }

    /// [`Tuner::run`] with each generation's profile runs spread over
    /// `workers` scoped threads.
    ///
    /// Results are merged back in proposal order, so for a pure `profile`
    /// function the outcome — best configuration, convergence curve, full
    /// trial history, database — is bit-identical to the serial
    /// [`Tuner::run`] with the same seed, for any worker count.
    pub fn run_parallel(
        self,
        budget: usize,
        workers: usize,
        profile: impl Fn(&Configuration) -> Measurement + Sync,
    ) -> (TuningOutcome, ResultsDatabase) {
        let workers = workers.max(1);
        self.run_generations(budget, |todo| {
            if workers == 1 || todo.len() <= 1 {
                todo.iter().map(&profile).collect()
            } else {
                profile_concurrently(todo, workers, &profile)
            }
        })
    }

    /// The generational ask/tell loop shared by the serial and parallel
    /// runners. `evaluate` receives the deduplicated, not-yet-measured
    /// configurations of one generation (in first-proposal order) and must
    /// return one measurement per configuration, in the same order.
    fn run_generations(
        mut self,
        budget: usize,
        mut evaluate: impl FnMut(&[Configuration]) -> Vec<Measurement>,
    ) -> (TuningOutcome, ResultsDatabase) {
        assert!(budget > 0, "budget must be at least one trial");
        let mut history = History::new();
        let mut seeds = std::mem::take(&mut self.seed_configs).into_iter();
        let mut telemetry = self.telemetry.take();
        let mut generation = 0usize;
        let mut remaining = budget;
        while remaining > 0 {
            let gen_size = remaining.min(Self::GENERATION);
            remaining -= gen_size;

            // Ask: seed configurations first, then one batch from the
            // technique portfolio — no results reported in between.
            let mut cfgs: Vec<Configuration> = Vec::with_capacity(gen_size);
            while cfgs.len() < gen_size {
                match seeds.next() {
                    Some(seed) => cfgs.push(self.space.repair(&seed)),
                    None => break,
                }
            }
            let need = gen_size - cfgs.len();
            if need > 0 {
                for cfg in self.bandit.propose_batch(&self.space, &mut self.rng, need) {
                    cfgs.push(self.space.repair(&cfg));
                }
            }

            // Evaluate: only configurations the database cannot answer,
            // each at most once per generation (hash-set dedup; the old
            // `todo.contains` scan was quadratic in the generation size).
            let mut seen: std::collections::HashSet<&Configuration> =
                std::collections::HashSet::with_capacity(cfgs.len());
            let mut todo: Vec<Configuration> = Vec::new();
            for cfg in &cfgs {
                if self.database.get(cfg).is_none() && seen.insert(cfg) {
                    todo.push(cfg.clone());
                }
            }
            drop(seen);
            let measurements = evaluate(&todo);
            assert_eq!(
                measurements.len(),
                todo.len(),
                "evaluate must return one measurement per configuration"
            );
            let measured = todo.len();
            for (cfg, m) in todo.into_iter().zip(measurements) {
                self.database.insert(cfg, m);
            }

            // Tell: report results in proposal order, making the history
            // independent of evaluation order (and hence worker count).
            let evaluated = measured;
            for cfg in cfgs {
                let m = self.database.get(&cfg).expect("inserted above").clone();
                let o = self.objective.of(&m);
                self.bandit.report(&cfg, o);
                history.record(cfg, m, o);
            }

            if let Some(observe) = telemetry.as_mut() {
                let (_, _, best_objective) = history.best().expect("generation recorded trials");
                observe(&GenerationTelemetry {
                    generation,
                    trials: gen_size,
                    evaluated,
                    cached: gen_size - evaluated,
                    best_objective,
                });
            }
            generation += 1;
        }
        let (best, best_m, _) = history.best().expect("budget must be at least one trial");
        let outcome = TuningOutcome {
            best: best.clone(),
            best_measurement: best_m.clone(),
            history,
        };
        (outcome, self.database)
    }
}

/// Profile `todo` with `workers` scoped threads pulling indices from a
/// shared cursor, then reassemble the measurements by index.
fn profile_concurrently(
    todo: &[Configuration],
    workers: usize,
    profile: &(impl Fn(&Configuration) -> Measurement + Sync),
) -> Vec<Measurement> {
    // A mutexed cursor, not an atomic: this crate has no dependency on the
    // stats-core `sync` facade, and CI's memory-ordering gate funnels every
    // raw atomic import in the workspace through that facade.
    let next = std::sync::Mutex::new(0usize);
    let mut out: Vec<Option<Measurement>> = vec![None; todo.len()];
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers.min(todo.len()))
            .map(|_| {
                let next = &next;
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = {
                            let mut cursor = next.lock().expect("cursor poisoned");
                            let i = *cursor;
                            *cursor += 1;
                            i
                        };
                        if i >= todo.len() {
                            break;
                        }
                        local.push((i, profile(&todo[i])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (i, m) in handle.join().expect("profile worker panicked") {
                out[i] = Some(m);
            }
        }
    });
    out.into_iter()
        .map(|m| m.expect("every index profiled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::IntegerParameter;

    fn space() -> SearchSpace {
        SearchSpace::new()
            .with(IntegerParameter::new("x", 0, 40))
            .with(IntegerParameter::new("y", 0, 40))
    }

    fn measure(cfg: &Configuration) -> Measurement {
        let t = 1.0 + ((cfg[0] - 13).pow(2) + (cfg[1] - 27).pow(2)) as f64;
        Measurement {
            time_s: t,
            energy_j: 100.0 - t.min(99.0), // anti-correlated on purpose
        }
    }

    #[test]
    fn finds_near_optimal_configuration() {
        let tuner = Tuner::new(space(), Objective::Time, 1);
        let (outcome, _) = tuner.run(400, measure);
        assert!(
            outcome.best_measurement.time_s <= 10.0,
            "best {:?} -> {}",
            outcome.best,
            outcome.best_measurement.time_s
        );
    }

    #[test]
    fn history_length_equals_budget() {
        let tuner = Tuner::new(space(), Objective::Time, 2);
        let (outcome, _) = tuner.run(50, measure);
        assert_eq!(outcome.history.len(), 50);
    }

    #[test]
    fn best_so_far_is_monotone() {
        let tuner = Tuner::new(space(), Objective::Time, 3);
        let (outcome, _) = tuner.run(100, measure);
        let curve = outcome.history.best_so_far_curve();
        assert!(curve.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn database_reuse_avoids_reprofiling() {
        let mut profiled = 0usize;
        let tuner = Tuner::new(space(), Objective::Time, 4);
        let (_, db) = tuner.run(200, |c| {
            profiled += 1;
            measure(c)
        });
        let measured_once = profiled;
        assert_eq!(db.len(), measured_once);

        // Re-tune under energy with the old database: only genuinely new
        // configurations get profiled.
        let mut new_profiles = 0usize;
        let tuner2 = Tuner::new(space(), Objective::Energy, 4).with_database(db);
        let (outcome2, _) = tuner2.run(200, |c| {
            new_profiles += 1;
            measure(c)
        });
        assert!(new_profiles < 200);
        // Energy mode must pick a *different* kind of winner than time mode
        // (the objectives are anti-correlated).
        assert!(outcome2.best_measurement.energy_j < 70.0);
    }

    #[test]
    fn different_seeds_may_find_different_paths() {
        let (o1, _) = Tuner::new(space(), Objective::Time, 10).run(30, measure);
        let (o2, _) = Tuner::new(space(), Objective::Time, 20).run(30, measure);
        // Histories differ (the search is seeded-nondeterministic)…
        let h1: Vec<_> = o1.history.trials().map(|(c, _, _)| c.clone()).collect();
        let h2: Vec<_> = o2.history.trials().map(|(c, _, _)| c.clone()).collect();
        assert_ne!(h1, h2);
    }

    #[test]
    fn seed_configs_evaluated_first() {
        let tuner = Tuner::new(space(), Objective::Time, 5)
            .with_seed_configs(vec![vec![13, 27], vec![0, 0]]);
        let (outcome, _) = tuner.run(10, measure);
        let trials: Vec<_> = outcome
            .history
            .trials()
            .map(|(c, _, _)| c.clone())
            .collect();
        assert_eq!(trials[0], vec![13, 27]);
        assert_eq!(trials[1], vec![0, 0]);
        // The optimum was seeded: the tuner can't do worse.
        assert_eq!(outcome.best_measurement.time_s, 1.0);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let (o1, _) = Tuner::new(space(), Objective::Time, 7).run(60, measure);
        let (o2, _) = Tuner::new(space(), Objective::Time, 7).run(60, measure);
        assert_eq!(o1.best, o2.best);
        assert_eq!(
            o1.history.best_so_far_curve(),
            o2.history.best_so_far_curve()
        );
    }

    proptest::proptest! {
        /// The determinism guarantee: for a pure profile function and equal
        /// seeds, the parallel runner reproduces the serial runner's best
        /// configuration, convergence curve, and full trial history — for
        /// any worker count.
        #[test]
        fn parallel_matches_serial_bit_for_bit(seed in 0u64..512, budget in 1usize..70) {
            let (serial, serial_db) = Tuner::new(space(), Objective::Time, seed).run(budget, measure);
            for workers in [1usize, 2, 8] {
                let (par, par_db) = Tuner::new(space(), Objective::Time, seed)
                    .run_parallel(budget, workers, measure);
                proptest::prop_assert_eq!(&par.best, &serial.best);
                proptest::prop_assert_eq!(
                    par.history.best_so_far_curve(),
                    serial.history.best_so_far_curve()
                );
                let st: Vec<_> = serial.history.trials().collect();
                let pt: Vec<_> = par.history.trials().collect();
                proptest::prop_assert_eq!(pt, st);
                proptest::prop_assert_eq!(par_db.len(), serial_db.len());
            }
        }
    }

    #[test]
    fn telemetry_reports_every_generation() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let seen: Rc<RefCell<Vec<GenerationTelemetry>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        let tuner = Tuner::new(space(), Objective::Time, 7)
            .with_telemetry(move |t| sink.borrow_mut().push(t.clone()));
        let (outcome, _) = tuner.run(50, measure);
        let seen = seen.borrow();

        // 50 trials in generations of 8: six full generations plus one of 2.
        assert_eq!(seen.len(), 50usize.div_ceil(Tuner::GENERATION));
        assert_eq!(seen.iter().map(|t| t.trials).sum::<usize>(), 50);
        for (i, t) in seen.iter().enumerate() {
            assert_eq!(t.generation, i);
            assert_eq!(t.evaluated + t.cached, t.trials);
        }
        // The running best is monotone and ends at the outcome's best.
        assert!(seen
            .windows(2)
            .all(|w| w[1].best_objective <= w[0].best_objective));
        let last = seen.last().unwrap();
        assert_eq!(
            last.best_objective,
            Objective::Time.of(&outcome.best_measurement)
        );

        // Observation is pure: the trajectory matches an unobserved run.
        let (plain, _) = Tuner::new(space(), Objective::Time, 7).run(50, measure);
        assert_eq!(plain.best, outcome.best);
        assert_eq!(
            plain.history.best_so_far_curve(),
            outcome.history.best_so_far_curve()
        );
    }

    #[test]
    fn telemetry_counts_database_hits_as_cached() {
        use std::cell::RefCell;
        use std::rc::Rc;
        // Pre-measure everything, then re-tune on the warm database: every
        // trial answered by the database must show up as cached.
        let (_, db) = Tuner::new(space(), Objective::Time, 9).run(64, measure);
        let seen: Rc<RefCell<Vec<GenerationTelemetry>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        let tuner = Tuner::new(space(), Objective::Time, 9)
            .with_database(db)
            .with_telemetry(move |t| sink.borrow_mut().push(t.clone()));
        let (_, _) = tuner.run(64, measure);
        let seen = seen.borrow();
        let cached: usize = seen.iter().map(|t| t.cached).sum();
        assert_eq!(cached, 64, "warm database answers every repeated trial");
    }

    #[test]
    fn parallel_respects_seed_configs_and_database() {
        let seeds = vec![vec![13, 27], vec![0, 0]];
        let (serial, db) = Tuner::new(space(), Objective::Time, 5)
            .with_seed_configs(seeds.clone())
            .run(20, measure);
        let (par, _) = Tuner::new(space(), Objective::Time, 5)
            .with_seed_configs(seeds)
            .with_database(db)
            .run_parallel(20, 4, measure);
        // Same seed configs first, same best; the pre-filled database only
        // removes profile runs, never changes the history.
        assert_eq!(par.best, serial.best);
        let first: Vec<_> = par
            .history
            .trials()
            .take(2)
            .map(|(c, _, _)| c.clone())
            .collect();
        assert_eq!(first, vec![vec![13, 27], vec![0, 0]]);
    }

    #[test]
    fn parallel_profiles_each_unique_config_once() {
        use std::collections::HashMap;
        use std::sync::Mutex;
        let counts: Mutex<HashMap<Configuration, usize>> = Mutex::new(HashMap::new());
        let (_, db) = Tuner::new(space(), Objective::Time, 11).run_parallel(120, 8, |c| {
            *counts.lock().unwrap().entry(c.clone()).or_insert(0) += 1;
            measure(c)
        });
        let counts = counts.into_inner().unwrap();
        assert!(
            counts.values().all(|&n| n == 1),
            "a configuration was re-profiled"
        );
        assert_eq!(counts.len(), db.len());
    }
}
