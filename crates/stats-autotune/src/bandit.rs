//! The AUC bandit meta-technique (OpenTuner's default ensemble driver).
//!
//! OpenTuner allocates trials among its techniques with a multi-armed bandit
//! whose exploitation term is the *area under the curve* of each technique's
//! recent successes: a technique earns credit when its proposal improves on
//! the best-so-far, with more recent successes weighted more heavily, over a
//! sliding history window. An exploration bonus `sqrt(2 ln t / n_i)` keeps
//! starved techniques alive.

use std::collections::VecDeque;

use rand::rngs::SmallRng;

use crate::param::{Configuration, SearchSpace};
use crate::technique::Technique;

/// Sliding-window AUC credit-assignment bandit over a technique portfolio.
pub struct AucBandit {
    techniques: Vec<Box<dyn Technique>>,
    /// Sliding window of (technique index, was-improvement) pairs.
    window: Vec<(usize, bool)>,
    window_len: usize,
    uses: Vec<u64>,
    total_uses: u64,
    exploration: f64,
    /// Technique indices of proposals whose results have not been reported
    /// yet, in proposal order. Batched asks enqueue several entries; each
    /// report pops the oldest, so credit lands on the right proposer even
    /// when a whole generation is in flight.
    pending: VecDeque<usize>,
    best: f64,
}

impl AucBandit {
    /// Build a bandit over `techniques` with OpenTuner's defaults
    /// (window of 100 trials, exploration weight `C = 0.05`).
    pub fn new(techniques: Vec<Box<dyn Technique>>) -> Self {
        assert!(
            !techniques.is_empty(),
            "bandit needs at least one technique"
        );
        let n = techniques.len();
        AucBandit {
            techniques,
            window: Vec::new(),
            window_len: 100,
            uses: vec![0; n],
            total_uses: 0,
            exploration: 0.05,
            pending: VecDeque::new(),
            best: f64::INFINITY,
        }
    }

    /// Names of the portfolio techniques, in index order.
    pub fn technique_names(&self) -> Vec<&str> {
        self.techniques.iter().map(|t| t.name()).collect()
    }

    /// AUC score of technique `i`: recency-weighted fraction of window
    /// entries where the technique improved the best-so-far.
    fn auc(&self, i: usize) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for (age, &(t, improved)) in self.window.iter().rev().enumerate() {
            let weight = (self.window_len - age.min(self.window_len)) as f64;
            if t == i {
                den += weight;
                if improved {
                    num += weight;
                }
            }
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }

    fn select(&self) -> usize {
        let t = (self.total_uses + 1) as f64;
        let mut best_i = 0;
        let mut best_score = f64::NEG_INFINITY;
        for i in 0..self.techniques.len() {
            let bonus = if self.uses[i] == 0 {
                f64::INFINITY // every technique gets tried at least once
            } else {
                self.exploration * (2.0 * t.ln() / self.uses[i] as f64).sqrt()
            };
            let score = self.auc(i) + bonus;
            if score > best_score {
                best_score = score;
                best_i = i;
            }
        }
        best_i
    }
}

impl Technique for AucBandit {
    fn name(&self) -> &str {
        "auc-bandit"
    }

    fn propose(&mut self, space: &SearchSpace, rng: &mut SmallRng) -> Configuration {
        let i = self.select();
        self.pending.push_back(i);
        self.uses[i] += 1;
        self.total_uses += 1;
        self.techniques[i].propose(space, rng)
    }

    fn report(&mut self, cfg: &Configuration, objective: f64) {
        let improved = objective < self.best;
        self.best = self.best.min(objective);
        if let Some(i) = self.pending.pop_front() {
            self.window.push((i, improved));
            if self.window.len() > self.window_len {
                self.window.remove(0);
            }
        }
        // Every technique learns from every result (OpenTuner shares the
        // results database among techniques).
        for t in &mut self.techniques {
            t.report(cfg, objective);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::IntegerParameter;
    use crate::technique::{GreedyMutation, RandomSearch};
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::new().with(IntegerParameter::new("x", 0, 100))
    }

    #[test]
    fn tries_every_technique_at_least_once() {
        let mut bandit = AucBandit::new(vec![
            Box::new(RandomSearch),
            Box::new(GreedyMutation::default()),
        ]);
        let s = space();
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..10 {
            let cfg = bandit.propose(&s, &mut rng);
            bandit.report(&cfg, cfg[0] as f64);
        }
        assert!(bandit.uses.iter().all(|&u| u > 0));
    }

    #[test]
    fn favors_the_productive_technique() {
        /// A technique that always proposes the optimum.
        struct Oracle;
        impl Technique for Oracle {
            fn name(&self) -> &str {
                "oracle"
            }
            fn propose(&mut self, _s: &SearchSpace, _r: &mut SmallRng) -> Configuration {
                vec![0]
            }
            fn report(&mut self, _c: &Configuration, _o: f64) {}
        }
        /// A technique that always proposes the worst point.
        struct Adversary;
        impl Technique for Adversary {
            fn name(&self) -> &str {
                "adversary"
            }
            fn propose(&mut self, _s: &SearchSpace, _r: &mut SmallRng) -> Configuration {
                vec![100]
            }
            fn report(&mut self, _c: &Configuration, _o: f64) {}
        }

        let mut bandit = AucBandit::new(vec![Box::new(Oracle), Box::new(Adversary)]);
        let s = space();
        let mut rng = SmallRng::seed_from_u64(0);
        for trial in 0..60 {
            let cfg = bandit.propose(&s, &mut rng);
            // Strictly decreasing objective for the oracle keeps "improved"
            // flowing; the adversary never improves.
            let o = cfg[0] as f64 - trial as f64 * 0.001;
            bandit.report(&cfg, o);
        }
        assert!(
            bandit.uses[0] > 2 * bandit.uses[1],
            "oracle {} vs adversary {}",
            bandit.uses[0],
            bandit.uses[1]
        );
    }

    #[test]
    #[should_panic(expected = "at least one technique")]
    fn empty_portfolio_rejected() {
        AucBandit::new(vec![]);
    }

    #[test]
    fn batched_proposals_attribute_in_fifo_order() {
        let mut bandit = AucBandit::new(vec![
            Box::new(RandomSearch),
            Box::new(GreedyMutation::default()),
        ]);
        let s = space();
        let mut rng = SmallRng::seed_from_u64(3);
        let batch = bandit.propose_batch(&s, &mut rng, 6);
        assert_eq!(batch.len(), 6);
        let order: Vec<usize> = bandit.pending.iter().copied().collect();
        assert_eq!(order.len(), 6);
        for cfg in &batch {
            bandit.report(cfg, cfg[0] as f64);
        }
        assert!(bandit.pending.is_empty());
        // Window entries carry the proposers in the same FIFO order.
        let attributed: Vec<usize> = bandit.window.iter().map(|&(t, _)| t).collect();
        assert_eq!(attributed, order);
    }

    #[test]
    fn proposals_are_legal() {
        let mut bandit = AucBandit::new(vec![
            Box::new(RandomSearch),
            Box::new(GreedyMutation::default()),
        ]);
        let s = space();
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..50 {
            let cfg = bandit.propose(&s, &mut rng);
            assert!(s.contains(&cfg));
            bandit.report(&cfg, cfg[0] as f64);
        }
    }
}
