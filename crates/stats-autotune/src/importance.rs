//! Parameter-importance analysis over an exploration history.
//!
//! After a search, developers want to know *which* state-space dimensions
//! mattered (the paper's Figure 18 asks the same question for tradeoffs,
//! by ablation). This module answers it from data already collected: for
//! each dimension, the fraction of the objective's variance explained by
//! grouping the trials on that dimension's value (the correlation ratio
//! η², a standard one-way ANOVA effect size).

use std::collections::HashMap;

use crate::history::History;

/// Importance of one dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct DimensionImportance {
    /// Dimension index in configuration order.
    pub dim: usize,
    /// Fraction of objective variance explained by this dimension's value
    /// (0 = irrelevant, 1 = fully determines the objective).
    pub eta_squared: f64,
    /// Distinct values observed.
    pub distinct_values: usize,
}

/// Compute per-dimension importances from a trial history.
///
/// Returns one entry per dimension, sorted most-important first. Histories
/// with fewer than 2 trials (or zero objective variance) report zero
/// importance everywhere.
pub fn parameter_importance(history: &History) -> Vec<DimensionImportance> {
    let trials: Vec<(&Vec<i64>, f64)> = history.trials().map(|(c, _, o)| (c, o)).collect();
    let n = trials.len();
    let dims = trials.first().map(|(c, _)| c.len()).unwrap_or(0);
    let mean = trials.iter().map(|(_, o)| o).sum::<f64>() / n.max(1) as f64;
    let total_ss: f64 = trials.iter().map(|(_, o)| (o - mean).powi(2)).sum();

    let mut out = Vec::with_capacity(dims);
    for dim in 0..dims {
        let mut groups: HashMap<i64, (f64, usize)> = HashMap::new();
        for (cfg, o) in &trials {
            let e = groups.entry(cfg[dim]).or_insert((0.0, 0));
            e.0 += o;
            e.1 += 1;
        }
        let between_ss: f64 = groups
            .values()
            .map(|(sum, count)| {
                let gm = sum / *count as f64;
                *count as f64 * (gm - mean).powi(2)
            })
            .sum();
        let eta_squared = if total_ss > 1e-12 && n >= 2 {
            (between_ss / total_ss).clamp(0.0, 1.0)
        } else {
            0.0
        };
        out.push(DimensionImportance {
            dim,
            eta_squared,
            distinct_values: groups.len(),
        });
    }
    out.sort_by(|a, b| b.eta_squared.total_cmp(&a.eta_squared));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::Measurement;

    fn record(h: &mut History, cfg: Vec<i64>, o: f64) {
        h.record(
            cfg,
            Measurement {
                time_s: o,
                energy_j: 0.0,
            },
            o,
        );
    }

    #[test]
    fn decisive_dimension_ranks_first() {
        // Objective depends entirely on dim 0; dim 1 is irrelevant filler.
        let mut h = History::new();
        for x in 0..10 {
            for y in 0..3 {
                record(&mut h, vec![x, y], (x * x) as f64);
            }
        }
        let imp = parameter_importance(&h);
        assert_eq!(imp[0].dim, 0);
        assert!(imp[0].eta_squared > 0.99, "{imp:?}");
        let dim1 = imp.iter().find(|i| i.dim == 1).unwrap();
        assert!(dim1.eta_squared < 0.01, "{imp:?}");
    }

    #[test]
    fn shared_influence_splits_importance() {
        let mut h = History::new();
        for x in 0..6 {
            for y in 0..6 {
                record(&mut h, vec![x, y], (x + y) as f64);
            }
        }
        let imp = parameter_importance(&h);
        // Symmetric roles: comparable eta^2, each well below 1.
        assert!((imp[0].eta_squared - imp[1].eta_squared).abs() < 0.05);
        assert!(imp[0].eta_squared > 0.3 && imp[0].eta_squared < 0.7);
    }

    #[test]
    fn degenerate_histories_are_zero() {
        let h = History::new();
        assert!(parameter_importance(&h).is_empty());

        let mut one = History::new();
        record(&mut one, vec![1, 2], 5.0);
        for d in parameter_importance(&one) {
            assert_eq!(d.eta_squared, 0.0);
        }

        // Constant objective: nothing to explain.
        let mut flat = History::new();
        for x in 0..5 {
            record(&mut flat, vec![x], 3.0);
        }
        assert_eq!(parameter_importance(&flat)[0].eta_squared, 0.0);
    }

    #[test]
    fn distinct_value_counts() {
        let mut h = History::new();
        record(&mut h, vec![1, 9], 1.0);
        record(&mut h, vec![1, 8], 2.0);
        record(&mut h, vec![2, 9], 3.0);
        let imp = parameter_importance(&h);
        let d0 = imp.iter().find(|i| i.dim == 0).unwrap();
        let d1 = imp.iter().find(|i| i.dim == 1).unwrap();
        assert_eq!(d0.distinct_values, 2);
        assert_eq!(d1.distinct_values, 2);
    }
}
