//! Enumerable parameters and the search space they span.
//!
//! The paper describes every state-space dimension with OpenTuner's
//! `IntegerParameter` ("the values of a tradeoff can always be enumerated");
//! we keep the same shape.

use rand::rngs::SmallRng;
use rand::Rng;

/// One enumerable dimension: an inclusive integer range `lo..=hi`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegerParameter {
    /// Dimension name (e.g. `"group_size"` or a tradeoff's name).
    pub name: String,
    /// Smallest legal value.
    pub lo: i64,
    /// Largest legal value.
    pub hi: i64,
}

impl IntegerParameter {
    /// Create a parameter over `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(name: impl Into<String>, lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty parameter range");
        IntegerParameter {
            name: name.into(),
            lo,
            hi,
        }
    }

    /// Number of legal values.
    pub fn cardinality(&self) -> u64 {
        (self.hi - self.lo) as u64 + 1
    }

    /// Clamp `v` into the legal range.
    pub fn clamp(&self, v: i64) -> i64 {
        v.clamp(self.lo, self.hi)
    }

    /// Draw a uniform legal value.
    pub fn sample(&self, rng: &mut SmallRng) -> i64 {
        rng.random_range(self.lo..=self.hi)
    }
}

/// A point in the search space: one value per parameter, in parameter order.
pub type Configuration = Vec<i64>;

/// The full state space: an ordered list of parameters.
#[derive(Debug, Clone, Default)]
pub struct SearchSpace {
    params: Vec<IntegerParameter>,
}

impl SearchSpace {
    /// An empty space (its only configuration is the empty vector).
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a parameter (builder style).
    pub fn with(mut self, param: IntegerParameter) -> Self {
        self.params.push(param);
        self
    }

    /// Append a parameter.
    pub fn push(&mut self, param: IntegerParameter) {
        self.params.push(param);
    }

    /// The parameters, in configuration order.
    pub fn params(&self) -> &[IntegerParameter] {
        &self.params
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.params.len()
    }

    /// Total number of points (saturating).
    pub fn cardinality(&self) -> u64 {
        self.params
            .iter()
            .map(IntegerParameter::cardinality)
            .fold(1u64, |acc, c| acc.saturating_mul(c))
    }

    /// Whether `cfg` is a legal point of this space.
    pub fn contains(&self, cfg: &Configuration) -> bool {
        cfg.len() == self.params.len()
            && cfg
                .iter()
                .zip(&self.params)
                .all(|(&v, p)| (p.lo..=p.hi).contains(&v))
    }

    /// Clamp every coordinate of `cfg` into its legal range, truncating or
    /// extending (with each parameter's `lo`) to the right dimensionality.
    pub fn repair(&self, cfg: &Configuration) -> Configuration {
        self.params
            .iter()
            .enumerate()
            .map(|(i, p)| p.clamp(cfg.get(i).copied().unwrap_or(p.lo)))
            .collect()
    }

    /// Draw a uniform random point.
    pub fn sample(&self, rng: &mut SmallRng) -> Configuration {
        self.params.iter().map(|p| p.sample(rng)).collect()
    }

    /// The configuration with every parameter at its lower bound.
    pub fn origin(&self) -> Configuration {
        self.params.iter().map(|p| p.lo).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::new()
            .with(IntegerParameter::new("a", 0, 9))
            .with(IntegerParameter::new("b", -3, 3))
    }

    #[test]
    fn cardinality() {
        assert_eq!(space().cardinality(), 70);
        assert_eq!(SearchSpace::new().cardinality(), 1);
    }

    #[test]
    fn contains_and_repair() {
        let s = space();
        assert!(s.contains(&vec![0, 0]));
        assert!(!s.contains(&vec![10, 0]));
        assert!(!s.contains(&vec![0]));
        assert_eq!(s.repair(&vec![100, -100]), vec![9, -3]);
        assert_eq!(s.repair(&vec![5]), vec![5, -3]);
    }

    #[test]
    fn samples_are_legal() {
        let s = space();
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..200 {
            assert!(s.contains(&s.sample(&mut rng)));
        }
    }

    #[test]
    #[should_panic(expected = "empty parameter range")]
    fn inverted_range_rejected() {
        IntegerParameter::new("x", 2, 1);
    }

    #[test]
    fn saturating_cardinality() {
        let mut s = SearchSpace::new();
        for i in 0..10 {
            s.push(IntegerParameter::new(
                format!("p{i}"),
                i64::MIN / 2,
                i64::MAX / 2,
            ));
        }
        assert_eq!(s.cardinality(), u64::MAX);
    }
}
