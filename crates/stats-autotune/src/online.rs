//! Online re-tuning: the bandit portfolio driving a live stream.
//!
//! The paper's autotuner explores offline, against the profiler; this
//! module closes the loop *online*. [`OnlineTuner`] implements
//! `stats-core`'s [`Retuner`] hook: between stream segments it folds the
//! engine's live commit/abort telemetry into an objective, reports it to
//! the same [`AucBandit`] portfolio the offline tuner uses, and re-picks
//! the speculation operating point — group cardinality, auxiliary window,
//! re-execution budget — for the rest of the stream.
//!
//! The exploration is warm-started from, and folded back into, the
//! [`ResultsDatabase`] (the paper's stored-exploration reuse, §3.2): the
//! first decision replays the best configuration the database already
//! knows for this objective; every later decision comes from the bandit
//! and its measurement is inserted back, so successive runs keep getting
//! smarter. Re-tuning decisions applied by the engine are recorded in the
//! session's event stream, so a tuned run replays deterministically
//! *without* the database (`docs/replay.md`).
//!
//! The database stores [`Measurement`]s; online trials map onto them as
//! `time_s` = the wasted-work objective and `energy_j` = the abort
//! fraction, documented in `docs/tuning.md` — re-ranking under either
//! works the same way as for offline profiles.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use stats_core::{Retuner, SegmentStats, TuneDecision};

use crate::bandit::AucBandit;
use crate::history::{History, Measurement, ResultsDatabase};
use crate::param::{Configuration, IntegerParameter, SearchSpace};
use crate::technique::{GreedyMutation, RandomSearch, Technique};

/// How much one aborted segment adds to the objective, on top of the
/// wasted-work fraction it already causes. Aborts also squash committed
/// throughput, so they are penalized beyond their accounting cost.
const ABORT_PENALTY: f64 = 2.0;

/// A [`Retuner`] that re-picks the speculation operating point online with
/// the OpenTuner-style [`AucBandit`] portfolio.
///
/// ```
/// use stats_autotune::OnlineTuner;
/// use stats_core::{Retuner, SegmentStats, TuneDecision};
///
/// let mut tuner = OnlineTuner::new(42).every(2);
/// let stats = SegmentStats {
///     segment: 0,
///     inputs: 64,
///     aborted: false,
///     reexecutions: 1,
///     validations: 8,
///     committed_original_work: 60.0,
///     committed_aux_work: 6.0,
///     squashed_work: 0.0,
///     group_size: 8,
///     window: 2,
///     max_reexec: 3,
/// };
/// tuner.observe(&stats);
/// assert!(tuner.decide(1).is_none()); // period not yet elapsed
/// tuner.observe(&SegmentStats { segment: 1, ..stats });
/// let decision: TuneDecision = tuner.decide(2).unwrap();
/// assert!(decision.group_size >= 1);
/// ```
pub struct OnlineTuner {
    space: SearchSpace,
    group_sizes: Vec<usize>,
    windows: Vec<usize>,
    budgets: Vec<usize>,
    bandit: AucBandit,
    rng: SmallRng,
    every: u64,
    // Accumulated telemetry since the last decision.
    segments: u64,
    aborted: u64,
    committed_original: f64,
    committed_aux: f64,
    squashed: f64,
    // The configuration currently being measured; None before the first
    // decision (the stream runs the caller's configured operating point).
    current: Option<Configuration>,
    warm_started: bool,
    db: ResultsDatabase,
    history: History,
}

impl OnlineTuner {
    /// A tuner over the default candidate grids (group size 2–32, window
    /// 0–8, re-execution budget 1–4), deciding every 4 segments. The seed
    /// fixes the bandit's proposal stream, so a given telemetry sequence
    /// always produces the same decisions.
    pub fn new(seed: u64) -> Self {
        Self::with_candidates(
            vec![2, 4, 8, 16, 32],
            vec![0, 1, 2, 4, 8],
            vec![1, 2, 3, 4],
            seed,
        )
    }

    /// A tuner over explicit candidate grids. Each dimension becomes an
    /// enumerable [`IntegerParameter`] indexing into its grid — the same
    /// shape the offline tuner gives OpenTuner.
    ///
    /// # Panics
    ///
    /// Panics if any grid is empty.
    pub fn with_candidates(
        group_sizes: Vec<usize>,
        windows: Vec<usize>,
        budgets: Vec<usize>,
        seed: u64,
    ) -> Self {
        assert!(
            !group_sizes.is_empty() && !windows.is_empty() && !budgets.is_empty(),
            "candidate grids must be non-empty"
        );
        let space = SearchSpace::new()
            .with(IntegerParameter::new(
                "group_size",
                0,
                group_sizes.len() as i64 - 1,
            ))
            .with(IntegerParameter::new("window", 0, windows.len() as i64 - 1))
            .with(IntegerParameter::new(
                "max_reexec",
                0,
                budgets.len() as i64 - 1,
            ));
        OnlineTuner {
            space,
            group_sizes,
            windows,
            budgets,
            bandit: AucBandit::new(vec![
                Box::new(RandomSearch),
                Box::new(GreedyMutation::default()),
            ]),
            rng: SmallRng::seed_from_u64(seed),
            every: 4,
            segments: 0,
            aborted: 0,
            committed_original: 0.0,
            committed_aux: 0.0,
            squashed: 0.0,
            current: None,
            warm_started: false,
            db: ResultsDatabase::new(),
            history: History::new(),
        }
    }

    /// Re-decide every `segments` segments (clamped to >= 1).
    pub fn every(mut self, segments: u64) -> Self {
        self.every = segments.max(1);
        self
    }

    /// Warm-start from a previously saved exploration: the first decision
    /// replays the database's best configuration under the online
    /// objective (iterated in deterministic sorted order) instead of
    /// sampling blind; its measurements keep accumulating into the same
    /// database.
    pub fn warm_start(mut self, db: ResultsDatabase) -> Self {
        self.db = db;
        self
    }

    /// The exploration accumulated so far (warm-start entries included) —
    /// persist it with [`ResultsDatabase::save`] to seed the next run.
    pub fn database(&self) -> &ResultsDatabase {
        &self.db
    }

    /// Online trials in decision order (objective and abort fraction per
    /// measured operating point).
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The wasted-work objective (lower is better): speculative overhead —
    /// auxiliary and squashed work — as a fraction of committed original
    /// work, plus [`ABORT_PENALTY`] per aborted-segment fraction.
    fn objective(&self) -> f64 {
        let wasted = (self.committed_aux + self.squashed) / self.committed_original.max(1e-9);
        let abort_fraction = self.aborted as f64 / self.segments.max(1) as f64;
        wasted + ABORT_PENALTY * abort_fraction
    }

    fn decision_for(&self, cfg: &Configuration) -> TuneDecision {
        TuneDecision {
            group_size: self.group_sizes[cfg[0] as usize],
            window: self.windows[cfg[1] as usize],
            max_reexec: self.budgets[cfg[2] as usize],
        }
    }

    /// The database's best known configuration under the online objective,
    /// scanned in deterministic (sorted-configuration) order and ignoring
    /// entries outside this tuner's space.
    fn warm_start_pick(&self) -> Option<Configuration> {
        let mut best: Option<(&Configuration, f64)> = None;
        for (cfg, m) in self.db.entries() {
            if !self.space.contains(cfg) {
                continue;
            }
            let objective = m.time_s + ABORT_PENALTY * m.energy_j;
            if best.is_none_or(|(_, b)| objective < b) {
                best = Some((cfg, objective));
            }
        }
        best.map(|(cfg, _)| cfg.clone())
    }
}

impl Retuner for OnlineTuner {
    fn observe(&mut self, stats: &SegmentStats) {
        self.segments += 1;
        self.aborted += u64::from(stats.aborted);
        self.committed_original += stats.committed_original_work;
        self.committed_aux += stats.committed_aux_work;
        self.squashed += stats.squashed_work;
    }

    fn decide(&mut self, _next_segment: u64) -> Option<TuneDecision> {
        if self.segments < self.every {
            return None;
        }
        // Close out the configuration the elapsed period measured.
        let objective = self.objective();
        let abort_fraction = self.aborted as f64 / self.segments.max(1) as f64;
        if let Some(cfg) = self.current.take() {
            let m = Measurement {
                time_s: objective,
                energy_j: abort_fraction,
            };
            self.db.insert(cfg.clone(), m.clone());
            self.history.record(cfg.clone(), m, objective);
            // Safe for warm-start picks too: the bandit has nothing
            // pending then, so only its member techniques learn.
            self.bandit.report(&cfg, objective);
        }
        self.segments = 0;
        self.aborted = 0;
        self.committed_original = 0.0;
        self.committed_aux = 0.0;
        self.squashed = 0.0;

        // Pick the next operating point: replay stored knowledge first,
        // then let the portfolio explore.
        let cfg = if !self.warm_started {
            self.warm_started = true;
            match self.warm_start_pick() {
                Some(cfg) => cfg,
                None => self.bandit.propose(&self.space, &mut self.rng),
            }
        } else {
            self.bandit.propose(&self.space, &mut self.rng)
        };
        let decision = self.decision_for(&cfg);
        self.current = Some(cfg);
        Some(decision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(segment: u64, aborted: bool) -> SegmentStats {
        SegmentStats {
            segment,
            inputs: 64,
            aborted,
            reexecutions: 0,
            validations: 8,
            committed_original_work: 60.0,
            committed_aux_work: if aborted { 0.0 } else { 6.0 },
            squashed_work: if aborted { 30.0 } else { 0.0 },
            group_size: 8,
            window: 2,
            max_reexec: 3,
        }
    }

    fn drive(tuner: &mut OnlineTuner, rounds: u64) -> Vec<TuneDecision> {
        let mut decisions = Vec::new();
        for seg in 0..rounds {
            tuner.observe(&stats(seg, seg % 3 == 2));
            if let Some(d) = tuner.decide(seg + 1) {
                decisions.push(d);
            }
        }
        decisions
    }

    #[test]
    fn fires_every_period_and_is_deterministic() {
        let mut a = OnlineTuner::new(7).every(2);
        let mut b = OnlineTuner::new(7).every(2);
        let da = drive(&mut a, 12);
        let db = drive(&mut b, 12);
        assert_eq!(da.len(), 6);
        assert_eq!(da, db);
        assert_eq!(a.history().len(), 5); // first decision has no predecessor
        assert_eq!(a.database().save(), b.database().save());
    }

    #[test]
    fn decisions_come_from_the_candidate_grids() {
        let mut tuner = OnlineTuner::with_candidates(vec![4, 8], vec![1, 2], vec![2], 3).every(1);
        for d in drive(&mut tuner, 20) {
            assert!([4, 8].contains(&d.group_size));
            assert!([1, 2].contains(&d.window));
            assert_eq!(d.max_reexec, 2);
        }
    }

    #[test]
    fn warm_start_replays_the_stored_best_first() {
        let mut db = ResultsDatabase::new();
        // Index configuration [2, 3, 3] => group 8, window 4, budget 4.
        db.insert(
            vec![2, 3, 3],
            Measurement {
                time_s: 0.01,
                energy_j: 0.0,
            },
        );
        db.insert(
            vec![4, 4, 0],
            Measurement {
                time_s: 9.0,
                energy_j: 1.0,
            },
        );
        // An entry outside the space must be ignored, not crash indexing.
        db.insert(
            vec![99, 0, 0],
            Measurement {
                time_s: 0.0,
                energy_j: 0.0,
            },
        );
        let mut tuner = OnlineTuner::new(1).every(1).warm_start(db);
        tuner.observe(&stats(0, false));
        let first = tuner.decide(1).unwrap();
        assert_eq!(
            first,
            TuneDecision {
                group_size: 8,
                window: 4,
                max_reexec: 4
            }
        );
        // The measurement of the warm-start period folds back in.
        tuner.observe(&stats(1, false));
        tuner.decide(2).unwrap();
        assert!(tuner.database().get(&vec![2, 3, 3]).is_some());
        assert_eq!(tuner.history().len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_grid_rejected() {
        OnlineTuner::with_candidates(vec![], vec![1], vec![1], 0);
    }
}
