//! Search techniques: the OpenTuner portfolio members.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::param::{Configuration, SearchSpace};

/// A search technique proposes configurations and learns from results.
///
/// Mirrors OpenTuner's `SearchTechnique`: `propose` suggests the next point;
/// `report` feeds back the measured objective (smaller is better).
///
/// The ask/tell split is batched: [`Technique::propose_batch`] asks for a
/// whole generation of configurations up front (no interim reports), which
/// is what lets the tuner evaluate a generation concurrently and still
/// report results back in proposal order. Reports arrive in the same order
/// proposals were made.
pub trait Technique: Send {
    /// Technique name (for bandit bookkeeping and logs).
    fn name(&self) -> &str;

    /// Propose the next configuration to measure.
    fn propose(&mut self, space: &SearchSpace, rng: &mut SmallRng) -> Configuration;

    /// Propose `n` configurations at once (OpenTuner's parallel-evaluation
    /// batch interface, PACT 2014). The default asks [`Technique::propose`]
    /// `n` times with no reports in between, so a batch of `n` is
    /// indistinguishable from `n` serial asks — the property the parallel
    /// tuner's determinism guarantee rests on.
    fn propose_batch(
        &mut self,
        space: &SearchSpace,
        rng: &mut SmallRng,
        n: usize,
    ) -> Vec<Configuration> {
        (0..n).map(|_| self.propose(space, rng)).collect()
    }

    /// Learn from a measured trial. Results of a batch are reported one by
    /// one, in the order the batch proposed them.
    fn report(&mut self, cfg: &Configuration, objective: f64);
}

/// Uniform random sampling.
#[derive(Debug, Default)]
pub struct RandomSearch;

impl Technique for RandomSearch {
    fn name(&self) -> &str {
        "random"
    }

    fn propose(&mut self, space: &SearchSpace, rng: &mut SmallRng) -> Configuration {
        space.sample(rng)
    }

    fn report(&mut self, _cfg: &Configuration, _objective: f64) {}
}

/// Greedy hill climbing: mutate one coordinate of the best point seen.
#[derive(Debug, Default)]
pub struct GreedyMutation {
    best: Option<(Configuration, f64)>,
}

impl Technique for GreedyMutation {
    fn name(&self) -> &str {
        "greedy-mutation"
    }

    fn propose(&mut self, space: &SearchSpace, rng: &mut SmallRng) -> Configuration {
        match &self.best {
            None => space.sample(rng),
            Some((best, _)) => {
                let mut cfg = best.clone();
                if !cfg.is_empty() {
                    let dim = rng.random_range(0..cfg.len());
                    let p = &space.params()[dim];
                    // Step +-1 or resample the coordinate.
                    cfg[dim] = match rng.random_range(0..3u8) {
                        0 => p.clamp(cfg[dim] + 1),
                        1 => p.clamp(cfg[dim] - 1),
                        _ => p.sample(rng),
                    };
                }
                cfg
            }
        }
    }

    fn report(&mut self, cfg: &Configuration, objective: f64) {
        if self.best.as_ref().is_none_or(|(_, b)| objective < *b) {
            self.best = Some((cfg.clone(), objective));
        }
    }
}

/// A small steady-state genetic algorithm: tournament selection, uniform
/// crossover of two parents, per-coordinate mutation.
#[derive(Debug)]
pub struct GeneticAlgorithm {
    population: Vec<(Configuration, f64)>,
    capacity: usize,
    mutation_rate: f64,
}

impl Default for GeneticAlgorithm {
    fn default() -> Self {
        GeneticAlgorithm {
            population: Vec::new(),
            capacity: 16,
            mutation_rate: 0.15,
        }
    }
}

impl GeneticAlgorithm {
    fn tournament<'a>(&'a self, rng: &mut SmallRng) -> &'a Configuration {
        let a = rng.random_range(0..self.population.len());
        let b = rng.random_range(0..self.population.len());
        let (ca, oa) = &self.population[a];
        let (cb, ob) = &self.population[b];
        if oa <= ob {
            ca
        } else {
            cb
        }
    }
}

impl Technique for GeneticAlgorithm {
    fn name(&self) -> &str {
        "genetic"
    }

    fn propose(&mut self, space: &SearchSpace, rng: &mut SmallRng) -> Configuration {
        if self.population.len() < 2 {
            return space.sample(rng);
        }
        let p1 = self.tournament(rng).clone();
        let p2 = self.tournament(rng).clone();
        let mut child: Configuration = p1
            .iter()
            .zip(&p2)
            .map(|(&a, &b)| if rng.random_bool(0.5) { a } else { b })
            .collect();
        for (dim, v) in child.iter_mut().enumerate() {
            if rng.random_bool(self.mutation_rate) {
                *v = space.params()[dim].sample(rng);
            }
        }
        space.repair(&child)
    }

    fn report(&mut self, cfg: &Configuration, objective: f64) {
        self.population.push((cfg.clone(), objective));
        if self.population.len() > self.capacity {
            // Drop the worst.
            let worst = self
                .population
                .iter()
                .enumerate()
                .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
                .map(|(i, _)| i)
                .expect("nonempty");
            self.population.swap_remove(worst);
        }
    }
}

/// Differential evolution on the integer lattice: `child = a + F*(b - c)`
/// with crossover against the best point.
#[derive(Debug)]
pub struct DifferentialEvolution {
    population: Vec<(Configuration, f64)>,
    capacity: usize,
    scale: f64,
    crossover: f64,
}

impl Default for DifferentialEvolution {
    fn default() -> Self {
        DifferentialEvolution {
            population: Vec::new(),
            capacity: 20,
            scale: 0.7,
            crossover: 0.6,
        }
    }
}

impl Technique for DifferentialEvolution {
    fn name(&self) -> &str {
        "differential-evolution"
    }

    fn propose(&mut self, space: &SearchSpace, rng: &mut SmallRng) -> Configuration {
        if self.population.len() < 4 {
            return space.sample(rng);
        }
        let n = self.population.len();
        let pick = |rng: &mut SmallRng| rng.random_range(0..n);
        let (a, b, c) = (pick(rng), pick(rng), pick(rng));
        let base = &self.population[a].0;
        let xb = &self.population[b].0;
        let xc = &self.population[c].0;
        let best = self
            .population
            .iter()
            .min_by(|x, y| x.1.total_cmp(&y.1))
            .expect("nonempty");
        let child: Configuration = (0..base.len())
            .map(|d| {
                let mutant =
                    (base[d] as f64 + self.scale * (xb[d] as f64 - xc[d] as f64)).round() as i64;
                if rng.random_bool(self.crossover) {
                    mutant
                } else {
                    best.0[d]
                }
            })
            .collect();
        space.repair(&child)
    }

    fn report(&mut self, cfg: &Configuration, objective: f64) {
        self.population.push((cfg.clone(), objective));
        if self.population.len() > self.capacity {
            let worst = self
                .population
                .iter()
                .enumerate()
                .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
                .map(|(i, _)| i)
                .expect("nonempty");
            self.population.swap_remove(worst);
        }
    }
}

/// Coordinate pattern search (Hooke–Jeeves on the integer lattice): probe
/// ±step along one dimension of the best point at a time, halving the step
/// when a full sweep brings no improvement. OpenTuner ships the same idea
/// as `PatternSearch`.
#[derive(Debug)]
pub struct PatternSearch {
    best: Option<(Configuration, f64)>,
    dim: usize,
    positive: bool,
    step: i64,
    improved_this_sweep: bool,
    last_proposal: Option<Configuration>,
}

impl Default for PatternSearch {
    fn default() -> Self {
        PatternSearch {
            best: None,
            dim: 0,
            positive: true,
            step: 4,
            improved_this_sweep: false,
            last_proposal: None,
        }
    }
}

impl Technique for PatternSearch {
    fn name(&self) -> &str {
        "pattern-search"
    }

    fn propose(&mut self, space: &SearchSpace, rng: &mut SmallRng) -> Configuration {
        let Some((best, _)) = &self.best else {
            let cfg = space.sample(rng);
            self.last_proposal = Some(cfg.clone());
            return cfg;
        };
        if space.dims() == 0 {
            return best.clone();
        }
        let mut cfg = best.clone();
        let delta = if self.positive { self.step } else { -self.step };
        cfg[self.dim] = space.params()[self.dim].clamp(cfg[self.dim] + delta);

        // Advance the probe cursor.
        if self.positive {
            self.positive = false;
        } else {
            self.positive = true;
            self.dim += 1;
            if self.dim >= space.dims() {
                self.dim = 0;
                if !self.improved_this_sweep {
                    self.step = (self.step / 2).max(1);
                }
                self.improved_this_sweep = false;
            }
        }
        let repaired = space.repair(&cfg);
        self.last_proposal = Some(repaired.clone());
        repaired
    }

    fn report(&mut self, cfg: &Configuration, objective: f64) {
        let improved = self.best.as_ref().is_none_or(|(_, b)| objective < *b);
        if improved {
            self.best = Some((cfg.clone(), objective));
            if self.last_proposal.as_ref() == Some(cfg) {
                self.improved_this_sweep = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::IntegerParameter;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::new()
            .with(IntegerParameter::new("x", 0, 50))
            .with(IntegerParameter::new("y", 0, 50))
    }

    /// Convex objective with minimum at (17, 31).
    fn objective(cfg: &Configuration) -> f64 {
        ((cfg[0] - 17).pow(2) + (cfg[1] - 31).pow(2)) as f64
    }

    fn drive(technique: &mut dyn Technique, trials: usize, seed: u64) -> f64 {
        let s = space();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut best = f64::INFINITY;
        for _ in 0..trials {
            let cfg = technique.propose(&s, &mut rng);
            assert!(
                s.contains(&cfg),
                "{} proposed illegal {cfg:?}",
                technique.name()
            );
            let o = objective(&cfg);
            technique.report(&cfg, o);
            best = best.min(o);
        }
        best
    }

    #[test]
    fn all_techniques_propose_legal_points_and_improve() {
        let mut techniques: Vec<Box<dyn Technique>> = vec![
            Box::new(RandomSearch),
            Box::new(GreedyMutation::default()),
            Box::new(GeneticAlgorithm::default()),
            Box::new(DifferentialEvolution::default()),
        ];
        for t in techniques.iter_mut() {
            let best = drive(t.as_mut(), 300, 11);
            assert!(best < 200.0, "{} best {best}", t.name());
        }
    }

    #[test]
    fn greedy_mutation_exploits_best() {
        let mut g = GreedyMutation::default();
        g.report(&vec![17, 31], 0.0);
        let s = space();
        let mut rng = SmallRng::seed_from_u64(5);
        // Proposals stay near the reported best most of the time.
        let mut near = 0;
        for _ in 0..100 {
            let cfg = g.propose(&s, &mut rng);
            if (cfg[0] - 17).abs() <= 1 && (cfg[1] - 31).abs() <= 1 {
                near += 1;
            }
        }
        assert!(near > 40, "only {near} proposals near the best");
    }

    #[test]
    fn pattern_search_converges_on_convex_objective() {
        let best = drive(&mut PatternSearch::default(), 200, 21);
        assert!(best < 50.0, "pattern search best {best}");
    }

    #[test]
    fn pattern_search_halves_step_without_progress() {
        let mut p = PatternSearch::default();
        let s = space();
        let mut rng = SmallRng::seed_from_u64(1);
        p.report(&vec![17, 31], 0.0); // optimum already known
        let initial_step = 4;
        // Two full sweeps with no improvement must shrink the step.
        for _ in 0..(2 * 2 * s.dims()) {
            let cfg = p.propose(&s, &mut rng);
            p.report(&cfg, objective(&cfg));
        }
        assert!(p.step < initial_step, "step {} never shrank", p.step);
    }

    #[test]
    fn hill_climber_beats_random_on_convex_objective() {
        let mut totals = [0.0f64; 2];
        for seed in 0..10 {
            totals[0] += drive(&mut GreedyMutation::default(), 120, seed);
            totals[1] += drive(&mut RandomSearch, 120, seed);
        }
        assert!(
            totals[0] < totals[1],
            "greedy {} vs random {}",
            totals[0],
            totals[1]
        );
    }
}
