//! OpenTuner-style autotuner for the STATS state space (paper §3.5).
//!
//! The paper's state space has ~1.3 million points per benchmark on average,
//! making exhaustive exploration impossible; STATS delegates the search to
//! OpenTuner 0.7, describing every tradeoff as an enumerable integer
//! parameter. This crate is the OpenTuner substitute:
//!
//! - [`IntegerParameter`] / [`SearchSpace`] describe enumerable dimensions
//!   (tradeoff indices, group size, window, re-execution budget, thread
//!   split — everything §3.3 lists as a state-space dimension);
//! - [`Technique`] implementations mirror OpenTuner's portfolio: pure random
//!   sampling, greedy hill-climbing mutation, a genetic algorithm, and
//!   differential evolution;
//! - [`AucBandit`] is OpenTuner's signature meta-technique: a multi-armed
//!   bandit with sliding-window area-under-curve credit assignment that
//!   adaptively allocates trials to whichever technique is currently
//!   producing improvements;
//! - [`Tuner`] drives the loop and records a [`History`] (best-so-far curve,
//!   used by the paper's Figure 20) and a [`ResultsDatabase`] keyed by
//!   configuration, which can be re-queried under a different objective
//!   (the paper reuses the exploration when switching from performance to
//!   energy).

#![deny(missing_docs)]

mod bandit;
mod history;
pub mod importance;
mod online;
mod param;
mod technique;
mod tuner;

pub use bandit::AucBandit;
pub use history::{History, Measurement, ResultsDatabase};
pub use importance::{parameter_importance, DimensionImportance};
pub use online::OnlineTuner;
pub use param::{Configuration, IntegerParameter, SearchSpace};
pub use technique::{
    DifferentialEvolution, GeneticAlgorithm, GreedyMutation, PatternSearch, RandomSearch, Technique,
};
pub use tuner::{GenerationTelemetry, Objective, Tuner, TuningOutcome};
