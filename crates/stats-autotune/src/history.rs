//! Trial history and the reusable results database.

use std::collections::HashMap;

use stats_core::SpillCodec;

use crate::param::Configuration;

/// One measured trial: a configuration and its profile.
///
/// The profiler measures both time and energy on every run; the tuner
/// optimizes one of them, and the other is stored so the exploration can be
/// reused when the optimization objective changes (paper §3.2: the autotuner
/// "stores the results of its exploration … which allows them to be reused
/// should the specific optimization objective change").
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Simulated execution time, seconds.
    pub time_s: f64,
    /// Simulated system energy, joules.
    pub energy_j: f64,
}

/// The record of a tuning run, in trial order.
#[derive(Debug, Clone, Default)]
pub struct History {
    trials: Vec<(Configuration, Measurement, f64)>,
}

impl History {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a trial with its objective value.
    pub fn record(&mut self, cfg: Configuration, m: Measurement, objective: f64) {
        self.trials.push((cfg, m, objective));
    }

    /// Number of trials recorded.
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// Whether no trials were recorded.
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }

    /// All trials in order.
    pub fn trials(&self) -> impl Iterator<Item = (&Configuration, &Measurement, f64)> {
        self.trials.iter().map(|(c, m, o)| (c, m, *o))
    }

    /// The trial with the smallest objective value so far.
    pub fn best(&self) -> Option<(&Configuration, &Measurement, f64)> {
        self.trials
            .iter()
            .min_by(|a, b| a.2.total_cmp(&b.2))
            .map(|(c, m, o)| (c, m, *o))
    }

    /// Best-so-far objective after each trial (the convergence curve of the
    /// paper's Figure 20).
    pub fn best_so_far_curve(&self) -> Vec<f64> {
        let mut best = f64::INFINITY;
        self.trials
            .iter()
            .map(|(_, _, o)| {
                best = best.min(*o);
                best
            })
            .collect()
    }

    /// Number of trials after which the final best value was first reached
    /// (within `tol` relative tolerance). `None` for an empty history.
    pub fn convergence_point(&self, tol: f64) -> Option<usize> {
        let (_, _, final_best) = self.best()?;
        let threshold = final_best * (1.0 + tol);
        self.best_so_far_curve()
            .iter()
            .position(|&b| b <= threshold)
            .map(|i| i + 1)
    }
}

/// Exploration results keyed by configuration, reusable across objectives.
#[derive(Debug, Clone, Default)]
pub struct ResultsDatabase {
    by_config: HashMap<Configuration, Measurement>,
}

impl ResultsDatabase {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or overwrite) the measurement for a configuration.
    pub fn insert(&mut self, cfg: Configuration, m: Measurement) {
        self.by_config.insert(cfg, m);
    }

    /// Look up a previously measured configuration — the cache consulted
    /// before paying for a profile run.
    pub fn get(&self, cfg: &Configuration) -> Option<&Measurement> {
        self.by_config.get(cfg)
    }

    /// Number of distinct configurations measured.
    pub fn len(&self) -> usize {
        self.by_config.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.by_config.is_empty()
    }

    /// Re-rank the stored configurations under a new objective without any
    /// new profile runs (the objective-change reuse of §3.2).
    pub fn best_under(
        &self,
        mut objective: impl FnMut(&Measurement) -> f64,
    ) -> Option<(&Configuration, &Measurement)> {
        self.by_config
            .iter()
            .min_by(|a, b| objective(a.1).total_cmp(&objective(b.1)))
    }

    /// All stored entries, sorted by configuration. The sort makes the
    /// iteration (and everything derived from it — warm starts,
    /// [`save`](Self::save)d bytes) deterministic despite the hash-map
    /// backing store.
    pub fn entries(&self) -> Vec<(&Configuration, &Measurement)> {
        let mut entries: Vec<_> = self.by_config.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        entries
    }

    /// Serialize to bytes via the same little-endian exact codec the spill
    /// queues use (floats as IEEE bit patterns). Entries are emitted in
    /// sorted-configuration order, so equal databases produce equal bytes.
    pub fn save(&self) -> Vec<u8> {
        let mut out = Vec::new();
        (self.by_config.len() as u64).encode(&mut out);
        for (cfg, m) in self.entries() {
            cfg.encode(&mut out);
            m.time_s.encode(&mut out);
            m.energy_j.encode(&mut out);
        }
        out
    }

    /// Reconstruct a database [`save`](Self::save)d earlier. `None` means
    /// the buffer is corrupt or truncated.
    pub fn load(mut bytes: &[u8]) -> Option<Self> {
        let bytes = &mut bytes;
        let len = u64::decode(bytes)?;
        let mut db = ResultsDatabase::new();
        for _ in 0..len {
            let cfg = Vec::<i64>::decode(bytes)?;
            let time_s = f64::decode(bytes)?;
            let energy_j = f64::decode(bytes)?;
            db.insert(cfg, Measurement { time_s, energy_j });
        }
        if !bytes.is_empty() {
            return None;
        }
        Some(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(t: f64, e: f64) -> Measurement {
        Measurement {
            time_s: t,
            energy_j: e,
        }
    }

    #[test]
    fn best_and_curve() {
        let mut h = History::new();
        h.record(vec![0], m(5.0, 50.0), 5.0);
        h.record(vec![1], m(3.0, 60.0), 3.0);
        h.record(vec![2], m(4.0, 40.0), 4.0);
        assert_eq!(h.best().unwrap().2, 3.0);
        assert_eq!(h.best_so_far_curve(), vec![5.0, 3.0, 3.0]);
        assert_eq!(h.convergence_point(0.0), Some(2));
    }

    #[test]
    fn empty_history() {
        let h = History::new();
        assert!(h.best().is_none());
        assert!(h.convergence_point(0.0).is_none());
        assert!(h.best_so_far_curve().is_empty());
    }

    #[test]
    fn database_reuse_across_objectives() {
        let mut db = ResultsDatabase::new();
        db.insert(vec![0], m(5.0, 10.0));
        db.insert(vec![1], m(1.0, 100.0));
        let (fast, _) = db.best_under(|m| m.time_s).unwrap();
        let (frugal, _) = db.best_under(|m| m.energy_j).unwrap();
        assert_eq!(fast, &vec![1]);
        assert_eq!(frugal, &vec![0]);
    }

    #[test]
    fn database_round_trips_and_saves_deterministically() {
        let mut db = ResultsDatabase::new();
        db.insert(vec![3, 1], m(5.0, 10.0));
        db.insert(vec![0, 2], m(f64::NAN, -0.0));
        let bytes = db.save();
        let back = ResultsDatabase::load(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        // NaN payload and signed-zero bits survive exactly.
        let reloaded = back.get(&vec![0, 2]).unwrap();
        assert_eq!(reloaded.time_s.to_bits(), f64::NAN.to_bits());
        assert_eq!(reloaded.energy_j.to_bits(), (-0.0f64).to_bits());
        // Equal databases serialize to equal bytes despite hash-map order.
        assert_eq!(back.save(), bytes);
        // Truncation and trailing garbage are detected, not panicked on.
        assert!(ResultsDatabase::load(&bytes[..bytes.len() - 1]).is_none());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(ResultsDatabase::load(&padded).is_none());
    }

    #[test]
    fn database_is_a_cache() {
        let mut db = ResultsDatabase::new();
        assert!(db.get(&vec![7]).is_none());
        db.insert(vec![7], m(1.0, 2.0));
        assert_eq!(db.get(&vec![7]).unwrap().time_s, 1.0);
        assert_eq!(db.len(), 1);
    }
}
