//! Loom model checks for the speculation runtime's concurrency core.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (run via `./ci.sh --loom`):
//! the `stats_core::sync` facade then routes every mutex, condvar, atomic,
//! thread, and deque operation through the model checker, and each test
//! below asserts its invariant under **every** explored interleaving of
//! the *actual* runtime code paths — not a reimplementation of them.
//!
//! The models deliberately stay tiny (1–2 workers, 1–4 inputs): every
//! synchronization op is a decision point, and state grows exponentially.
//! The preemption bound trades exhaustiveness for tractability exactly as
//! documented in `vendor/loom` and `docs/concurrency.md`; each test picks
//! the largest bound that keeps its runtime in seconds.
//!
//! Suite map (mirrored by the audit table in `docs/concurrency.md`):
//!
//! - `pool_scope_settle_publishes_metrics` — pins the `jobs`
//!   Release/Acquire pair (worker increment → scope settle loop/metrics).
//! - `pool_scope_routes_job_panics` — pins the `panicked` Relaxed counter
//!   being ordered by the `done` mutex handshake (the SeqCst→Relaxed
//!   downgrade of the 2026-08 audit).
//! - `pool_drop_completes_outstanding_work` — shutdown/drain handshake.
//! - `pool_injector_never_loses_jobs` — injector vs. steal interleavings.
//! - `session_push_finish_matches_batch` — producer/coordinator/worker
//!   handoff commits every input exactly once, in order.
//! - `session_backpressure_wakeup` — a producer blocked on a full bounded
//!   queue is always woken when the coordinator drains it.
//! - `session_drop_mid_stream_joins` — Drop drains and joins; no leaked
//!   coordinator, in any interleaving.
//! - `session_panic_routing_try_finish` — a panic in a pool-executed
//!   group crosses worker → coordinator → owner, and a producer blocked
//!   on a stalled bounded queue cannot deadlock against it.

#![cfg(loom)]

use std::panic::{catch_unwind, AssertUnwindSafe};

use loom::model::Builder;
use stats_core::sync::atomic::{AtomicU64, Ordering};
use stats_core::sync::{Arc, Mutex};
use stats_core::{
    ExactState, InvocationCtx, RunOptions, Session, SessionError, SpecConfig, StateTransition,
    ThreadPool,
};

/// Run `f` under every schedule within `preemptions` involuntary switches.
fn model(preemptions: usize, f: impl Fn() + Send + Sync + 'static) {
    let mut b = Builder::new();
    b.preemption_bound = Some(preemptions);
    b.check(f);
}

/// Deterministic prefix-sum transition: state is the running sum, output
/// is the sum after absorbing the input. Speculation always validates.
struct Sum;
impl StateTransition for Sum {
    type Input = u64;
    type State = ExactState<u64>;
    type Output = u64;
    fn compute_output(
        &self,
        input: &u64,
        state: &mut ExactState<u64>,
        ctx: &mut InvocationCtx,
    ) -> u64 {
        ctx.charge(1.0);
        state.0 = state.0.wrapping_add(*input);
        state.0
    }
}

/// A transition that panics on one specific input value.
struct ExplodeOn(u64);
impl StateTransition for ExplodeOn {
    type Input = u64;
    type State = ExactState<u64>;
    type Output = u64;
    fn compute_output(
        &self,
        input: &u64,
        state: &mut ExactState<u64>,
        ctx: &mut InvocationCtx,
    ) -> u64 {
        ctx.charge(1.0);
        assert!(*input != self.0, "transition exploded");
        state.0 = state.0.wrapping_add(*input);
        state.0
    }
}

/// `group_size` 2 so a 4-input stream forms two groups: group 0 inline on
/// the coordinator, group 1 dispatched to the pool — the smallest shape
/// that exercises the resolver/coordinator/worker handoff.
fn two_group_config() -> SpecConfig {
    SpecConfig {
        group_size: 2,
        window: 1,
        max_reexec: 1,
        rollback: 1,
        ..SpecConfig::default()
    }
}

/// Tentpole model 1: after `scope()` returns, the batch is fully visible
/// in `metrics()`. Pins the `jobs` Release (worker_loop) / Acquire (settle
/// loop, metrics) pair: if the worker's increment were Relaxed, an
/// execution would exist where `jobs_executed` under-counts.
#[test]
fn pool_scope_settle_publishes_metrics() {
    model(2, || {
        let pool = ThreadPool::new(2);
        let data = Arc::new(AtomicU64::new(0));
        let jobs: Vec<_> = (0..2)
            .map(|_| {
                let data = Arc::clone(&data);
                move |_i: usize| {
                    data.fetch_add(1, Ordering::Relaxed);
                }
            })
            .collect();
        pool.scope(jobs);
        let m = pool.metrics();
        assert_eq!(m.jobs_executed, 2, "settle loop exited early");
        // The Relaxed data counter is ordered by the same edge: reading it
        // stale here would mean the scope returned before its jobs' side
        // effects were published.
        assert_eq!(data.load(Ordering::Relaxed), 2, "job effects not visible");
    });
}

/// Tentpole model 2 (audit regression): a job panic must surface from
/// `scope()` in every interleaving. The `panicked` counter is Relaxed —
/// the `done` mutex handshake is what orders it, so this model is the
/// regression test for the SeqCst→Relaxed downgrade: remove the handshake
/// (or read the counter before it) and an execution appears where the
/// panic is lost.
#[test]
fn pool_scope_routes_job_panics() {
    model(2, || {
        let pool = ThreadPool::new(1);
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(vec![
                (|_i: usize| {}) as fn(usize),
                (|_i: usize| panic!("job exploded")) as fn(usize),
            ]);
        }))
        .expect_err("a panicking job must fail the scope");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("panicked in ThreadPool::scope"),
            "wrong panic: {msg}"
        );
    });
}

/// Tentpole model 3: dropping the pool completes already-submitted
/// fire-and-forget work before joining the workers (shutdown/drain
/// handshake on the `live` mutex + `wake` condvar).
#[test]
fn pool_drop_completes_outstanding_work() {
    model(2, || {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(1);
            for _ in 0..2 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Drop waits for the drain; the worker join is the edge that
            // publishes the Relaxed increments.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 2, "job lost at shutdown");
    });
}

/// Tentpole model 4: two workers racing the injector and each other's
/// deques execute every submitted job exactly once (no loss, no
/// duplication), whatever the steal interleaving.
#[test]
fn pool_injector_never_loses_jobs() {
    model(2, || {
        let pool = ThreadPool::new(2);
        let seen = Arc::new(Mutex::new([0u32; 3]));
        let jobs: Vec<_> = (0..3)
            .map(|_| {
                let seen = Arc::clone(&seen);
                move |i: usize| {
                    seen.lock()[i] += 1;
                }
            })
            .collect();
        pool.scope(jobs);
        assert_eq!(*seen.lock(), [1, 1, 1], "job lost or duplicated");
    });
}

/// Tentpole model 5: the full streaming handoff — producer pushes, the
/// coordinator forms groups, a pool worker executes the speculative
/// group, the resolver commits in order. The outcome must equal the
/// sequential prefix sum for every interleaving.
#[test]
fn session_push_finish_matches_batch() {
    model(1, || {
        let session = Session::new(
            ExactState(0u64),
            Sum,
            RunOptions::default()
                .pool(Arc::new(ThreadPool::new(1)))
                .config(two_group_config()),
        );
        for i in 1..=4u64 {
            session.push(i);
        }
        let outcome = session.finish();
        assert_eq!(outcome.outputs, vec![1, 3, 6, 10], "stream diverged");
        assert_eq!(outcome.final_state.0, 10);
    });
}

/// Tentpole model 6: with `queue_capacity` 1 the producer blocks on a full
/// queue; the coordinator's drain must always wake it (producer condvar),
/// and the close/finish handshake must complete — no lost-wakeup schedule.
#[test]
fn session_backpressure_wakeup() {
    model(1, || {
        let session = Session::new(
            ExactState(0u64),
            Sum,
            RunOptions::default()
                .pool(Arc::new(ThreadPool::new(1)))
                // group_size 1 keeps every group inline on the coordinator:
                // this model isolates the producer <-> coordinator queue.
                .config(SpecConfig {
                    group_size: 1,
                    ..SpecConfig::default()
                })
                .queue_capacity(1),
        );
        for i in 1..=3u64 {
            session.push(i); // blocks whenever the 1-slot queue is full
        }
        let outcome = session.finish();
        assert_eq!(
            outcome.outputs,
            vec![1, 3, 6],
            "input lost past a full queue"
        );
    });
}

/// Tentpole model 7: dropping a session mid-stream (inputs still queued,
/// no `finish()`) drains, joins the coordinator, and releases the engine
/// context in every schedule — the Drop-join can never leak or deadlock.
#[test]
fn session_drop_mid_stream_joins() {
    model(1, || {
        let sentinel = Arc::new(());
        {
            let session = Session::new(
                ExactState(0u64),
                Sum,
                RunOptions::default()
                    .pool(Arc::new(ThreadPool::new(1)))
                    .config(SpecConfig {
                        group_size: 1,
                        ..SpecConfig::default()
                    }),
            );
            let _hold = Arc::clone(&sentinel);
            session.push(1);
            session.push(2);
            // Dropped here without finish().
            drop(session);
            drop(_hold);
        }
        assert_eq!(Arc::strong_count(&sentinel), 1, "coordinator leaked");
    });
}

/// Tentpole model 8 (satellite: drop-while-panicking vs. stalled queue):
/// a transition panic inside a pool-executed speculative group must cross
/// worker → coordinator → owner as `SessionError::Panicked`, while a
/// producer blocked on the full bounded queue is woken by the
/// `coordinator_gone` guard instead of deadlocking. The model terminating
/// at all proves the no-deadlock half; the assertions prove the routing.
#[test]
fn session_panic_routing_try_finish() {
    model(1, || {
        let mut session = Session::new(
            ExactState(0u64),
            ExplodeOn(4),
            RunOptions::default()
                .pool(Arc::new(ThreadPool::new(1)))
                .config(two_group_config())
                .queue_capacity(1),
        );
        // Input 4 lands in group 1, which runs on the pool worker. The
        // producer keeps pushing against capacity 1 after the poisoned
        // group is in flight; if the dying coordinator failed to mark
        // itself gone, this push could block forever.
        let pushed = catch_unwind(AssertUnwindSafe(|| {
            for i in 1..=6u64 {
                session.push(i);
            }
        }));
        match session.try_finish() {
            Err(SessionError::Panicked { message, .. }) => {
                assert!(message.contains("transition exploded"), "{message}");
            }
            Ok(_) => {
                // The coordinator re-raises the worker panic before any
                // output commits past the poisoned group; reaching finish
                // cleanly would mean the panic was swallowed.
                panic!("worker panic was swallowed");
            }
            Err(other) => panic!("unexpected session error: {other}"),
        }
        // If a push raced the coordinator's death it panicked with the
        // coordinator-gone message — both completing and failing fast are
        // legal; hanging is not (the model's deadlock detector enforces it).
        if let Err(payload) = pushed {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            assert!(
                msg.contains("coordinator has terminated"),
                "wrong producer failure: {msg}"
            );
        }
        // The worker survives for the next scope: the panic was contained.
        drop(session);
    });
}

/// Audit regression: `thread::yield_now` in the settle loop is a real
/// scheduling point — a spin loop over the Acquire-loaded `jobs` counter
/// settles in every schedule rather than starving the worker (the model
/// runs yielded threads only when nothing else can run, so this also
/// proves the loop cannot spin forever while the worker is runnable).
#[test]
fn pool_metrics_settle_after_repeated_scopes() {
    model(1, || {
        let pool = ThreadPool::new(1);
        pool.scope(vec![|_: usize| {}]);
        pool.scope(vec![|_: usize| {}]);
        assert_eq!(pool.metrics().jobs_executed, 2, "cumulative count lost");
    });
}
