//! Sanitizer-oriented stress tests for the pool and session concurrency.
//!
//! Where `tests/loom.rs` explores every interleaving of a tiny workload,
//! these tests hammer a big workload on real threads so dynamic race
//! detectors have something to bite on. They are what `ci.sh --tsan` runs
//! under ThreadSanitizer (`RUSTFLAGS="-Zsanitizer=thread"` on nightly);
//! without TSan they still serve as plain high-contention regression
//! tests, so they run in the default suite too.
//!
//! `STRESS_ITERS` scales the iteration counts (default 1, CI can raise
//! it); keep the default modest so `cargo test` stays fast.

use std::time::Duration;

use stats_core::sync::atomic::{AtomicUsize, Ordering};
use stats_core::sync::Arc;
use stats_core::{
    ExactState, FaultPlan, FaultRule, InvocationCtx, RunOptions, Session, SpecConfig,
    StateTransition, ThreadPool,
};

fn stress_iters() -> usize {
    std::env::var("STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

struct Sum;
impl StateTransition for Sum {
    type Input = u64;
    type State = ExactState<u64>;
    type Output = u64;
    fn compute_output(
        &self,
        input: &u64,
        state: &mut ExactState<u64>,
        ctx: &mut InvocationCtx,
    ) -> u64 {
        ctx.charge(1.0);
        state.0 = state.0.wrapping_add(*input);
        state.0
    }
}

fn config() -> SpecConfig {
    SpecConfig {
        group_size: 4,
        window: 1,
        max_reexec: 2,
        rollback: 1,
        ..SpecConfig::default()
    }
}

/// Many short scopes with skewed job costs through one shared pool: the
/// steal path, the settle loop, and the wake condvar all stay hot. Every
/// job must run exactly once per scope.
#[test]
fn many_short_scopes_share_one_pool() {
    let pool = ThreadPool::new(8);
    let ran = Arc::new(AtomicUsize::new(0));
    let rounds = 40 * stress_iters();
    for round in 0..rounds {
        let jobs: Vec<_> = (0..16)
            .map(|i| {
                let ran = Arc::clone(&ran);
                move |_idx: usize| {
                    // Skew: some jobs spin a little so siblings must steal.
                    let mut acc = (round + i) as u64;
                    for _ in 0..(i % 5) * 200 {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                    std::hint::black_box(acc);
                    ran.fetch_add(1, Ordering::Relaxed);
                }
            })
            .collect();
        let before = ran.load(Ordering::Relaxed);
        pool.scope(jobs);
        assert_eq!(ran.load(Ordering::Relaxed), before + 16, "round {round}");
    }
    assert_eq!(ran.load(Ordering::Relaxed), rounds * 16);
}

/// Concurrent sessions over one pool, each a deterministic prefix sum:
/// outputs must be exact despite cross-session contention on the pool's
/// injector, counters, and wake condvar.
#[test]
fn concurrent_sessions_stay_deterministic() {
    let pool = Arc::new(ThreadPool::new(4));
    let sessions = 4;
    let inputs_per = 64 * stress_iters();
    std::thread::scope(|s| {
        for _ in 0..sessions {
            let pool = Arc::clone(&pool);
            s.spawn(move || {
                let session = Session::new(
                    ExactState(0u64),
                    Sum,
                    RunOptions::default()
                        .pool(pool)
                        .config(config())
                        .queue_capacity(8),
                );
                for i in 1..=inputs_per as u64 {
                    session.push(i);
                }
                let outcome = session.finish();
                let mut expect = 0u64;
                for (i, out) in outcome.outputs.iter().enumerate() {
                    expect = expect.wrapping_add(i as u64 + 1);
                    assert_eq!(*out, expect, "output {i} diverged");
                }
            });
        }
    });
}

/// Seeded fault plans (worker panics + queue stalls) under contention:
/// the retry path, the lost-group channel, and the backpressure wakeups
/// all race, and the run must still commit every input in order.
#[test]
fn faulted_sessions_recover_under_contention() {
    let pool = Arc::new(ThreadPool::new(4));
    for round in 0..(3 * stress_iters()) {
        let plan = FaultPlan::new(round as u64)
            .worker_panic(FaultRule::transient(0.4))
            .queue_stall(FaultRule::slow(0.2, Duration::from_micros(50)));
        let session = Session::new(
            ExactState(0u64),
            Sum,
            RunOptions::default()
                .pool(Arc::clone(&pool))
                .config(config())
                .seed(round as u64)
                .faults(plan)
                .queue_capacity(4),
        );
        let n = 48u64;
        for i in 1..=n {
            session.push(i);
        }
        let outcome = session.finish();
        assert_eq!(outcome.outputs.len(), n as usize, "round {round}");
        assert_eq!(outcome.final_state.0, n * (n + 1) / 2, "round {round}");
    }
}
