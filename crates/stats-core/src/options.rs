//! The unified configuration surface for every protocol entry point.
//!
//! [`RunOptions`] bundles everything that used to be spread across the
//! `run_protocol*` signatures (including the deprecated observed and
//! segmented variants) and the `StateDependence::with_*` builders: the shared
//! [`ThreadPool`], the [`EventSink`], the run seed, the tuned
//! [`SpecConfig`], and segmenting. The same value drives the one-shot
//! [`StateDependence`](crate::StateDependence), the sequential reference
//! [`run_protocol_with_options`](crate::run_protocol_with_options), and the
//! streaming [`Session`](crate::Session).

use std::sync::{Arc, Mutex};

use crate::adapt::{AdaptPolicy, RetryPolicy, Retuner};
use crate::faults::FaultPlan;
use crate::obs::{EventSink, NoopSink};
use crate::plan::SpecPlan;
use crate::pool::{Priority, ThreadPool};
use crate::protocol::SpecConfig;

/// Options shared by every way of executing the STATS protocol.
///
/// Built with chained setters:
///
/// ```
/// use stats_core::{RunOptions, SpecConfig};
///
/// let options = RunOptions::default()
///     .config(SpecConfig { group_size: 4, ..SpecConfig::default() })
///     .seed(42)
///     .segment(128);
/// assert_eq!(options.seed, 42);
/// ```
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`RunOptions::default()`] plus setters (new execution-model knobs are
/// added as new fields without breaking downstream builds — the stability
/// contract in `docs/streaming.md`).
#[derive(Clone)]
#[non_exhaustive]
pub struct RunOptions {
    /// Thread pool shared with other state dependences. `None` means the
    /// consumer creates a private pool sized to the machine's available
    /// parallelism (sequential entry points ignore the pool entirely).
    pub pool: Option<Arc<ThreadPool>>,
    /// Observability sink receiving every protocol milestone. Defaults to
    /// the zero-cost [`NoopSink`].
    pub sink: Arc<dyn EventSink>,
    /// Run seed from which every invocation's PRVG stream derives.
    pub seed: u64,
    /// The execution-model configuration (group size, window, budgets).
    pub config: SpecConfig,
    /// When set, process inputs in consecutive segments of this many inputs,
    /// carrying committed state across segments — an abort disables
    /// speculation only for the rest of its own segment.
    pub segment: Option<usize>,
    /// When set, execute the inputs as a dependency DAG of segments (see
    /// [`SpecPlan`] and `docs/dag.md`). Takes precedence over [`segment`]
    /// (the plan's node boundaries *are* the segmentation). Batch-only:
    /// [`Session`](crate::Session) streams a linear input sequence and
    /// panics if a plan is set.
    ///
    /// [`segment`]: RunOptions::segment
    pub plan: Option<SpecPlan>,
    /// Bound of the [`Session`](crate::Session) input queue: a producer
    /// pushing into a full queue blocks until the engine drains it.
    pub queue_capacity: usize,
    /// How many speculation groups a [`Session`](crate::Session) may have
    /// in flight beyond the resolved prefix. `0` (the default) sizes the
    /// window to the pool's worker count plus two.
    pub max_inflight_groups: usize,
    /// Deterministic fault-injection plan. `None` (the default) injects
    /// nothing; see [`FaultPlan`] and `docs/robustness.md`.
    pub faults: Option<FaultPlan>,
    /// Adaptive-degradation policy for [`Session`](crate::Session): shrink
    /// group cardinality under abort storms, fall back to sequential
    /// execution, re-probe once aborts subside. `None` (the default) keeps
    /// the configured [`SpecConfig`] fixed for the whole run.
    pub adapt: Option<AdaptPolicy>,
    /// Online re-tuning hook for [`Session`](crate::Session): between
    /// segments the retuner observes per-segment telemetry and may re-pick
    /// group cardinality, auxiliary window, and re-execution budget for
    /// the rest of the stream (`docs/tuning.md`). `None` (the default)
    /// keeps the configured operating point. Shared behind a mutex so the
    /// caller can keep a handle (e.g. to persist a results database after
    /// the run); only the coordinator thread locks it, once per segment.
    /// Batch entry points ignore it.
    pub retune: Option<Arc<Mutex<dyn Retuner>>>,
    /// Retry-with-backoff budget for groups lost to worker death in a
    /// [`Session`](crate::Session).
    pub retry: RetryPolicy,
    /// Dispatch lane for speculative groups handed to the shared pool.
    /// [`Priority::High`] lets one run's groups overtake queued
    /// [`Priority::Normal`] work from other sessions sharing the pool —
    /// the per-tenant knob behind the [`serve`](crate::serve) front door.
    pub priority: Priority,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            pool: None,
            sink: Arc::new(NoopSink),
            seed: 0,
            config: SpecConfig::default(),
            segment: None,
            plan: None,
            queue_capacity: 1024,
            max_inflight_groups: 0,
            faults: None,
            adapt: None,
            retune: None,
            retry: RetryPolicy::default(),
            priority: Priority::Normal,
        }
    }
}

impl RunOptions {
    /// Share an existing thread pool instead of creating a private one.
    pub fn pool(mut self, pool: Arc<ThreadPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Install an observability sink.
    pub fn sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Set the run seed controlling every PRVG stream.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the execution-model configuration.
    pub fn config(mut self, config: SpecConfig) -> Self {
        self.config = config;
        self
    }

    /// Process inputs in segments of `segment` inputs (clamped to >= 1).
    pub fn segment(mut self, segment: usize) -> Self {
        self.segment = Some(segment.max(1));
        self
    }

    /// Execute the inputs as a dependency DAG of segments described by
    /// `plan` (`docs/dag.md`). The run's input count must equal
    /// [`SpecPlan::total_inputs`]; in plan mode the [`FaultPlan`] targets
    /// plan-node cut-set validations (site = node id) and node-internal
    /// runs are fault-free.
    pub fn plan(mut self, plan: SpecPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Bound the streaming input queue (clamped to >= 1).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Cap how many groups a stream keeps in flight past the resolved
    /// prefix (`0` = auto: pool workers + 2).
    pub fn max_inflight_groups(mut self, groups: usize) -> Self {
        self.max_inflight_groups = groups;
        self
    }

    /// Inject faults according to a seeded deterministic [`FaultPlan`].
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Enable the [`Session`](crate::Session) adaptive-degradation
    /// controller with the given policy.
    pub fn adapt(mut self, policy: AdaptPolicy) -> Self {
        self.adapt = Some(policy);
        self
    }

    /// Install an online [`Retuner`] re-picking the execution-model
    /// operating point between [`Session`](crate::Session) segments.
    pub fn retune(self, retuner: impl Retuner + 'static) -> Self {
        self.retune_shared(Arc::new(Mutex::new(retuner)))
    }

    /// Install a shared online [`Retuner`], keeping a handle on the
    /// caller's side (e.g. to persist its results database after the run).
    pub fn retune_shared(mut self, retuner: Arc<Mutex<dyn Retuner>>) -> Self {
        self.retune = Some(retuner);
        self
    }

    /// Set the retry budget for groups lost to worker death.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Choose the pool dispatch lane for this run's speculative groups.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_legacy_entry_points() {
        let o = RunOptions::default();
        assert!(o.pool.is_none());
        assert_eq!(o.seed, 0);
        assert!(o.segment.is_none());
        assert!(o.plan.is_none());
        assert!(!o.sink.enabled());
        assert_eq!(o.config.group_size, SpecConfig::default().group_size);
        assert!(o.faults.is_none());
        assert!(o.adapt.is_none());
        assert!(o.retune.is_none());
        assert_eq!(o.retry, RetryPolicy::default());
    }

    #[test]
    fn setters_clamp_degenerate_values() {
        let o = RunOptions::default().segment(0).queue_capacity(0);
        assert_eq!(o.segment, Some(1));
        assert_eq!(o.queue_capacity, 1);
    }
}
