//! Adaptive degradation: retry budgets for lost work and a controller
//! that trades speculation depth against abort pressure.
//!
//! Two pieces live here:
//!
//! - [`RetryPolicy`]: how many times the streaming coordinator re-dispatches
//!   a group whose pool job died, and with what backoff, before executing
//!   the group inline on the coordinator itself (the terminal fallback that
//!   always succeeds).
//! - [`AdaptiveController`]: a per-segment state machine driven by the
//!   abort/commit outcomes the [`EventSink`](crate::EventSink) stream also
//!   observes. Under abort storms it *shrinks* group cardinality (halving
//!   toward a floor), then falls back to *sequential* inline execution when
//!   speculation stops paying, then *re-probes* speculation at the minimum
//!   group size once a quiet period passes — recovering the full
//!   speculative configuration when probes commit cleanly.
//!
//! The controller's inputs are segment outcomes, which are themselves
//! deterministic functions of `(inputs, seed, fault plan)`, so the whole
//! degradation trajectory replays bit-identically. `docs/robustness.md`
//! draws the state machine.
//!
//! A third piece, the [`Retuner`] trait, is the hook for *online
//! re-tuning*: between segments an installed retuner observes the same
//! per-segment telemetry and may re-pick the execution-model operating
//! point (group cardinality, auxiliary window, re-execution budget) for
//! the rest of the stream. `stats-autotune`'s `OnlineTuner` implements it
//! with the bandit portfolio, warm-started from the cross-run
//! `ResultsDatabase`; `docs/tuning.md` contrasts the two ladders.

use std::time::Duration;

use crate::protocol::SpecConfig;

/// Retry-with-backoff budget for re-executing work lost to worker death.
///
/// Attempt `i` (zero-based) of a retry waits `backoff * multiplier^i`
/// before re-dispatching. Once `max_retries` retries have been consumed
/// for a group, the coordinator executes that group inline instead of
/// dispatching it to the pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-dispatch attempts per lost group before falling back inline.
    pub max_retries: u32,
    /// Base delay before the first retry.
    pub backoff: Duration,
    /// Exponential multiplier applied per successive retry.
    pub multiplier: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff: Duration::from_micros(200),
            multiplier: 2,
        }
    }
}

impl RetryPolicy {
    /// Delay before retry number `attempt` (zero-based):
    /// `backoff * multiplier^attempt`, saturating.
    pub fn delay_for(&self, attempt: u32) -> Duration {
        let factor = self
            .multiplier
            .max(1)
            .saturating_pow(attempt.min(16))
            .max(1);
        self.backoff.saturating_mul(factor)
    }
}

/// Where the adaptive controller currently sits on the degradation ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AdaptState {
    /// Full speculation at the configured group size.
    Speculative,
    /// Speculating with a reduced group size after abort pressure.
    Shrunk,
    /// Speculation disabled; segments run inline sequentially.
    Sequential,
    /// Probing: speculation re-enabled at the minimum group size after a
    /// quiet period, to test whether aborts have subsided.
    Probing,
}

impl AdaptState {
    /// Short stable label used in event rendering.
    pub fn label(self) -> &'static str {
        match self {
            AdaptState::Speculative => "speculative",
            AdaptState::Shrunk => "shrunk",
            AdaptState::Sequential => "sequential",
            AdaptState::Probing => "probing",
        }
    }
}

/// Tuning knobs for the [`AdaptiveController`] degradation ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptPolicy {
    /// Consecutive aborted segments before the group size is halved (or,
    /// already at the floor, before falling back to sequential).
    pub shrink_after: u32,
    /// Smallest group size the controller will speculate at.
    pub min_group_size: usize,
    /// Clean (commit-only) segments before the group size grows back
    /// toward the configured size.
    pub grow_after: u32,
    /// Sequential segments to wait before re-probing speculation.
    pub reprobe_after: u32,
}

impl Default for AdaptPolicy {
    fn default() -> Self {
        AdaptPolicy {
            shrink_after: 2,
            min_group_size: 2,
            grow_after: 2,
            reprobe_after: 2,
        }
    }
}

/// Per-segment degradation state machine: speculative → shrunk →
/// sequential → (re-probe) → speculative.
///
/// Drive it with one [`observe_segment`](AdaptiveController::observe_segment)
/// call per finished segment, and derive each segment's configuration with
/// [`apply`](AdaptiveController::apply). The controller is a plain value —
/// no clocks, no randomness — so identical outcome sequences produce
/// identical trajectories.
///
/// ```
/// use stats_core::prelude::*;
///
/// let base = SpecConfig { group_size: 8, ..SpecConfig::default() };
/// let mut ctl = AdaptiveController::new(AdaptPolicy::default(), &base);
/// assert_eq!(ctl.state(), AdaptState::Speculative);
/// // Two abort storms in a row: shrink.
/// ctl.observe_segment(true);
/// ctl.observe_segment(true);
/// assert_eq!(ctl.state(), AdaptState::Shrunk);
/// assert_eq!(ctl.apply(&base).group_size, 4);
/// ```
#[derive(Clone, Debug)]
pub struct AdaptiveController {
    policy: AdaptPolicy,
    state: AdaptState,
    /// Current speculative group size (meaningful outside `Sequential`).
    group_size: usize,
    /// Group size the controller grows back toward.
    base_group_size: usize,
    abort_streak: u32,
    clean_streak: u32,
    quiet: u32,
}

impl AdaptiveController {
    /// A controller starting fully speculative at `base.group_size`.
    pub fn new(policy: AdaptPolicy, base: &SpecConfig) -> Self {
        let base_gs = base.group_size.max(1);
        AdaptiveController {
            policy: AdaptPolicy {
                shrink_after: policy.shrink_after.max(1),
                min_group_size: policy.min_group_size.clamp(1, base_gs),
                grow_after: policy.grow_after.max(1),
                reprobe_after: policy.reprobe_after.max(1),
            },
            state: if base.speculate {
                AdaptState::Speculative
            } else {
                AdaptState::Sequential
            },
            group_size: base_gs,
            base_group_size: base_gs,
            abort_streak: 0,
            clean_streak: 0,
            quiet: 0,
        }
    }

    /// Current position on the degradation ladder.
    pub fn state(&self) -> AdaptState {
        self.state
    }

    /// The group size the controller would speculate with right now.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// The configuration to run the next segment with: `base` with
    /// speculation disabled in `Sequential`, or with the controller's
    /// current group size otherwise.
    pub fn apply(&self, base: &SpecConfig) -> SpecConfig {
        match self.state {
            AdaptState::Sequential => SpecConfig {
                speculate: false,
                ..base.clone()
            },
            _ => SpecConfig {
                group_size: self.group_size,
                ..base.clone()
            },
        }
    }

    /// Feed the outcome of one finished segment (`aborted` = speculation
    /// was squashed and the tail ran sequentially). Returns the new
    /// `(state, group_size)` when the observation caused a transition.
    pub fn observe_segment(&mut self, aborted: bool) -> Option<(AdaptState, usize)> {
        let before = (self.state, self.group_size);
        match self.state {
            AdaptState::Speculative | AdaptState::Shrunk => {
                if aborted {
                    self.clean_streak = 0;
                    self.abort_streak += 1;
                    if self.abort_streak >= self.policy.shrink_after {
                        self.abort_streak = 0;
                        if self.group_size > self.policy.min_group_size {
                            self.group_size = (self.group_size / 2).max(self.policy.min_group_size);
                            self.state = AdaptState::Shrunk;
                        } else {
                            self.state = AdaptState::Sequential;
                            self.quiet = 0;
                        }
                    }
                } else {
                    self.abort_streak = 0;
                    if self.state == AdaptState::Shrunk {
                        self.clean_streak += 1;
                        if self.clean_streak >= self.policy.grow_after {
                            self.clean_streak = 0;
                            self.group_size = (self.group_size * 2).min(self.base_group_size);
                            if self.group_size == self.base_group_size {
                                self.state = AdaptState::Speculative;
                            }
                        }
                    }
                }
            }
            AdaptState::Sequential => {
                // Sequential segments cannot abort; count them as quiet time.
                self.quiet += 1;
                if self.quiet >= self.policy.reprobe_after {
                    self.quiet = 0;
                    self.group_size = self.policy.min_group_size;
                    self.state = AdaptState::Probing;
                }
            }
            AdaptState::Probing => {
                if aborted {
                    self.state = AdaptState::Sequential;
                    self.quiet = 0;
                } else {
                    self.state = AdaptState::Shrunk;
                    self.clean_streak = 1;
                    self.abort_streak = 0;
                }
            }
        }
        let after = (self.state, self.group_size);
        (after != before).then_some(after)
    }
}

/// Telemetry for one finished streaming segment, handed to an installed
/// [`Retuner`] by the [`Session`](crate::Session) coordinator.
///
/// Every field is a deterministic function of `(inputs, seed, fault plan,
/// configuration)` — no clocks — so a retuner driven only by these values
/// re-tunes identically on a replay of the same run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SegmentStats {
    /// Zero-based index of the finished segment.
    pub segment: u64,
    /// Inputs the segment processed.
    pub inputs: usize,
    /// Whether the segment aborted speculation and ran its tail
    /// sequentially.
    pub aborted: bool,
    /// Re-executions of original producers the segment needed.
    pub reexecutions: usize,
    /// State comparisons the segment performed.
    pub validations: usize,
    /// Work units of committed original-code invocations.
    pub committed_original_work: f64,
    /// Work units of committed auxiliary code.
    pub committed_aux_work: f64,
    /// Work units squashed (aborted groups, failed re-executions).
    pub squashed_work: f64,
    /// Speculation group cardinality the segment ran with.
    pub group_size: usize,
    /// Auxiliary window the segment ran with.
    pub window: usize,
    /// Re-execution budget the segment ran with.
    pub max_reexec: usize,
}

/// A re-picked execution-model operating point, applied from the named
/// segment onward (see [`Retuner::decide`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TuneDecision {
    /// New speculation group cardinality (clamped to `>= 1` on apply).
    pub group_size: usize,
    /// New auxiliary window.
    pub window: usize,
    /// New re-execution budget.
    pub max_reexec: usize,
}

/// Online re-tuning hook, installed via
/// [`RunOptions::retune`](crate::RunOptions::retune).
///
/// The [`Session`](crate::Session) coordinator calls
/// [`observe`](Retuner::observe) once per finished segment and then
/// [`decide`](Retuner::decide) for the next segment; a `Some` decision
/// rewrites the base configuration's group cardinality, auxiliary window,
/// and re-execution budget for the rest of the stream (the degradation
/// ladder, when also enabled, restarts from the new base — see
/// `docs/tuning.md`). Each applied decision is emitted as
/// [`EventKind::Retune`](crate::EventKind::Retune), which is what makes
/// tuned runs replayable without the tuner (`docs/replay.md`).
///
/// Implementations must be deterministic in their observations: decisions
/// may depend on prior [`SegmentStats`], internal seeds, and state captured
/// at construction (e.g. a warm-start database snapshot), but not on clocks
/// or ambient randomness.
pub trait Retuner: Send {
    /// Digest the telemetry of one finished segment.
    fn observe(&mut self, stats: &SegmentStats);

    /// Re-pick the operating point for `next_segment` (the zero-based index
    /// of the segment about to run), or `None` to keep the current one.
    fn decide(&mut self, next_segment: u64) -> Option<TuneDecision>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(gs: usize) -> SpecConfig {
        SpecConfig {
            group_size: gs,
            ..SpecConfig::default()
        }
    }

    fn policy() -> AdaptPolicy {
        AdaptPolicy {
            shrink_after: 2,
            min_group_size: 2,
            grow_after: 2,
            reprobe_after: 2,
        }
    }

    #[test]
    fn backoff_grows_exponentially_and_saturates() {
        let r = RetryPolicy {
            max_retries: 3,
            backoff: Duration::from_micros(100),
            multiplier: 2,
        };
        assert_eq!(r.delay_for(0), Duration::from_micros(100));
        assert_eq!(r.delay_for(1), Duration::from_micros(200));
        assert_eq!(r.delay_for(2), Duration::from_micros(400));
        // Saturates rather than overflowing at absurd attempts.
        let _ = r.delay_for(u32::MAX);
    }

    #[test]
    fn abort_storm_walks_the_full_ladder() {
        let mut ctl = AdaptiveController::new(policy(), &base(8));
        assert_eq!(ctl.state(), AdaptState::Speculative);
        // 8 -> 4
        ctl.observe_segment(true);
        let t = ctl.observe_segment(true);
        assert_eq!(t, Some((AdaptState::Shrunk, 4)));
        // 4 -> 2 (floor)
        ctl.observe_segment(true);
        ctl.observe_segment(true);
        assert_eq!((ctl.state(), ctl.group_size()), (AdaptState::Shrunk, 2));
        // at the floor, the next storm drops to sequential
        ctl.observe_segment(true);
        let t = ctl.observe_segment(true);
        assert_eq!(t, Some((AdaptState::Sequential, 2)));
        // quiet time re-probes at the floor
        ctl.observe_segment(false);
        let t = ctl.observe_segment(false);
        assert_eq!(t, Some((AdaptState::Probing, 2)));
        // a clean probe starts growing back
        ctl.observe_segment(false);
        assert_eq!(ctl.state(), AdaptState::Shrunk);
        // one more clean segment completes grow_after=2 and doubles
        ctl.observe_segment(false);
        assert_eq!((ctl.state(), ctl.group_size()), (AdaptState::Shrunk, 4));
        ctl.observe_segment(false);
        let t = ctl.observe_segment(false);
        assert_eq!(t, Some((AdaptState::Speculative, 8)));
    }

    #[test]
    fn isolated_aborts_do_not_shrink() {
        let mut ctl = AdaptiveController::new(policy(), &base(8));
        for _ in 0..16 {
            assert_eq!(ctl.observe_segment(true), None);
            assert_eq!(ctl.observe_segment(false), None);
        }
        assert_eq!(ctl.state(), AdaptState::Speculative);
        assert_eq!(ctl.group_size(), 8);
    }

    #[test]
    fn failed_probe_returns_to_sequential() {
        let mut ctl = AdaptiveController::new(policy(), &base(4));
        for _ in 0..4 {
            ctl.observe_segment(true);
        }
        assert_eq!(ctl.state(), AdaptState::Sequential);
        ctl.observe_segment(false);
        ctl.observe_segment(false);
        assert_eq!(ctl.state(), AdaptState::Probing);
        let t = ctl.observe_segment(true);
        assert_eq!(t, Some((AdaptState::Sequential, 2)));
    }

    #[test]
    fn apply_disables_speculation_only_in_sequential() {
        let b = base(8);
        let mut ctl = AdaptiveController::new(policy(), &b);
        assert!(ctl.apply(&b).speculate);
        assert_eq!(ctl.apply(&b).group_size, 8);
        // Six consecutive aborts: 8 -> 4 -> 2 (floor) -> sequential.
        for _ in 0..6 {
            ctl.observe_segment(true);
        }
        assert_eq!(ctl.state(), AdaptState::Sequential);
        assert!(!ctl.apply(&b).speculate);
    }

    #[test]
    fn min_group_size_is_clamped_to_base() {
        let ctl = AdaptiveController::new(
            AdaptPolicy {
                min_group_size: 64,
                ..policy()
            },
            &base(8),
        );
        // Floor can't exceed the base group size.
        let mut ctl2 = ctl.clone();
        ctl2.observe_segment(true);
        ctl2.observe_segment(true);
        assert_eq!(ctl2.state(), AdaptState::Sequential);
    }
}
