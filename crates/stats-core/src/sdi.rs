//! The State Dependence Interface (SDI, paper §3.3 and Figure 9).
//!
//! The SDI makes the code pattern of paper Figure 4 explicit: a piece of
//! code computes an `Output` from an `Input` while consulting and updating a
//! local `State` that feeds forward to the next invocation. Making the
//! pattern explicit lets the STATS machinery (a) privatize `State` per
//! thread by cloning it, and (b) run multiple invocations in parallel from
//! speculative states produced by auxiliary code.

use crate::ctx::InvocationCtx;

/// Computational state threaded across invocations (the `State` class of
/// Figure 8).
///
/// `Clone` plays the role of the paper's overridden `operator=` (state
/// privatization); [`SpecState::matches_any`] is the developer-provided
/// `doesSpecStateMatchAny` comparison deciding whether a speculative state
/// is equivalent to one of the original nondeterministic final states.
pub trait SpecState: Clone + Send + Sync + 'static {
    /// Does this *speculative* state match any of the given *original*
    /// states?
    ///
    /// The originals are accumulated by the runtime: the first entry is the
    /// previous group's first (non-speculative) final state; re-executions
    /// of the nondeterministic producer append more candidates. Developers
    /// decide how strict the match must be. Implementations may require at
    /// least two originals (returning `false` otherwise) to calibrate the
    /// acceptable distance from the observed inter-run variability — the
    /// runtime responds by re-executing the producer to grow the set.
    fn matches_any(&self, originals: &[Self]) -> bool;
}

/// Wrapper giving any `Clone + Eq` state exact-match speculation semantics.
///
/// Useful in tests and for dependences whose state is a small value where
/// only bit-exact reproduction counts as a match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ExactState<T>(pub T);

impl<T: Clone + Eq + Send + Sync + 'static> SpecState for ExactState<T> {
    fn matches_any(&self, originals: &[Self]) -> bool {
        originals.iter().any(|o| o == self)
    }
}

/// The `computeOutput(Input*, State*) -> Output*` function of Figures 4/8/9,
/// as a trait so the compiler-enforced dependence structure is explicit:
/// computing `Output` may depend **only** on `Input` and `State`, and the
/// only inter-invocation dependence is the one on `State`.
///
/// Nondeterminism must come exclusively from the context's PRVG
/// ([`InvocationCtx::rng`] and friends); this is what lets the runtime
/// re-execute a producer and obtain a legitimately different final state.
pub trait StateTransition: Send + Sync + 'static {
    /// Per-invocation input (the `Input` class of Figure 8).
    type Input: Clone + Send + Sync + 'static;
    /// Feed-forward state (the `State` class of Figure 8).
    type State: SpecState;
    /// Per-invocation output (the `Output` class of Figure 8).
    type Output: Send + 'static;

    /// Compute the output for `input`, reading and updating `state`.
    fn compute_output(
        &self,
        input: &Self::Input,
        state: &mut Self::State,
        ctx: &mut InvocationCtx,
    ) -> Self::Output;

    /// Merge the committed final states of a fan-in point's parents into
    /// the state the joining node starts from (DAG plans only — see
    /// [`SpecPlan`](crate::SpecPlan) and `docs/dag.md`).
    ///
    /// `parents` holds the parents' committed finals in ascending plan
    /// node-id order and is never empty. The same merge combines the sink
    /// nodes' finals into the run's
    /// [`final_state`](crate::ProtocolResult::final_state). The default
    /// keeps the first parent's state — correct whenever one distinguished
    /// branch carries the feed-forward state; override it for real joins
    /// (e.g. union of per-branch aggregates).
    ///
    /// Determinism: the merge must be a pure function of `parents` —
    /// nondeterminism belongs in [`compute_output`]'s PRVG streams.
    ///
    /// [`compute_output`]: StateTransition::compute_output
    fn merge_states(&self, parents: &[Self::State]) -> Self::State {
        parents
            .first()
            .expect("merge_states requires at least one parent state")
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tradeoff::TradeoffBindings;

    #[test]
    fn exact_state_matches_only_equal() {
        let s = ExactState(42u32);
        assert!(s.matches_any(&[ExactState(7), ExactState(42)]));
        assert!(!s.matches_any(&[ExactState(7), ExactState(9)]));
        assert!(!s.matches_any(&[]));
    }

    struct Counter;
    impl StateTransition for Counter {
        type Input = u32;
        type State = ExactState<u32>;
        type Output = u32;
        fn compute_output(
            &self,
            input: &u32,
            state: &mut ExactState<u32>,
            ctx: &mut InvocationCtx,
        ) -> u32 {
            ctx.charge(1.0);
            state.0 += input;
            state.0
        }
    }

    #[test]
    fn transition_updates_state() {
        let t = Counter;
        let mut s = ExactState(0u32);
        let mut ctx = InvocationCtx::new(0, TradeoffBindings::new(), false);
        assert_eq!(t.compute_output(&3, &mut s, &mut ctx), 3);
        assert_eq!(t.compute_output(&4, &mut s, &mut ctx), 7);
        assert_eq!(ctx.meter().total, 2.0);
    }
}
