//! Admission fairness for the multi-tenant front door.
//!
//! The dispatcher moves inputs from per-tenant spill queues into the
//! tenants' session queues in *rounds*. How much each tenant may move per
//! round is the fairness policy's decision — the classic deficit
//! round-robin discipline: every round a tenant with backlog earns
//! `quantum × weight` credits, spends one credit per admitted input, and
//! carries unspent credits forward only while its session (not its own
//! backlog) is the bottleneck. A tenant whose backlog empties forfeits its
//! credits, so idle tenants cannot hoard admission capacity and a bursty
//! tenant can never starve the others.

/// How the dispatcher divides admission capacity between tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FairnessPolicy {
    /// One input per tenant per round, strictly rotating — the simplest
    /// starvation-free discipline (deficit round-robin with quantum 1 and
    /// all weights ignored).
    RoundRobin,
    /// Deficit-weighted round-robin: each round a tenant earns
    /// `quantum × weight` credits toward admitted inputs. Larger quanta
    /// amortize locking; weights skew capacity toward paying tenants.
    DeficitWeighted {
        /// Base credits per round for a weight-1 tenant (clamped >= 1).
        quantum: usize,
    },
}

impl Default for FairnessPolicy {
    fn default() -> Self {
        FairnessPolicy::DeficitWeighted { quantum: 8 }
    }
}

impl FairnessPolicy {
    /// Credits a tenant earns this round.
    pub(crate) fn earn(&self, weight: u32) -> usize {
        match self {
            FairnessPolicy::RoundRobin => 1,
            FairnessPolicy::DeficitWeighted { quantum } => {
                quantum.max(&1) * (weight.max(1) as usize)
            }
        }
    }

    /// Cap on accumulated credit, so a long-blocked tenant cannot bank an
    /// unbounded burst (eight rounds' worth, like classic DRR caps).
    pub(crate) fn deficit_cap(&self, weight: u32) -> usize {
        self.earn(weight).saturating_mul(8)
    }
}

/// Per-tenant deficit-round-robin accounting.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct DeficitState {
    pub(crate) deficit: usize,
}

impl DeficitState {
    /// Start a round: earn this round's credits, capped.
    pub(crate) fn earn(&mut self, policy: &FairnessPolicy, weight: u32) -> usize {
        self.deficit = (self.deficit + policy.earn(weight)).min(policy.deficit_cap(weight));
        self.deficit
    }

    /// Spend one credit (an input was admitted).
    pub(crate) fn spend(&mut self) {
        self.deficit = self.deficit.saturating_sub(1);
    }

    /// The tenant's backlog ran dry: forfeit unspent credit.
    pub(crate) fn forfeit(&mut self) {
        self.deficit = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_earns_one() {
        assert_eq!(FairnessPolicy::RoundRobin.earn(1), 1);
        assert_eq!(FairnessPolicy::RoundRobin.earn(100), 1);
    }

    #[test]
    fn weighted_quantum_scales_and_clamps() {
        let p = FairnessPolicy::DeficitWeighted { quantum: 4 };
        assert_eq!(p.earn(1), 4);
        assert_eq!(p.earn(3), 12);
        assert_eq!(p.earn(0), 4, "weight clamps to 1");
        let degenerate = FairnessPolicy::DeficitWeighted { quantum: 0 };
        assert_eq!(degenerate.earn(1), 1, "quantum clamps to 1");
    }

    #[test]
    fn deficit_carries_only_while_blocked() {
        let p = FairnessPolicy::DeficitWeighted { quantum: 2 };
        let mut d = DeficitState::default();
        assert_eq!(d.earn(&p, 1), 2);
        d.spend(); // one admitted, one left
        assert_eq!(d.earn(&p, 1), 3, "blocked tenant banks credit");
        d.forfeit(); // backlog drained
        assert_eq!(d.earn(&p, 1), 2, "drained tenant restarts from quantum");
    }

    #[test]
    fn deficit_is_capped() {
        let p = FairnessPolicy::DeficitWeighted { quantum: 2 };
        let mut d = DeficitState::default();
        for _ in 0..100 {
            d.earn(&p, 1);
        }
        assert_eq!(d.deficit, p.deficit_cap(1));
    }
}
