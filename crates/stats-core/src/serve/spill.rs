//! Disk-backed FIFO spill queues for the multi-tenant front door.
//!
//! A [`SpillQueue`] keeps ingestion bounded-memory per tenant: the newest
//! inputs accumulate in a small in-memory tail, overflow is serialized
//! into numbered FIFO segment files, and the dispatcher drains from an
//! in-memory head that is refilled by replaying the oldest segment. The
//! pop order is always exactly the push order — head (oldest), then disk
//! segments in segment-number order, then the tail (newest) — so a run
//! whose inputs passed through disk is bit-identical to one whose inputs
//! never spilled (property-tested in `tests/serve_properties.rs`).
//!
//! Inputs cross the disk boundary through [`SpillCodec`], a deliberately
//! tiny little-endian codec: implementations must round-trip exactly
//! (`decode(encode(x)) == x` at the byte level), which is what makes
//! spilled replay *bit*-identical rather than merely approximately equal.

use std::collections::VecDeque;
use std::fs;
use std::io;
use std::path::PathBuf;

/// Exact binary serialization for inputs that may spill to disk.
///
/// The contract is byte-exact round-tripping: `decode` must reconstruct
/// the encoded value exactly (floats included — they travel as their IEEE
/// bit patterns). Implementations are provided for the integer and float
/// primitives, `bool`, `char`, `String`, `Vec<T>`, and pairs; compose
/// those (or hand-roll the two methods) for richer input types.
pub trait SpillCodec: Sized {
    /// Append this value's exact byte representation to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Reconstruct a value from the front of `bytes`, consuming exactly
    /// the bytes `encode` produced. `None` means the buffer is corrupt or
    /// truncated.
    fn decode(bytes: &mut &[u8]) -> Option<Self>;
}

/// Split `n` bytes off the front of `bytes`.
fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if bytes.len() < n {
        return None;
    }
    let (front, rest) = bytes.split_at(n);
    *bytes = rest;
    Some(front)
}

macro_rules! le_codec {
    ($($ty:ty),+ $(,)?) => {
        $(impl SpillCodec for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(bytes: &mut &[u8]) -> Option<Self> {
                let raw = take(bytes, std::mem::size_of::<$ty>())?;
                Some(<$ty>::from_le_bytes(raw.try_into().ok()?))
            }
        })+
    };
}

le_codec!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

impl SpillCodec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(bytes: &mut &[u8]) -> Option<Self> {
        match take(bytes, 1)?[0] {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl SpillCodec for char {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u32).encode(out);
    }
    fn decode(bytes: &mut &[u8]) -> Option<Self> {
        char::from_u32(u32::decode(bytes)?)
    }
}

impl SpillCodec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(bytes: &mut &[u8]) -> Option<Self> {
        let len = usize::try_from(u64::decode(bytes)?).ok()?;
        String::from_utf8(take(bytes, len)?.to_vec()).ok()
    }
}

impl<T: SpillCodec> SpillCodec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(bytes: &mut &[u8]) -> Option<Self> {
        let len = usize::try_from(u64::decode(bytes)?).ok()?;
        // Guard against a corrupt length claiming more items than bytes.
        if len > bytes.len() {
            return None;
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(bytes)?);
        }
        Some(items)
    }
}

impl<A: SpillCodec, B: SpillCodec> SpillCodec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(bytes: &mut &[u8]) -> Option<Self> {
        Some((A::decode(bytes)?, B::decode(bytes)?))
    }
}

/// Monotonic spill activity counters for one queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Inputs that were serialized into disk segments.
    pub spilled_inputs: u64,
    /// Segment files written.
    pub spilled_segments: u64,
    /// Inputs deserialized back out of segments.
    pub replayed_inputs: u64,
    /// Segment files replayed (and deleted).
    pub replayed_segments: u64,
}

/// What a [`SpillQueue::push`] did, so the caller can emit the matching
/// observability event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillEffect {
    /// The input stayed in memory.
    InMemory,
    /// The push tipped the tail over the segment size: a segment file with
    /// this number and input count was written.
    Spilled {
        /// Monotonic segment number.
        segment: u64,
        /// Inputs serialized into it.
        inputs: usize,
    },
}

/// A bounded-memory FIFO queue that overflows to numbered disk segments.
///
/// Memory never holds more than `mem_capacity + segment_size` items: the
/// head (dispatch side) is capped at `mem_capacity` and the tail (intake
/// side) flushes to disk every `segment_size` items while any segment is
/// outstanding. Disk is the unbounded part — exactly the property the
/// front door needs under bursty tenants.
#[derive(Debug)]
pub struct SpillQueue<I> {
    head: VecDeque<I>,
    tail: VecDeque<I>,
    /// Outstanding segment files: (segment number, path, item count).
    segments: VecDeque<(u64, PathBuf, usize)>,
    mem_capacity: usize,
    segment_size: usize,
    dir: PathBuf,
    next_segment: u64,
    len: usize,
    stats: SpillStats,
}

impl<I: SpillCodec> SpillQueue<I> {
    /// Open a spill queue writing segments under `dir` (created lazily on
    /// first spill). `mem_capacity` bounds the in-memory head;
    /// `segment_size` is the item count per disk segment. Both are clamped
    /// to at least 1.
    pub fn new(dir: PathBuf, mem_capacity: usize, segment_size: usize) -> Self {
        SpillQueue {
            head: VecDeque::new(),
            tail: VecDeque::new(),
            segments: VecDeque::new(),
            mem_capacity: mem_capacity.max(1),
            segment_size: segment_size.max(1),
            dir,
            next_segment: 0,
            len: 0,
            stats: SpillStats::default(),
        }
    }

    /// Total queued items, wherever they live (memory or disk).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Snapshot of the spill counters.
    pub fn stats(&self) -> SpillStats {
        self.stats
    }

    /// Enqueue one input, spilling a segment to disk when the in-memory
    /// bound would otherwise be exceeded.
    pub fn push(&mut self, input: I) -> io::Result<SpillEffect> {
        if self.segments.is_empty() && self.tail.is_empty() && self.head.len() < self.mem_capacity {
            self.head.push_back(input);
            self.len += 1;
            return Ok(SpillEffect::InMemory);
        }
        self.tail.push_back(input);
        self.len += 1;
        if self.tail.len() >= self.segment_size {
            let (segment, inputs) = self.flush_tail()?;
            return Ok(SpillEffect::Spilled { segment, inputs });
        }
        Ok(SpillEffect::InMemory)
    }

    /// Dequeue the oldest input, replaying the oldest disk segment when
    /// the in-memory head runs dry. Returns the replayed segment's
    /// `(number, count)` alongside the input when a replay happened.
    #[allow(clippy::type_complexity)] // (input, replay coordinates) is the honest shape
    pub fn pop(&mut self) -> io::Result<Option<(I, Option<(u64, usize)>)>> {
        if let Some(input) = self.head.pop_front() {
            self.len -= 1;
            return Ok(Some((input, None)));
        }
        if let Some((segment, path, count)) = self.segments.pop_front() {
            let bytes = fs::read(&path)?;
            let mut cursor: &[u8] = &bytes;
            for _ in 0..count {
                let item = I::decode(&mut cursor).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corrupt spill segment {}", path.display()),
                    )
                })?;
                self.head.push_back(item);
            }
            let _ = fs::remove_file(&path);
            self.stats.replayed_inputs += count as u64;
            self.stats.replayed_segments += 1;
            let input = self.head.pop_front().expect("segment count >= 1");
            self.len -= 1;
            return Ok(Some((input, Some((segment, count)))));
        }
        // No head, no disk: the tail is the whole queue. Promote it back
        // to being the head so the queue returns to pure-memory mode.
        std::mem::swap(&mut self.head, &mut self.tail);
        match self.head.pop_front() {
            Some(input) => {
                self.len -= 1;
                Ok(Some((input, None)))
            }
            None => Ok(None),
        }
    }

    /// Return an input just taken by [`pop`](SpillQueue::pop) to the
    /// logical front of the queue — the dispatcher could not place it
    /// after all (the tenant's session queue is full). FIFO order is
    /// preserved because the input *was* the front.
    pub fn push_front_undo(&mut self, input: I) {
        self.head.push_front(input);
        self.len += 1;
    }

    /// Serialize the whole tail into a fresh segment file.
    fn flush_tail(&mut self) -> io::Result<(u64, usize)> {
        fs::create_dir_all(&self.dir)?;
        let segment = self.next_segment;
        self.next_segment += 1;
        let count = self.tail.len();
        let mut bytes = Vec::with_capacity(count * 8);
        for item in &self.tail {
            item.encode(&mut bytes);
        }
        let path = self.dir.join(format!("seg-{segment:08}.spill"));
        fs::write(&path, &bytes)?;
        self.tail.clear();
        self.segments.push_back((segment, path, count));
        self.stats.spilled_inputs += count as u64;
        self.stats.spilled_segments += 1;
        Ok((segment, count))
    }
}

impl<I> Drop for SpillQueue<I> {
    fn drop(&mut self) {
        // Best-effort cleanup: outstanding segments are useless once the
        // queue is gone, and the per-tenant directory should not outlive
        // its tenant.
        for (_, path, _) in self.segments.drain(..) {
            let _ = fs::remove_file(path);
        }
        let _ = fs::remove_dir(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("stats-spill-test-{tag}-{}", std::process::id()))
    }

    #[test]
    fn codec_roundtrips_exactly() {
        fn roundtrip<T: SpillCodec + PartialEq + std::fmt::Debug>(value: T) {
            let mut bytes = Vec::new();
            value.encode(&mut bytes);
            let mut cursor: &[u8] = &bytes;
            assert_eq!(T::decode(&mut cursor), Some(value));
            assert!(cursor.is_empty(), "decode left trailing bytes");
        }
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(-17i64);
        roundtrip(std::f64::consts::PI);
        roundtrip(f64::NEG_INFINITY);
        roundtrip(true);
        roundtrip('é');
        roundtrip("tenant payload".to_string());
        roundtrip(vec![1u64, 2, 3]);
        roundtrip((42u64, -0.5f64));
        // NaN round-trips bit-exactly even though NaN != NaN.
        let mut bytes = Vec::new();
        f64::NAN.encode(&mut bytes);
        let mut cursor: &[u8] = &bytes;
        let back = f64::decode(&mut cursor).unwrap();
        assert_eq!(back.to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut bytes = Vec::new();
        12345u64.encode(&mut bytes);
        let mut cursor: &[u8] = &bytes[..4];
        assert_eq!(u64::decode(&mut cursor), None);
    }

    #[test]
    fn fifo_order_survives_spill() {
        let mut q: SpillQueue<u64> = SpillQueue::new(temp_dir("fifo"), 4, 3);
        for i in 0..40u64 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 40);
        let stats = q.stats();
        assert!(stats.spilled_segments > 0, "spill never engaged");
        let mut out = Vec::new();
        while let Some((v, _)) = q.pop().unwrap() {
            out.push(v);
        }
        assert_eq!(out, (0..40u64).collect::<Vec<_>>());
        assert!(q.is_empty());
        assert_eq!(q.stats().replayed_segments, stats.spilled_segments);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q: SpillQueue<u64> = SpillQueue::new(temp_dir("interleave"), 2, 2);
        let mut expect = std::collections::VecDeque::new();
        let mut next = 0u64;
        // Deterministic interleave: push bursts, pop dribbles.
        for round in 0..50 {
            for _ in 0..(round % 5) + 1 {
                q.push(next).unwrap();
                expect.push_back(next);
                next += 1;
            }
            for _ in 0..(round % 3) {
                match (q.pop().unwrap(), expect.pop_front()) {
                    (Some((got, _)), Some(want)) => assert_eq!(got, want),
                    (None, None) => {}
                    (got, want) => panic!("diverged: got {got:?}, want {want:?}"),
                }
            }
        }
        while let Some((got, _)) = q.pop().unwrap() {
            assert_eq!(Some(got), expect.pop_front());
        }
        assert!(expect.is_empty());
    }

    #[test]
    fn memory_stays_bounded_while_disk_grows() {
        let mem = 8;
        let seg = 4;
        let mut q: SpillQueue<u64> = SpillQueue::new(temp_dir("bounded"), mem, seg);
        for i in 0..10_000u64 {
            q.push(i).unwrap();
            assert!(
                q.head.len() + q.tail.len() <= mem + seg,
                "in-memory footprint exceeded the bound"
            );
        }
        assert_eq!(q.len(), 10_000);
    }
}
