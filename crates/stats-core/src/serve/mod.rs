//! The multi-tenant session service: one shared [`ThreadPool`], many
//! tenant [`Session`]s behind per-tenant handles.
//!
//! A [`SessionServer`] is the front door the ROADMAP's "millions of users"
//! item asks for. Each tenant opens a handle with its own seed, config,
//! and [`Priority`](crate::Priority); the server multiplexes their
//! speculative groups onto the one pool while three mechanisms keep the
//! tenants isolated from each other:
//!
//! - **Admission windows** — every tenant's session keeps a small bounded
//!   queue (`session_queue_capacity`) and a capped number of inflight
//!   speculative groups, so no single stream can monopolize pool slots;
//! - **Fairness** — overflow beyond the admission window lands in a
//!   per-tenant [`SpillQueue`], and a dedicated `stats-serve` dispatcher
//!   thread refills session queues from those backlogs under a
//!   [`FairnessPolicy`] (deficit-weighted round-robin by default), so a
//!   bursty tenant waits on its own backlog, not on everyone's;
//! - **Bounded memory** — spill queues overflow to FIFO disk segments,
//!   keeping the in-memory footprint per tenant constant no matter how
//!   deep the backlog grows, with bit-identical replay (`docs/serving.md`).
//!
//! The determinism contract composes with [`Session`]'s: a tenant's
//! outcome under multiplexing — whatever the other tenants do, however
//! its inputs spilled — is bit-identical to a solo [`Session`] run with
//! the same seed, config, and input order (`tests/serve_properties.rs`).
//!
//! The producer edge is fallible by design: [`TenantHandle::try_push`]
//! returns [`ServeError`] instead of panicking when a tenant's transition
//! has killed its session, so one tenant's panic can never take down the
//! front door for the rest.

mod admission;
mod spill;

pub use admission::FairnessPolicy;
pub use spill::{SpillCodec, SpillEffect, SpillQueue, SpillStats};

use std::io;
use std::path::PathBuf;
use std::time::Duration;

#[cfg(not(loom))]
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{thread, Arc, Condvar, Mutex};

use crate::obs::{EventKind, EventSink, NoopSink};
use crate::options::RunOptions;
use crate::pool::ThreadPool;
use crate::runtime::SpecOutcome;
use crate::sdi::StateTransition;
use crate::session::{PushError, Session, SessionError};

use admission::DeficitState;

/// Distinguishes concurrently-created servers' default spill directories.
/// (Gated off under loom, whose atomics are not const-constructible in
/// statics; the loom models never construct a server.)
#[cfg(not(loom))]
static SERVER_INSTANCE: AtomicU64 = AtomicU64::new(0);

fn next_server_instance() -> u64 {
    #[cfg(not(loom))]
    {
        SERVER_INSTANCE.fetch_add(1, Ordering::Relaxed)
    }
    #[cfg(loom)]
    {
        0
    }
}

/// Tuning knobs for a [`SessionServer`]; see `docs/serving.md` for how
/// they interact.
#[derive(Clone)]
pub struct ServerOptions {
    /// How admission capacity is divided between backlogged tenants.
    pub fairness: FairnessPolicy,
    /// Where spill segments are written (one subdirectory per tenant).
    /// `None` picks a fresh directory under the system temp dir.
    pub spill_dir: Option<PathBuf>,
    /// In-memory bound of each tenant's spill queue head.
    pub spill_mem_capacity: usize,
    /// Inputs per on-disk spill segment.
    pub spill_segment: usize,
    /// Each tenant session's bounded-queue capacity (the admission
    /// window): inputs beyond it spill instead of blocking the producer.
    pub session_queue_capacity: usize,
    /// Per-tenant cap on speculative groups in flight past the resolved
    /// prefix (`0` = the session auto default, pool workers + 2 — usually
    /// too generous when hundreds of tenants share one pool).
    pub max_inflight_groups: usize,
    /// Server-level sink receiving [`EventKind::TenantAdmission`],
    /// [`EventKind::SpillWrite`], and [`EventKind::SpillReplay`].
    pub sink: Arc<dyn EventSink>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            fairness: FairnessPolicy::default(),
            spill_dir: None,
            spill_mem_capacity: 256,
            spill_segment: 128,
            session_queue_capacity: 64,
            max_inflight_groups: 2,
            sink: Arc::new(NoopSink),
        }
    }
}

impl ServerOptions {
    /// Choose the fairness policy.
    pub fn fairness(mut self, fairness: FairnessPolicy) -> Self {
        self.fairness = fairness;
        self
    }

    /// Write spill segments under `dir` instead of a temp directory.
    pub fn spill_dir(mut self, dir: PathBuf) -> Self {
        self.spill_dir = Some(dir);
        self
    }

    /// Bound each tenant's in-memory spill head (clamped >= 1).
    pub fn spill_mem_capacity(mut self, capacity: usize) -> Self {
        self.spill_mem_capacity = capacity.max(1);
        self
    }

    /// Set the inputs-per-segment spill granularity (clamped >= 1).
    pub fn spill_segment(mut self, inputs: usize) -> Self {
        self.spill_segment = inputs.max(1);
        self
    }

    /// Set every tenant session's admission window (clamped >= 1).
    pub fn session_queue_capacity(mut self, capacity: usize) -> Self {
        self.session_queue_capacity = capacity.max(1);
        self
    }

    /// Cap each tenant's inflight speculative groups (`0` = auto).
    pub fn max_inflight_groups(mut self, groups: usize) -> Self {
        self.max_inflight_groups = groups;
        self
    }

    /// Install a server-level observability sink.
    pub fn sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = sink;
        self
    }
}

/// Why a tenant-facing operation failed. Never a panic: the front door
/// reports tenant failures, it does not propagate them to its caller.
#[derive(Debug)]
pub enum ServeError {
    /// The tenant's session refused the input — its coordinator is gone
    /// (the carried [`PushError`] holds the pending panic message).
    Push(PushError),
    /// The tenant's session failed to finish (coordinator panic).
    Session(SessionError),
    /// Spilling to or replaying from disk failed; the tenant's stream is
    /// torn down since its input order can no longer be reconstructed.
    Spill(io::Error),
    /// The tenant handle was already finished, or is finishing elsewhere.
    TenantClosed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Push(e) => write!(f, "tenant push refused: {e}"),
            ServeError::Session(e) => write!(f, "tenant session failed: {e}"),
            ServeError::Spill(e) => write!(f, "tenant spill I/O failed: {e}"),
            ServeError::TenantClosed => f.write_str("tenant is closed"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Monotonic per-tenant front-door counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct TenantMetrics {
    /// Inputs accepted by [`TenantHandle::try_push`].
    pub pushed: u64,
    /// Accepted inputs that went straight into the session queue (the
    /// spill queue was empty and the admission window had room).
    pub fast_path: u64,
    /// Inputs the dispatcher moved from the spill queue into the session
    /// under the fairness policy.
    pub admitted: u64,
    /// Dispatch rounds in which this tenant moved at least one input.
    pub admission_rounds: u64,
    /// Spill activity (segments written/replayed).
    pub spill: SpillStats,
    /// The tenant's fairness weight.
    pub weight: u32,
}

/// A point-in-time snapshot of [`SessionServer`] activity.
#[derive(Debug, Clone, Default)]
pub struct ServerMetrics {
    /// Dispatcher rounds that found at least one backlogged tenant.
    pub dispatch_rounds: u64,
    /// Per-tenant counters for tenants still open, keyed by tenant id.
    pub open: Vec<(usize, TenantMetrics)>,
    /// Per-tenant counters for tenants already finished, keyed by id.
    pub retired: Vec<(usize, TenantMetrics)>,
}

impl ServerMetrics {
    /// Counters for one tenant, open or retired.
    pub fn tenant(&self, id: usize) -> Option<&TenantMetrics> {
        self.open
            .iter()
            .chain(&self.retired)
            .find(|(t, _)| *t == id)
            .map(|(_, m)| m)
    }

    /// Total inputs spilled to disk across all tenants.
    pub fn spilled_inputs(&self) -> u64 {
        self.open
            .iter()
            .chain(&self.retired)
            .map(|(_, m)| m.spill.spilled_inputs)
            .sum()
    }

    /// Total segment files written across all tenants.
    pub fn spilled_segments(&self) -> u64 {
        self.open
            .iter()
            .chain(&self.retired)
            .map(|(_, m)| m.spill.spilled_segments)
            .sum()
    }
}

/// One tenant's server-side state.
struct TenantSlot<T: StateTransition> {
    session: Session<T>,
    spill: SpillQueue<T::Input>,
    drr: DeficitState,
    weight: u32,
    metrics: TenantMetrics,
    /// New pushes rejected; the dispatcher still drains the backlog.
    closing: bool,
    /// The session can no longer accept inputs (coordinator gone) or the
    /// spill queue failed; the dispatcher skips it and `finish` reports.
    dead: bool,
    /// A spill I/O failure to surface at `finish`.
    spill_failed: Option<io::Error>,
}

struct ServerState<T: StateTransition> {
    tenants: Vec<Option<TenantSlot<T>>>,
    retired: Vec<(usize, TenantMetrics)>,
    cursor: usize,
    rounds: u64,
    shutdown: bool,
}

struct ServerShared<T: StateTransition> {
    state: Mutex<ServerState<T>>,
    /// Signaled when a backlog appears (spilled push), a tenant closes,
    /// or the server shuts down.
    work: Condvar,
    /// Signaled when a closing tenant's backlog drains (or its session
    /// dies), so `finish` can proceed.
    drained: Condvar,
    fairness: FairnessPolicy,
    sink: Arc<dyn EventSink>,
    spill_dir: PathBuf,
    spill_mem_capacity: usize,
    spill_segment: usize,
}

/// A sharded front door multiplexing many tenant [`Session`]s over one
/// shared [`ThreadPool`]. See the [module docs](self) and
/// `docs/serving.md`.
///
/// ```
/// use std::sync::Arc;
/// use stats_core::serve::{ServerOptions, SessionServer};
/// use stats_core::{ExactState, InvocationCtx, RunOptions, SpecConfig, StateTransition, ThreadPool};
///
/// struct Double;
/// impl StateTransition for Double {
///     type Input = u64;
///     type State = ExactState<u64>;
///     type Output = u64;
///     fn compute_output(
///         &self,
///         input: &u64,
///         state: &mut ExactState<u64>,
///         ctx: &mut InvocationCtx,
///     ) -> u64 {
///         ctx.charge(1.0);
///         state.0 = *input;
///         2 * *input
///     }
/// }
///
/// let server = SessionServer::new(Arc::new(ThreadPool::new(2)), ServerOptions::default());
/// let alice = server.open_tenant(ExactState(0), Double, RunOptions::default().seed(1));
/// let bob = server.open_tenant(ExactState(0), Double, RunOptions::default().seed(2));
/// for i in 0..32 {
///     alice.try_push(i).unwrap();
///     bob.try_push(i * 10).unwrap();
/// }
/// assert_eq!(alice.finish().unwrap().outputs[3], 6);
/// assert_eq!(bob.finish().unwrap().outputs[3], 60);
/// ```
pub struct SessionServer<T: StateTransition> {
    shared: Arc<ServerShared<T>>,
    pool: Arc<ThreadPool>,
    session_queue_capacity: usize,
    max_inflight_groups: usize,
    dispatcher: Option<thread::JoinHandle<()>>,
}

/// A tenant's handle onto a [`SessionServer`]: the only way inputs enter
/// and the outcome leaves. Clonable so multiple producer threads can feed
/// one tenant; [`finish`](TenantHandle::finish) may be called from any
/// one clone.
pub struct TenantHandle<T: StateTransition> {
    shared: Arc<ServerShared<T>>,
    id: usize,
}

impl<T: StateTransition> Clone for TenantHandle<T> {
    fn clone(&self) -> Self {
        TenantHandle {
            shared: Arc::clone(&self.shared),
            id: self.id,
        }
    }
}

impl<T: StateTransition> SessionServer<T>
where
    T::Input: SpillCodec,
{
    /// Stand up a server multiplexing tenants over `pool`, spawning the
    /// `stats-serve` dispatcher thread.
    pub fn new(pool: Arc<ThreadPool>, options: ServerOptions) -> Self {
        let spill_dir = options.spill_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!(
                "stats-serve-{}-{}",
                std::process::id(),
                next_server_instance()
            ))
        });
        let shared = Arc::new(ServerShared {
            state: Mutex::new(ServerState {
                tenants: Vec::new(),
                retired: Vec::new(),
                cursor: 0,
                rounds: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            drained: Condvar::new(),
            fairness: options.fairness,
            sink: Arc::clone(&options.sink),
            spill_dir,
            spill_mem_capacity: options.spill_mem_capacity.max(1),
            spill_segment: options.spill_segment.max(1),
        });
        let thread_shared = Arc::clone(&shared);
        let dispatcher = thread::Builder::new()
            .name("stats-serve".into())
            .spawn(move || dispatcher_main(&thread_shared))
            .expect("failed to spawn serve dispatcher");
        SessionServer {
            shared,
            pool,
            session_queue_capacity: options.session_queue_capacity.max(1),
            max_inflight_groups: options.max_inflight_groups,
            dispatcher: Some(dispatcher),
        }
    }

    /// Open a weight-1 tenant. The tenant's `options` carry its seed,
    /// config, faults, adaptation, and pool [`Priority`](crate::Priority);
    /// the server overrides the pool (every tenant shares the server's)
    /// and the queue/inflight admission window.
    pub fn open_tenant(
        &self,
        initial: T::State,
        transition: T,
        options: RunOptions,
    ) -> TenantHandle<T> {
        self.open_tenant_weighted(initial, transition, options, 1)
    }

    /// Open a tenant with a fairness `weight`: under
    /// [`FairnessPolicy::DeficitWeighted`], a weight-`w` tenant earns `w`
    /// times the admission credits of a weight-1 tenant per round.
    pub fn open_tenant_weighted(
        &self,
        initial: T::State,
        transition: T,
        options: RunOptions,
        weight: u32,
    ) -> TenantHandle<T> {
        let options = options
            .pool(Arc::clone(&self.pool))
            .queue_capacity(self.session_queue_capacity)
            .max_inflight_groups(self.max_inflight_groups);
        let session = Session::new(initial, transition, options);
        let mut state = self.shared.state.lock();
        let id = state.tenants.len();
        let spill = SpillQueue::new(
            self.shared.spill_dir.join(format!("tenant-{id}")),
            self.shared.spill_mem_capacity,
            self.shared.spill_segment,
        );
        state.tenants.push(Some(TenantSlot {
            session,
            spill,
            drr: DeficitState::default(),
            weight: weight.max(1),
            metrics: TenantMetrics {
                weight: weight.max(1),
                ..TenantMetrics::default()
            },
            closing: false,
            dead: false,
            spill_failed: None,
        }));
        drop(state);
        TenantHandle {
            shared: Arc::clone(&self.shared),
            id,
        }
    }

    /// Number of tenants currently open.
    pub fn open_tenants(&self) -> usize {
        self.shared
            .state
            .lock()
            .tenants
            .iter()
            .filter(|t| t.is_some())
            .count()
    }

    /// The shared pool every tenant's speculative groups dispatch onto.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }

    /// Snapshot the server's admission/spill counters.
    pub fn metrics(&self) -> ServerMetrics {
        let state = self.shared.state.lock();
        ServerMetrics {
            dispatch_rounds: state.rounds,
            open: state
                .tenants
                .iter()
                .enumerate()
                .filter_map(|(id, slot)| {
                    slot.as_ref().map(|s| {
                        let mut m = s.metrics;
                        m.spill = s.spill.stats();
                        (id, m)
                    })
                })
                .collect(),
            retired: state.retired.clone(),
        }
    }
}

impl<T: StateTransition> Drop for SessionServer<T> {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock();
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
        // Unfinished tenant sessions drop here: each drains what was
        // admitted and joins its coordinator (spilled-but-never-admitted
        // inputs are abandoned — finishing tenants is the caller's job).
    }
}

impl<T: StateTransition> TenantHandle<T>
where
    T::Input: SpillCodec,
{
    /// Tenant id within the server (dense, assigned at open).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Enqueue one input. Never blocks and never panics: the admission
    /// window absorbs steady traffic, the spill queue absorbs bursts
    /// (bounded memory, unbounded disk), and a dead tenant session
    /// surfaces as `Err` — with the pending panic message — instead of
    /// taking the producer down.
    pub fn try_push(&self, input: T::Input) -> Result<(), ServeError> {
        let mut state = self.shared.state.lock();
        let state = &mut *state;
        let Some(slot) = state.tenants.get_mut(self.id).and_then(Option::as_mut) else {
            return Err(ServeError::TenantClosed);
        };
        if slot.closing {
            return Err(ServeError::TenantClosed);
        }
        if let Some(e) = slot.spill_failed.take() {
            return Err(ServeError::Spill(e));
        }
        // Fast path: with no backlog ahead of it, the input may enter the
        // session directly (FIFO order is preserved by construction).
        if slot.spill.is_empty() {
            match slot.session.offer(input) {
                Ok(None) => {
                    slot.metrics.pushed += 1;
                    slot.metrics.fast_path += 1;
                    return Ok(());
                }
                Ok(Some(input)) => {
                    return self.spill_push(slot, input);
                }
                Err(e) => {
                    slot.dead = true;
                    self.shared.drained.notify_all();
                    return Err(ServeError::Push(e));
                }
            }
        }
        if slot.dead {
            // The dispatcher saw the session die; reproduce its error.
            return match slot.session.offer(input) {
                Err(e) => Err(ServeError::Push(e)),
                Ok(_) => Err(ServeError::TenantClosed),
            };
        }
        self.spill_push(slot, input)
    }

    /// Spill-queue a burst input, emitting the segment-write event when
    /// the push tipped a segment onto disk.
    fn spill_push(&self, slot: &mut TenantSlot<T>, input: T::Input) -> Result<(), ServeError> {
        match slot.spill.push(input) {
            Ok(effect) => {
                slot.metrics.pushed += 1;
                if let SpillEffect::Spilled { segment, inputs } = effect {
                    if self.shared.sink.enabled() {
                        self.shared.sink.emit(EventKind::SpillWrite {
                            tenant: self.id,
                            segment,
                            inputs,
                        });
                    }
                }
                // A backlog now exists: the dispatcher owns draining it.
                self.shared.work.notify_all();
                Ok(())
            }
            Err(e) => {
                slot.dead = true;
                self.shared.drained.notify_all();
                Err(ServeError::Spill(e))
            }
        }
    }

    /// Enqueue a batch of inputs; stops at the first failure, returning
    /// how many were accepted alongside the error.
    pub fn try_push_batch(
        &self,
        inputs: impl IntoIterator<Item = T::Input>,
    ) -> Result<usize, (usize, ServeError)> {
        let mut accepted = 0usize;
        for input in inputs {
            match self.try_push(input) {
                Ok(()) => accepted += 1,
                Err(e) => return Err((accepted, e)),
            }
        }
        Ok(accepted)
    }

    /// How many of this tenant's inputs are still waiting in the spill
    /// queue (not yet admitted into its session).
    pub fn backlog(&self) -> usize {
        let state = self.shared.state.lock();
        state
            .tenants
            .get(self.id)
            .and_then(Option::as_ref)
            .map_or(0, |s| s.spill.len())
    }

    /// Close this tenant's stream, wait for its backlog to drain through
    /// the fairness dispatcher and for every input to be processed, and
    /// return the outcome. Fails — never panics — if the tenant's
    /// transition panicked ([`ServeError::Session`] carries the payload's
    /// message) or spilling failed. Only one clone of the handle can
    /// finish; the rest get [`ServeError::TenantClosed`].
    pub fn finish(self) -> Result<SpecOutcome<T>, ServeError> {
        let mut state = self.shared.state.lock();
        {
            let Some(slot) = state.tenants.get_mut(self.id).and_then(Option::as_mut) else {
                return Err(ServeError::TenantClosed);
            };
            if slot.closing {
                return Err(ServeError::TenantClosed);
            }
            slot.closing = true;
        }
        self.shared.work.notify_all();
        // Wait for the dispatcher to drain the backlog (or for the
        // session to die trying).
        loop {
            let slot = state.tenants[self.id].as_ref().expect("closing tenant");
            if slot.dead || slot.spill.is_empty() {
                break;
            }
            self.shared.drained.wait(&mut state);
        }
        let slot = state.tenants[self.id].take().expect("closing tenant");
        let mut metrics = slot.metrics;
        metrics.spill = slot.spill.stats();
        state.retired.push((self.id, metrics));
        drop(state);
        let TenantSlot {
            mut session,
            spill,
            spill_failed,
            ..
        } = slot;
        drop(spill); // removes any leftover segment files
        if let Some(e) = spill_failed {
            return Err(ServeError::Spill(e));
        }
        match session.try_finish() {
            Ok(outcome) => Ok(outcome),
            Err(e) => Err(ServeError::Session(e)),
        }
    }
}

/// The `stats-serve` dispatcher: deficit-round-robin admission from spill
/// backlogs into session queues, until shutdown.
fn dispatcher_main<T: StateTransition>(shared: &Arc<ServerShared<T>>)
where
    T::Input: SpillCodec,
{
    let mut state = shared.state.lock();
    loop {
        if state.shutdown {
            return;
        }
        let n = state.tenants.len();
        let mut moved_total = 0usize;
        let mut backlog = false;
        let start = if n == 0 { 0 } else { state.cursor % n };
        state.cursor = state.cursor.wrapping_add(1);
        let mut events: Vec<EventKind> = Vec::new();
        let mut drained_someone = false;
        for off in 0..n {
            let id = (start + off) % n;
            let fairness = shared.fairness;
            let Some(slot) = state.tenants[id].as_mut() else {
                continue;
            };
            if slot.dead || slot.spill.is_empty() {
                continue;
            }
            backlog = true;
            let budget = slot.drr.earn(&fairness, slot.weight);
            let mut moved = 0usize;
            while moved < budget {
                match slot.spill.pop() {
                    Ok(Some((input, replay))) => {
                        if let Some((segment, inputs)) = replay {
                            events.push(EventKind::SpillReplay {
                                tenant: id,
                                segment,
                                inputs,
                            });
                        }
                        match slot.session.offer(input) {
                            Ok(None) => {
                                moved += 1;
                                slot.drr.spend();
                            }
                            Ok(Some(input)) => {
                                // Session full: give the input back and
                                // keep the unspent credit for next round.
                                slot.spill.push_front_undo(input);
                                break;
                            }
                            Err(_) => {
                                slot.dead = true;
                                drained_someone = true;
                                break;
                            }
                        }
                    }
                    Ok(None) => {
                        slot.drr.forfeit();
                        break;
                    }
                    Err(e) => {
                        slot.spill_failed = Some(e);
                        slot.dead = true;
                        drained_someone = true;
                        break;
                    }
                }
            }
            if moved > 0 {
                moved_total += moved;
                slot.metrics.admitted += moved as u64;
                slot.metrics.admission_rounds += 1;
                events.push(EventKind::TenantAdmission {
                    tenant: id,
                    admitted: moved,
                });
                if slot.closing && slot.spill.is_empty() {
                    drained_someone = true;
                }
            }
        }
        if backlog {
            state.rounds += 1;
        }
        if drained_someone {
            shared.drained.notify_all();
        }
        if !events.is_empty() && shared.sink.enabled() {
            for event in events {
                shared.sink.emit(event);
            }
        }
        if moved_total == 0 {
            if backlog {
                // Sessions are the bottleneck; they drain asynchronously
                // and do not signal the server, so poll briefly.
                shared.work.wait_for(&mut state, Duration::from_micros(500));
            } else {
                // Nothing queued anywhere: sleep until a push/close/
                // shutdown signals `work`.
                shared.work.wait(&mut state);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::InvocationCtx;
    use crate::protocol::SpecConfig;
    use crate::sdi::{ExactState, SpecState};

    #[derive(Clone, Debug)]
    struct Noisy(f64);
    impl SpecState for Noisy {
        fn matches_any(&self, originals: &[Self]) -> bool {
            originals.iter().any(|o| (o.0 - self.0).abs() < 0.5)
        }
    }

    struct NoisyLast;
    impl StateTransition for NoisyLast {
        type Input = u64;
        type State = Noisy;
        type Output = f64;
        fn compute_output(&self, input: &u64, state: &mut Noisy, ctx: &mut InvocationCtx) -> f64 {
            ctx.charge(2.0);
            state.0 = *input as f64 + ctx.uniform(-0.1, 0.1);
            state.0
        }
    }

    fn config() -> SpecConfig {
        SpecConfig {
            group_size: 4,
            window: 1,
            max_reexec: 2,
            ..SpecConfig::default()
        }
    }

    #[test]
    fn tenants_match_solo_sessions() {
        let pool = Arc::new(ThreadPool::new(2));
        let server = SessionServer::new(
            Arc::clone(&pool),
            ServerOptions::default()
                .session_queue_capacity(4)
                .spill_mem_capacity(4)
                .spill_segment(4),
        );
        let handles: Vec<_> = (0..6u64)
            .map(|t| {
                server.open_tenant(
                    Noisy(0.0),
                    NoisyLast,
                    RunOptions::default().config(config()).seed(t),
                )
            })
            .collect();
        for i in 0..64u64 {
            for (t, h) in handles.iter().enumerate() {
                h.try_push(i + t as u64).expect("push");
            }
        }
        let outcomes: Vec<_> = handles
            .into_iter()
            .map(|h| h.finish().expect("finish"))
            .collect();
        for (t, outcome) in outcomes.iter().enumerate() {
            let solo = Session::new(
                Noisy(0.0),
                NoisyLast,
                RunOptions::default().config(config()).seed(t as u64),
            );
            solo.push_batch((0..64u64).map(|i| i + t as u64));
            let solo = solo.finish();
            assert_eq!(outcome.outputs, solo.outputs, "tenant {t} diverged");
            assert_eq!(outcome.report, solo.report, "tenant {t} report diverged");
        }
        let metrics = server.metrics();
        assert!(
            metrics.spilled_inputs() > 0,
            "tiny admission window should have spilled: {metrics:?}"
        );
    }

    #[test]
    fn finish_is_single_shot_across_clones() {
        let server = SessionServer::new(Arc::new(ThreadPool::new(1)), ServerOptions::default());
        let handle = server.open_tenant(
            Noisy(0.0),
            NoisyLast,
            RunOptions::default().config(config()).seed(9),
        );
        let clone = handle.clone();
        handle.try_push(1).unwrap();
        let outcome = handle.finish().expect("first finish succeeds");
        assert_eq!(outcome.outputs.len(), 1);
        assert!(matches!(clone.try_push(2), Err(ServeError::TenantClosed)));
        assert!(matches!(clone.finish(), Err(ServeError::TenantClosed)));
    }

    struct Exploding;
    impl StateTransition for Exploding {
        type Input = u64;
        type State = ExactState<u64>;
        type Output = u64;
        fn compute_output(
            &self,
            input: &u64,
            _: &mut ExactState<u64>,
            ctx: &mut InvocationCtx,
        ) -> u64 {
            ctx.charge(1.0);
            if *input >= 3 {
                panic!("tenant transition exploded");
            }
            *input
        }
    }

    #[test]
    fn tenant_panic_stays_contained() {
        let pool = Arc::new(ThreadPool::new(2));
        let server = SessionServer::new(Arc::clone(&pool), ServerOptions::default());
        let bad = server.open_tenant(
            ExactState(0),
            Exploding,
            RunOptions::default().config(config()).seed(0),
        );
        for i in 0..16u64 {
            // Pushes either succeed (buffered) or fail cleanly once the
            // session is observed dead — never panic.
            let _ = bad.try_push(i);
        }
        match bad.finish() {
            Err(ServeError::Session(SessionError::Panicked { message, .. })) => {
                assert!(message.contains("tenant transition exploded"), "{message}");
            }
            Err(other) => panic!("expected contained panic, got {other:?}"),
            Ok(_) => panic!("expected contained panic, got success"),
        }
        // The server and pool stay healthy for other tenants.
        let good = server.open_tenant(
            ExactState(0),
            Exploding,
            RunOptions::default()
                .config(SpecConfig {
                    group_size: 0,
                    speculate: false,
                    ..SpecConfig::default()
                })
                .seed(1),
        );
        good.try_push(0).unwrap();
        good.try_push(1).unwrap();
        let outcome = good.finish().expect("small inputs never explode");
        assert_eq!(outcome.outputs, vec![0, 1]);
    }

    #[test]
    fn weighted_tenant_gets_more_admission_credit() {
        // Both tenants backlogged behind a 1-slot admission window; the
        // weight-4 tenant must be admitted measurably more often per
        // round once both spill.
        let pool = Arc::new(ThreadPool::new(1));
        let server = SessionServer::new(
            Arc::clone(&pool),
            ServerOptions::default()
                .session_queue_capacity(1)
                .spill_mem_capacity(8)
                .spill_segment(8)
                .fairness(FairnessPolicy::DeficitWeighted { quantum: 2 }),
        );
        let light = server.open_tenant(
            Noisy(0.0),
            NoisyLast,
            RunOptions::default().config(config()).seed(1),
        );
        let heavy = server.open_tenant_weighted(
            Noisy(0.0),
            NoisyLast,
            RunOptions::default().config(config()).seed(2),
            4,
        );
        for i in 0..128u64 {
            light.try_push(i).unwrap();
            heavy.try_push(i).unwrap();
        }
        let lo = light.finish().expect("light");
        let hi = heavy.finish().expect("heavy");
        assert_eq!(lo.outputs.len(), 128);
        assert_eq!(hi.outputs.len(), 128);
        let m = server.metrics();
        let light_m = m.tenant(0).expect("light metrics");
        let heavy_m = m.tenant(1).expect("heavy metrics");
        // Identical workloads: both finish, and neither starves. The
        // weighted tenant cannot have needed more rounds than the light
        // one (it drains at least as fast per round).
        assert!(light_m.pushed == 128 && heavy_m.pushed == 128);
        assert!(
            heavy_m.admission_rounds <= light_m.admission_rounds.max(1),
            "weight-4 tenant took more rounds than weight-1: {heavy_m:?} vs {light_m:?}"
        );
    }
}
