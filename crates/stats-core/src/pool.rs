//! A fixed-size, work-stealing thread pool.
//!
//! The paper's runtime "includes an efficient thread pool implementation
//! (shared with all state dependences) to minimize thread creation
//! overhead". This pool is created once and shared. Jobs are distributed
//! over per-worker deques (`crossbeam-deque`): each worker pops from its
//! own queue, falls back to the shared injector, and finally steals from
//! siblings — the standard work-stealing discipline, which keeps group
//! executions balanced even when their costs are skewed (e.g. groups with
//! different auxiliary windows). [`ThreadPool::scope`] provides structured
//! completion: wait until every job submitted in the scope has finished.

use std::time::Duration;

use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::sync::deque::{Injector, Steal, Stealer, Worker};
use crate::sync::{thread, Arc, CachePadded, Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Dispatch lane for a submitted job.
///
/// The pool keeps two global injectors. Workers drain the high lane
/// before touching their local deque or the normal injector, so
/// latency-critical jobs (e.g. speculative groups of a high-priority
/// tenant behind the [`serve`](crate::serve) front door) overtake bulk
/// work that was submitted earlier without preempting anything already
/// running. Within a lane, order stays FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// The default lane; all pre-existing entry points submit here.
    #[default]
    Normal,
    /// Drained before `Normal` work by every worker.
    High,
}

/// Monotonic pool counters, updated by workers as they run.
///
/// Every field is cache-line padded: these counters are written from all
/// workers on every job, and unpadded they share lines with each other (and
/// with whatever neighbours the allocator picks), so each bump invalidates
/// the line under every other core — false sharing that grows with the
/// worker count. `busy_ns` is padded per *entry* because each worker owns
/// exactly one slot; adjacent slots in one `Vec` are the textbook case.
struct PoolCounters {
    /// Jobs completed (across all workers).
    jobs: CachePadded<AtomicU64>,
    /// Successful steals from a sibling worker's deque.
    steals: CachePadded<AtomicU64>,
    /// Deepest injector backlog observed at submission time.
    max_injector_depth: CachePadded<AtomicU64>,
    /// Per-worker nanoseconds spent executing jobs (not idling).
    busy_ns: Vec<CachePadded<AtomicU64>>,
}

struct PoolShared {
    /// Padded so injector traffic doesn't drag the stealers/lock lines along.
    injector: CachePadded<Injector<Job>>,
    /// High-priority lane, drained by workers before any other source.
    priority_injector: CachePadded<Injector<Job>>,
    stealers: Vec<Stealer<Job>>,
    /// Jobs submitted but not yet finished; also the shutdown flag home.
    live: Mutex<PoolState>,
    wake: Condvar,
    counters: PoolCounters,
}

struct PoolState {
    pending: usize,
    shutdown: bool,
}

/// A fixed-size pool of worker threads executing submitted closures with
/// work stealing.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn a pool with `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let locals: Vec<Worker<Job>> = (0..threads).map(|_| Worker::new_fifo()).collect();
        let stealers = locals.iter().map(Worker::stealer).collect();
        let shared = Arc::new(PoolShared {
            injector: CachePadded::new(Injector::new()),
            priority_injector: CachePadded::new(Injector::new()),
            stealers,
            live: Mutex::new(PoolState {
                pending: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
            counters: PoolCounters {
                jobs: CachePadded::new(AtomicU64::new(0)),
                steals: CachePadded::new(AtomicU64::new(0)),
                max_injector_depth: CachePadded::new(AtomicU64::new(0)),
                busy_ns: (0..threads)
                    .map(|_| CachePadded::new(AtomicU64::new(0)))
                    .collect(),
            },
        });

        let mut workers = Vec::with_capacity(threads);
        for (i, local) in locals.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let handle = thread::Builder::new()
                .name(format!("stats-worker-{i}"))
                .spawn(move || worker_loop(i, local, shared))
                .expect("failed to spawn worker thread");
            workers.push(handle);
        }
        ThreadPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submit a fire-and-forget job on the [`Priority::Normal`] lane.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.execute_with_priority(Priority::Normal, job);
    }

    /// Submit a fire-and-forget job on an explicit dispatch lane.
    pub fn execute_with_priority(&self, priority: Priority, job: impl FnOnce() + Send + 'static) {
        {
            let mut state = self.shared.live.lock();
            assert!(!state.shutdown, "pool is shut down");
            state.pending += 1;
        }
        match priority {
            Priority::Normal => self.shared.injector.push(Box::new(job)),
            Priority::High => self.shared.priority_injector.push(Box::new(job)),
        }
        // Racy sample (jobs drain concurrently): a lower bound on the true
        // peak backlog, good enough to spot submission bursts.
        let depth = (self.shared.injector.len() + self.shared.priority_injector.len()) as u64;
        self.shared
            .counters
            .max_injector_depth
            .fetch_max(depth, Ordering::Relaxed);
        self.shared.wake.notify_all();
    }

    /// Snapshot the pool's observability counters.
    pub fn metrics(&self) -> PoolMetrics {
        let c = &self.shared.counters;
        PoolMetrics {
            jobs_executed: c.jobs.load(Ordering::Acquire),
            steals: c.steals.load(Ordering::Relaxed),
            max_injector_depth: c.max_injector_depth.load(Ordering::Relaxed),
            busy: c
                .busy_ns
                .iter()
                .map(|ns| Duration::from_nanos(ns.load(Ordering::Relaxed)))
                .collect(),
        }
    }

    /// Run a batch of jobs and wait for all of them to complete.
    ///
    /// Jobs receive their index. Panics in jobs are contained per-worker and
    /// surface as a panic here once the scope completes accounting.
    pub fn scope<F>(&self, jobs: Vec<F>)
    where
        F: FnOnce(usize) + Send + 'static,
    {
        let total = jobs.len();
        if total == 0 {
            return;
        }
        let jobs_before = self.shared.counters.jobs.load(Ordering::Acquire);
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        let panicked = Arc::new(AtomicUsize::new(0));
        for (i, job) in jobs.into_iter().enumerate() {
            let done = Arc::clone(&done);
            let panicked = Arc::clone(&panicked);
            self.execute(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    job(i);
                }));
                if result.is_err() {
                    // Ordering: Relaxed suffices. This increment is
                    // sequenced before the `done` lock/increment below, and
                    // the scope's read is sequenced after it observes
                    // `count == total` under the same mutex — the mutex
                    // release/acquire edge orders every increment before the
                    // read (docs/concurrency.md; pinned by the loom model
                    // `pool_scope_routes_job_panics`, which fails if the
                    // count is read before the handshake instead).
                    panicked.fetch_add(1, Ordering::Relaxed);
                }
                let (lock, cvar) = &*done;
                let mut count = lock.lock();
                *count += 1;
                cvar.notify_all();
            });
        }
        let (lock, cvar) = &*done;
        let mut count = lock.lock();
        while *count < total {
            cvar.wait(&mut count);
        }
        // Workers bump the observability counters just *after* a job's
        // completion signal fires, so settle until this batch's increments
        // land — metrics() taken right after a scope then covers all of it.
        let target = jobs_before + total as u64;
        // Ordering: Acquire pairs with the Release increment in
        // `worker_loop` so that once the settle loop exits, each counted
        // job's side effects (busy_ns, steal counters) are visible — see
        // docs/concurrency.md, pinned by `pool_scope_settle_publishes_metrics`.
        while self.shared.counters.jobs.load(Ordering::Acquire) < target {
            thread::yield_now();
        }
        // Ordering: Relaxed; ordered by the `done` mutex handshake above
        // (was SeqCst before the 2026-08 audit — over-synchronized, since
        // the mutex already provides the needed edge).
        let panics = panicked.load(Ordering::Relaxed);
        assert!(panics == 0, "{panics} job(s) panicked in ThreadPool::scope");
    }

    /// Apply `f` to every item concurrently, returning results in item order.
    ///
    /// The parallel counterpart of `items.iter().map(f).collect()`: results
    /// land at their item's index regardless of which worker ran them or in
    /// what order they finished.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        let f = Arc::new(f);
        let out = Arc::new(Mutex::new((0..n).map(|_| None).collect::<Vec<_>>()));
        let jobs: Vec<_> = items
            .into_iter()
            .map(|item| {
                let f = Arc::clone(&f);
                let out = Arc::clone(&out);
                move |i: usize| {
                    let r = f(item);
                    out.lock()[i] = Some(r);
                }
            })
            .collect();
        self.scope(jobs);
        Arc::try_unwrap(out)
            .unwrap_or_else(|_| panic!("map results still shared after scope"))
            .into_inner()
            .into_iter()
            .map(|r| r.expect("scope ran every job"))
            .collect()
    }
}

/// A point-in-time snapshot of [`ThreadPool`] activity, for utilization
/// reporting (`stats-report`) and pool tuning.
#[derive(Debug, Clone)]
pub struct PoolMetrics {
    /// Jobs completed since the pool was created.
    pub jobs_executed: u64,
    /// Successful steals from sibling workers (work that migrated).
    pub steals: u64,
    /// Deepest shared-injector backlog observed at submission time.
    pub max_injector_depth: u64,
    /// Per-worker time spent executing jobs (index = worker).
    pub busy: Vec<Duration>,
}

impl PoolMetrics {
    /// Total busy time summed over workers.
    pub fn total_busy(&self) -> Duration {
        self.busy.iter().sum()
    }

    /// Fraction of `wall × workers` capacity spent executing jobs.
    pub fn utilization(&self, wall: Duration) -> f64 {
        let capacity = wall.as_secs_f64() * self.busy.len().max(1) as f64;
        if capacity > 0.0 {
            (self.total_busy().as_secs_f64() / capacity).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }
}

fn find_job(idx: usize, local: &Worker<Job>, shared: &PoolShared) -> Option<Job> {
    // The high-priority lane preempts every other source (one job at a
    // time — batch-stealing would bury priority jobs in the local FIFO
    // behind normal work), then own queue, then the normal injector
    // (refilling the local queue), then steal from siblings.
    loop {
        match shared.priority_injector.steal() {
            Steal::Success(job) => return Some(job),
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    if let Some(job) = local.pop() {
        return Some(job);
    }
    loop {
        let steal = shared.injector.steal_batch_and_pop(local);
        if let Steal::Success(job) = steal {
            return Some(job);
        }
        if steal.is_empty() {
            break;
        } // Retry on contention.
    }
    for (j, stealer) in shared.stealers.iter().enumerate() {
        if j == idx {
            continue;
        }
        loop {
            match stealer.steal() {
                Steal::Success(job) => {
                    shared.counters.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(job);
                }
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
    }
    None
}

fn worker_loop(idx: usize, local: Worker<Job>, shared: Arc<PoolShared>) {
    loop {
        if let Some(job) = find_job(idx, &local, &shared) {
            let began = std::time::Instant::now();
            job();
            shared.counters.busy_ns[idx]
                .fetch_add(began.elapsed().as_nanos() as u64, Ordering::Relaxed);
            // Release pairs with the Acquire loads in `scope`/`metrics`: once
            // a job is visible in the counter, its busy time is too.
            shared.counters.jobs.fetch_add(1, Ordering::Release);
            let mut state = shared.live.lock();
            state.pending -= 1;
            drop(state);
            shared.wake.notify_all();
            continue;
        }
        // Nothing runnable: park until new work or shutdown.
        let mut state = shared.live.lock();
        if state.shutdown && state.pending == 0 {
            return;
        }
        // Wait whenever nothing is findable — including during shutdown
        // with jobs still in flight on siblings (their completion notifies
        // `wake`). Gating the hint on `!shutdown`, as this loop originally
        // did, busy-spins here until the last job's `pending` decrement
        // lands; the loom model `pool_scope_settle_publishes_metrics`
        // flagged that spin as a livelock. The timeout bounds any wakeup
        // miss to 1ms regardless.
        if state.pending == 0 || find_nothing_hint(&shared) {
            shared.wake.wait_for(&mut state, Duration::from_millis(1));
        }
        if state.shutdown && state.pending == 0 {
            return;
        }
    }
}

/// Cheap emptiness hint (racy by design; the wait above has a timeout).
fn find_nothing_hint(shared: &PoolShared) -> bool {
    shared.injector.is_empty()
        && shared.priority_injector.is_empty()
        && shared.stealers.iter().all(Stealer::is_empty)
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.live.lock();
            state.shutdown = true;
        }
        self.shared.wake.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        let jobs: Vec<_> = (0..100)
            .map(|_| {
                let c = Arc::clone(&counter);
                move |_i: usize| {
                    c.fetch_add(1, Ordering::SeqCst);
                }
            })
            .collect();
        pool.scope(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn job_indices_are_distinct() {
        let pool = ThreadPool::new(3);
        let seen = Arc::new(Mutex::new(vec![false; 50]));
        let jobs: Vec<_> = (0..50)
            .map(|_| {
                let seen = Arc::clone(&seen);
                move |i: usize| {
                    seen.lock()[i] = true;
                }
            })
            .collect();
        pool.scope(jobs);
        assert!(seen.lock().iter().all(|&b| b));
    }

    #[test]
    fn empty_scope_returns_immediately() {
        let pool = ThreadPool::new(2);
        pool.scope(Vec::<fn(usize)>::new());
    }

    #[test]
    fn pool_reusable_across_scopes() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..5 {
            let c = Arc::clone(&counter);
            pool.scope(vec![move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            }]);
        }
        assert_eq!(counter.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn at_least_one_thread() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    #[should_panic(expected = "panicked in ThreadPool::scope")]
    fn job_panic_propagates() {
        let pool = ThreadPool::new(2);
        pool.scope(vec![|_i: usize| panic!("boom")]);
    }

    #[test]
    fn skewed_job_costs_balance_via_stealing() {
        // One long job + many short ones: total wall time must be far below
        // the serial sum, i.e. short jobs ran on other workers while one
        // worker was stuck with the long job.
        let pool = ThreadPool::new(4);
        let start = std::time::Instant::now();
        let jobs: Vec<_> = (0..40)
            .map(|i| {
                move |_idx: usize| {
                    let ms = if i == 0 { 60 } else { 3 };
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
            })
            .collect();
        pool.scope(jobs);
        let elapsed = start.elapsed();
        // Serial: 60 + 39*3 = 177ms. Balanced on 4 workers: ~60-110ms.
        assert!(
            elapsed.as_millis() < 160,
            "no overlap: {}ms",
            elapsed.as_millis()
        );
    }

    #[test]
    fn map_preserves_item_order() {
        let pool = ThreadPool::new(4);
        let out = pool.map((0..200).collect(), |i: i64| i * i);
        assert_eq!(out, (0..200).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_stress_concurrent_trials() {
        // Repeated fan-outs of uneven jobs through one shared pool — the
        // usage pattern of the parallel experiment driver. Order and
        // completeness must hold on every round.
        let pool = ThreadPool::new(8);
        for round in 0..20 {
            let out = pool.map((0..64).collect(), move |i: u64| {
                let mut acc = i + round;
                for _ in 0..(i % 7) * 1000 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                (i, acc)
            });
            assert_eq!(out.len(), 64);
            for (k, (i, _)) in out.iter().enumerate() {
                assert_eq!(*i, k as u64);
            }
        }
    }

    #[test]
    fn metrics_count_jobs_and_busy_time() {
        let pool = ThreadPool::new(3);
        let jobs: Vec<_> = (0..30)
            .map(|_| {
                move |_i: usize| {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            })
            .collect();
        let began = std::time::Instant::now();
        pool.scope(jobs);
        let wall = began.elapsed();
        let m = pool.metrics();
        assert_eq!(m.jobs_executed, 30);
        assert_eq!(m.busy.len(), 3);
        // 30 × 2ms of sleep happened inside jobs.
        assert!(
            m.total_busy() >= std::time::Duration::from_millis(55),
            "total busy {:?}",
            m.total_busy()
        );
        let u = m.utilization(wall);
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
        // 30 jobs pushed through one injector: a backlog was observable.
        assert!(m.max_injector_depth >= 1);
    }

    #[test]
    fn metrics_are_cumulative_across_scopes() {
        let pool = ThreadPool::new(2);
        pool.scope(vec![|_: usize| {}, |_: usize| {}]);
        let first = pool.metrics().jobs_executed;
        pool.scope(vec![|_: usize| {}]);
        assert_eq!(pool.metrics().jobs_executed, first + 1);
    }

    #[test]
    fn steals_observed_under_skew() {
        // One worker gets a long job batch-stolen into its local queue;
        // siblings must steal from it (or the injector) to stay busy. The
        // steal counter is best-effort: assert it doesn't panic and is
        // consistent with jobs having run somewhere.
        let pool = ThreadPool::new(4);
        let jobs: Vec<_> = (0..64)
            .map(|i| {
                move |_idx: usize| {
                    let ms = if i % 8 == 0 { 5 } else { 0 };
                    if ms > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(ms));
                    }
                }
            })
            .collect();
        pool.scope(jobs);
        let m = pool.metrics();
        assert_eq!(m.jobs_executed, 64);
        assert!(m.steals <= 64);
    }

    #[test]
    fn priority_jobs_overtake_queued_normal_work() {
        // One worker, wedged on a gate job. While it is busy, enqueue a
        // burst of normal jobs and then one high-priority job: the
        // priority job must run before any of the queued normal jobs.
        let pool = ThreadPool::new(1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let order = Arc::new(Mutex::new(Vec::new()));
        {
            let gate = Arc::clone(&gate);
            pool.execute(move || {
                let (lock, cvar) = &*gate;
                let mut open = lock.lock();
                while !*open {
                    cvar.wait(&mut open);
                }
            });
        }
        for i in 0..8 {
            let order = Arc::clone(&order);
            pool.execute(move || order.lock().push(format!("normal-{i}")));
        }
        {
            let order = Arc::clone(&order);
            pool.execute_with_priority(Priority::High, move || {
                order.lock().push("high".to_string())
            });
        }
        *gate.0.lock() = true;
        gate.1.notify_all();
        drop(pool); // drains everything
        let order = order.lock().clone();
        assert_eq!(order.len(), 9);
        assert_eq!(order[0], "high", "priority job did not overtake: {order:?}");
    }

    #[test]
    fn drop_completes_outstanding_work() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..20 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Dropping the pool waits for workers to drain.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }
}
