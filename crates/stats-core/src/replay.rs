//! Deterministic record/replay of streaming sessions.
//!
//! The paper's determinism contract — same `(inputs, seed, fault plan)` ⇒
//! bit-identical outputs, report, and trace, at any worker count — means a
//! production run is fully reproducible from what it *consumed*, not from
//! what it *did*. This module captures exactly that consumption:
//!
//! - [`SessionRecorder`] wraps a [`Session`] and serializes
//!   everything the run consumed — the seed, the execution-model
//!   configuration, the input stream and its chunking, the fault plan, the
//!   adaptive/retry policies, and (via the event stream) every adaptive and
//!   online re-tuning transition — into a versioned, self-describing binary
//!   [`SessionLog`];
//! - [`replay`] re-executes a log against the caller-supplied transition
//!   and initial state, and verifies the re-run against the recorded run:
//!   the canonical observability event sequence, the trace digest, and the
//!   report digest must all match (zero [`ReplayOutcome::divergences`]).
//!
//! Code is never serialized: the transition function, the initial state,
//! and the tradeoff bindings are program text, supplied by the replaying
//! program. The log overrides every *semantics-bearing* knob of the
//! environment options it is replayed with (seed, configuration scalars,
//! segmenting, faults, adapt/retry policies); the environment contributes
//! only non-semantic resources (pool, sink, queue capacity, priority).
//!
//! Online re-tuning decisions are recorded as
//! [`EventKind::Retune`] events and played back verbatim by an internal
//! retuner, so a run tuned live against a warm results database replays
//! bit-identically *without* the database. `docs/replay.md` documents the
//! log format and its stability contract; `docs/tuning.md` the re-tuning
//! ladder.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::sync::Mutex;

use crate::adapt::{AdaptPolicy, RetryPolicy, Retuner, SegmentStats, TuneDecision};
use crate::faults::{FaultKind, FaultPlan, FaultRule};
use crate::obs::{EventKind, EventSink};
use crate::options::RunOptions;
use crate::protocol::{GroupResolution, SpecConfig, SpecReport, SpecTrace, TraceNodeKind};
use crate::runtime::SpecOutcome;
use crate::sdi::StateTransition;
use crate::serve::SpillCodec;
use crate::session::Session;
use crate::AdaptState;

/// Magic bytes opening every session log.
pub const LOG_MAGIC: [u8; 8] = *b"STATSLOG";

/// Current log format version. Readers reject newer versions with
/// [`ReplayError::UnsupportedVersion`]; unknown *sections* within a known
/// version are skipped (the forward-compatibility contract of
/// `docs/replay.md`).
pub const LOG_VERSION: u32 = 1;

const TAG_END: u8 = 0;
const TAG_META: u8 = 1;
const TAG_FAULTS: u8 = 2;
const TAG_CHUNKS: u8 = 3;
const TAG_INPUTS: u8 = 4;
const TAG_EVENTS: u8 = 5;
const TAG_SUMMARY: u8 = 6;

/// Why a log could not be decoded or replayed. Malformed bytes always
/// surface as one of these — never as a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReplayError {
    /// The buffer does not start with [`LOG_MAGIC`].
    BadMagic,
    /// The log was written by a newer format version than this reader.
    UnsupportedVersion(u32),
    /// The buffer ends before the structure it promises (a section length
    /// past the end, a missing end marker, a field cut short).
    Truncated,
    /// A section's payload does not decode to what its tag promises.
    Corrupt(&'static str),
    /// A required section is absent.
    MissingSection(&'static str),
    /// Input `index` failed to decode as the replaying transition's input
    /// type (wrong type, or a corrupt inputs section).
    InputDecode {
        /// Zero-based index of the input that failed to decode.
        index: u64,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::BadMagic => write!(f, "not a session log (bad magic)"),
            ReplayError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported log version {v} (reader supports {LOG_VERSION})"
                )
            }
            ReplayError::Truncated => write!(f, "truncated session log"),
            ReplayError::Corrupt(what) => write!(f, "corrupt session log: {what}"),
            ReplayError::MissingSection(which) => {
                write!(f, "session log is missing its {which} section")
            }
            ReplayError::InputDecode { index } => {
                write!(
                    f,
                    "input {index} failed to decode for the replaying transition"
                )
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Digest of a finished run: what the replay must reproduce byte-for-byte.
///
/// The trace and report digests are FNV-1a over a canonical little-endian
/// serialization of every field (floats as IEEE bit patterns), so "the
/// digests match" is exactly "the structures are equal".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunDigest {
    /// Number of committed outputs.
    pub outputs: u64,
    /// Digest of the recorded [`SpecTrace`] (kinds, work bit patterns,
    /// dependence edges, commit flags).
    pub trace_digest: u64,
    /// Digest of the [`SpecReport`] (group records, counters, work sums).
    pub report_digest: u64,
}

/// Everything a recorded session consumed, plus the digest of what it
/// produced — enough to re-execute the run and verify the re-execution.
///
/// Produced by [`SessionRecorder::finish`]; serialized with
/// [`SessionLog::to_bytes`] and re-read with [`SessionLog::from_bytes`].
#[derive(Debug, Clone)]
pub struct SessionLog {
    /// Free-form label (e.g. a workload name) carried for tooling; the
    /// `stats-report replay` subcommand uses it to re-bind the right
    /// transition.
    pub label: String,
    /// The recorded run seed.
    pub seed: u64,
    /// The recorded execution-model configuration. Tradeoff bindings are
    /// *not* serialized (they are program text, like the transition); the
    /// replaying program supplies them through its environment options.
    pub config: SpecConfig,
    /// The recorded explicit segment length, if one was set.
    pub segment: Option<usize>,
    /// The recorded adaptive-degradation policy, if one was set.
    pub adapt: Option<AdaptPolicy>,
    /// The recorded retry policy.
    pub retry: RetryPolicy,
    /// Whether an online retuner was installed. Replay then installs an
    /// internal retuner playing the recorded [`EventKind::Retune`]
    /// decisions back verbatim (and, like any retuner, forcing the same
    /// default segmentation).
    pub retune_enabled: bool,
    /// The recorded fault plan, if one was set.
    pub faults: Option<FaultPlan>,
    /// Producer-side chunk sizes, in push order: `push` records a chunk of
    /// one, `push_batch` one chunk per call. Replay re-pushes the inputs
    /// with the same chunking.
    pub chunks: Vec<u64>,
    /// The canonical observability event sequence of the recorded run (see
    /// [`canonical_events`]).
    pub events: Vec<EventKind>,
    /// Digest of the recorded run's results.
    pub summary: RunDigest,
    input_count: u64,
    input_bytes: Vec<u8>,
}

// Manual: SpecConfig holds TradeoffBindings (not comparable); equality
// covers exactly the fields the log serializes.
impl PartialEq for SessionLog {
    fn eq(&self, other: &Self) -> bool {
        let knobs = |c: &SpecConfig| {
            (
                c.group_size,
                c.window,
                c.max_reexec,
                c.rollback,
                c.speculate,
                c.validation_cost.to_bits(),
            )
        };
        self.label == other.label
            && self.seed == other.seed
            && knobs(&self.config) == knobs(&other.config)
            && self.segment == other.segment
            && self.adapt == other.adapt
            && self.retry == other.retry
            && self.retune_enabled == other.retune_enabled
            && self.faults == other.faults
            && self.chunks == other.chunks
            && self.events == other.events
            && self.summary == other.summary
            && self.input_count == other.input_count
            && self.input_bytes == other.input_bytes
    }
}

impl SessionLog {
    /// Number of recorded inputs.
    pub fn input_count(&self) -> u64 {
        self.input_count
    }

    /// Decode the recorded inputs as `I` (the input type of the replaying
    /// transition).
    pub fn decode_inputs<I: SpillCodec>(&self) -> Result<Vec<I>, ReplayError> {
        let mut bytes: &[u8] = &self.input_bytes;
        let mut inputs = Vec::with_capacity(self.input_count as usize);
        for index in 0..self.input_count {
            match I::decode(&mut bytes) {
                Some(input) => inputs.push(input),
                None => return Err(ReplayError::InputDecode { index }),
            }
        }
        if !bytes.is_empty() {
            return Err(ReplayError::Corrupt("trailing bytes after the last input"));
        }
        Ok(inputs)
    }

    /// Serialize to the versioned, self-describing binary format of
    /// `docs/replay.md`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&LOG_MAGIC);
        LOG_VERSION.encode(&mut out);

        let mut meta = Vec::new();
        self.label.encode(&mut meta);
        self.seed.encode(&mut meta);
        (self.config.group_size as u64).encode(&mut meta);
        (self.config.window as u64).encode(&mut meta);
        (self.config.max_reexec as u64).encode(&mut meta);
        (self.config.rollback as u64).encode(&mut meta);
        self.config.speculate.encode(&mut meta);
        self.config.validation_cost.encode(&mut meta);
        self.segment.is_some().encode(&mut meta);
        (self.segment.unwrap_or(0) as u64).encode(&mut meta);
        self.adapt.is_some().encode(&mut meta);
        let a = self.adapt.unwrap_or_default();
        a.shrink_after.encode(&mut meta);
        (a.min_group_size as u64).encode(&mut meta);
        a.grow_after.encode(&mut meta);
        a.reprobe_after.encode(&mut meta);
        self.retry.max_retries.encode(&mut meta);
        (self.retry.backoff.as_nanos() as u64).encode(&mut meta);
        self.retry.multiplier.encode(&mut meta);
        self.retune_enabled.encode(&mut meta);
        section(&mut out, TAG_META, &meta);

        if let Some(plan) = &self.faults {
            let mut fp = Vec::new();
            plan.seed.encode(&mut fp);
            for rule in [
                &plan.worker_panic,
                &plan.validation_mismatch,
                &plan.slow_group,
                &plan.queue_stall,
            ] {
                rule.rate.encode(&mut fp);
                rule.attempts.encode(&mut fp);
                (rule.delay.as_nanos() as u64).encode(&mut fp);
            }
            section(&mut out, TAG_FAULTS, &fp);
        }

        let mut chunks = Vec::new();
        self.chunks.encode(&mut chunks);
        section(&mut out, TAG_CHUNKS, &chunks);

        let mut inputs = Vec::new();
        self.input_count.encode(&mut inputs);
        inputs.extend_from_slice(&self.input_bytes);
        section(&mut out, TAG_INPUTS, &inputs);

        let mut events = Vec::new();
        (self.events.len() as u64).encode(&mut events);
        for ev in &self.events {
            encode_event(ev, &mut events);
        }
        section(&mut out, TAG_EVENTS, &events);

        let mut summary = Vec::new();
        self.summary.outputs.encode(&mut summary);
        self.summary.trace_digest.encode(&mut summary);
        self.summary.report_digest.encode(&mut summary);
        section(&mut out, TAG_SUMMARY, &summary);

        section(&mut out, TAG_END, &[]);
        out
    }

    /// Decode a log written by [`SessionLog::to_bytes`]. Malformed input
    /// yields a typed [`ReplayError`], never a panic; sections with
    /// unknown tags are skipped.
    pub fn from_bytes(buf: &[u8]) -> Result<SessionLog, ReplayError> {
        let mut bytes = buf;
        let magic = take(&mut bytes, LOG_MAGIC.len()).ok_or(ReplayError::Truncated)?;
        if magic != LOG_MAGIC {
            return Err(ReplayError::BadMagic);
        }
        let version = u32::decode(&mut bytes).ok_or(ReplayError::Truncated)?;
        if version != LOG_VERSION {
            return Err(ReplayError::UnsupportedVersion(version));
        }

        let mut meta = None;
        let mut faults = None;
        let mut chunks = None;
        let mut inputs = None;
        let mut events = None;
        let mut summary = None;
        loop {
            let tag = u8::decode(&mut bytes).ok_or(ReplayError::Truncated)?;
            let len = u64::decode(&mut bytes).ok_or(ReplayError::Truncated)? as usize;
            let mut payload = take(&mut bytes, len).ok_or(ReplayError::Truncated)?;
            match tag {
                TAG_END => break,
                TAG_META => meta = Some(decode_meta(&mut payload)?),
                TAG_FAULTS => faults = Some(decode_faults(&mut payload)?),
                TAG_CHUNKS => {
                    chunks = Some(
                        Vec::<u64>::decode(&mut payload)
                            .ok_or(ReplayError::Corrupt("chunks section"))?,
                    )
                }
                TAG_INPUTS => {
                    let count =
                        u64::decode(&mut payload).ok_or(ReplayError::Corrupt("inputs section"))?;
                    inputs = Some((count, payload.to_vec()));
                }
                TAG_EVENTS => {
                    let count =
                        u64::decode(&mut payload).ok_or(ReplayError::Corrupt("events section"))?;
                    let mut evs = Vec::with_capacity(count as usize);
                    for _ in 0..count {
                        evs.push(
                            decode_event(&mut payload)
                                .ok_or(ReplayError::Corrupt("events section"))?,
                        );
                    }
                    events = Some(evs);
                }
                TAG_SUMMARY => {
                    let mut word =
                        || u64::decode(&mut payload).ok_or(ReplayError::Corrupt("summary section"));
                    summary = Some(RunDigest {
                        outputs: word()?,
                        trace_digest: word()?,
                        report_digest: word()?,
                    });
                }
                // Unknown section from a same-version writer extension:
                // self-describing framing lets us skip it.
                _ => {}
            }
        }

        let (label, seed, config, segment, adapt, retry, retune_enabled) =
            meta.ok_or(ReplayError::MissingSection("meta"))?;
        let chunks = chunks.ok_or(ReplayError::MissingSection("chunks"))?;
        let (input_count, input_bytes) = inputs.ok_or(ReplayError::MissingSection("inputs"))?;
        let events = events.ok_or(ReplayError::MissingSection("events"))?;
        let summary = summary.ok_or(ReplayError::MissingSection("summary"))?;
        if chunks.iter().sum::<u64>() != input_count {
            return Err(ReplayError::Corrupt(
                "chunk sizes disagree with input count",
            ));
        }
        Ok(SessionLog {
            label,
            seed,
            config,
            segment,
            adapt,
            retry,
            retune_enabled,
            faults,
            chunks,
            events,
            summary,
            input_count,
            input_bytes,
        })
    }
}

type MetaFields = (
    String,
    u64,
    SpecConfig,
    Option<usize>,
    Option<AdaptPolicy>,
    RetryPolicy,
    bool,
);

fn decode_meta(bytes: &mut &[u8]) -> Result<MetaFields, ReplayError> {
    let corrupt = ReplayError::Corrupt("meta section");
    let label = String::decode(bytes).ok_or(corrupt.clone())?;
    let seed = u64::decode(bytes).ok_or(corrupt.clone())?;
    let group_size = u64::decode(bytes).ok_or(corrupt.clone())? as usize;
    let window = u64::decode(bytes).ok_or(corrupt.clone())? as usize;
    let max_reexec = u64::decode(bytes).ok_or(corrupt.clone())? as usize;
    let rollback = u64::decode(bytes).ok_or(corrupt.clone())? as usize;
    let speculate = bool::decode(bytes).ok_or(corrupt.clone())?;
    let validation_cost = f64::decode(bytes).ok_or(corrupt.clone())?;
    let has_segment = bool::decode(bytes).ok_or(corrupt.clone())?;
    let segment = u64::decode(bytes).ok_or(corrupt.clone())? as usize;
    let has_adapt = bool::decode(bytes).ok_or(corrupt.clone())?;
    let shrink_after = u32::decode(bytes).ok_or(corrupt.clone())?;
    let min_group_size = u64::decode(bytes).ok_or(corrupt.clone())? as usize;
    let grow_after = u32::decode(bytes).ok_or(corrupt.clone())?;
    let reprobe_after = u32::decode(bytes).ok_or(corrupt.clone())?;
    let max_retries = u32::decode(bytes).ok_or(corrupt.clone())?;
    let backoff_ns = u64::decode(bytes).ok_or(corrupt.clone())?;
    let multiplier = u32::decode(bytes).ok_or(corrupt.clone())?;
    let retune_enabled = bool::decode(bytes).ok_or(corrupt)?;
    Ok((
        label,
        seed,
        SpecConfig {
            group_size,
            window,
            max_reexec,
            rollback,
            speculate,
            validation_cost,
            ..SpecConfig::default()
        },
        has_segment.then_some(segment),
        has_adapt.then_some(AdaptPolicy {
            shrink_after,
            min_group_size,
            grow_after,
            reprobe_after,
        }),
        RetryPolicy {
            max_retries,
            backoff: std::time::Duration::from_nanos(backoff_ns),
            multiplier,
        },
        retune_enabled,
    ))
}

fn decode_faults(bytes: &mut &[u8]) -> Result<FaultPlan, ReplayError> {
    let corrupt = ReplayError::Corrupt("faults section");
    let seed = u64::decode(bytes).ok_or(corrupt.clone())?;
    let mut rules = [FaultRule::off(); 4];
    for rule in &mut rules {
        rule.rate = f64::decode(bytes).ok_or(corrupt.clone())?;
        rule.attempts = u32::decode(bytes).ok_or(corrupt.clone())?;
        rule.delay = std::time::Duration::from_nanos(u64::decode(bytes).ok_or(corrupt.clone())?);
    }
    Ok(FaultPlan::new(seed)
        .worker_panic(rules[0])
        .validation_mismatch(rules[1])
        .slow_group(rules[2])
        .queue_stall(rules[3]))
}

fn section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    (payload.len() as u64).encode(out);
    out.extend_from_slice(payload);
}

fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if bytes.len() < n {
        return None;
    }
    let (front, rest) = bytes.split_at(n);
    *bytes = rest;
    Some(front)
}

// --------------------------------------------------------- event codec

fn encode_event(ev: &EventKind, out: &mut Vec<u8>) {
    let u = |x: usize, out: &mut Vec<u8>| (x as u64).encode(out);
    match ev {
        EventKind::RunStart { inputs, groups } => {
            out.push(0);
            u(*inputs, out);
            u(*groups, out);
        }
        EventKind::RunEnd => out.push(1),
        EventKind::GroupStart {
            group,
            start,
            end,
            speculative,
        } => {
            out.push(2);
            u(*group, out);
            u(*start, out);
            u(*end, out);
            speculative.encode(out);
        }
        EventKind::GroupEnd { group } => {
            out.push(3);
            u(*group, out);
        }
        EventKind::Validation {
            group,
            attempt,
            matched,
        } => {
            out.push(4);
            u(*group, out);
            u(*attempt, out);
            matched.encode(out);
        }
        EventKind::Reexecution { group, attempt } => {
            out.push(5);
            u(*group, out);
            u(*attempt, out);
        }
        EventKind::GroupCommit {
            group,
            reexecutions,
        } => {
            out.push(6);
            u(*group, out);
            u(*reexecutions, out);
        }
        EventKind::GroupAbort { group } => {
            out.push(7);
            u(*group, out);
        }
        EventKind::SequentialTailStart { index } => {
            out.push(8);
            u(*index, out);
        }
        EventKind::SequentialTailEnd => out.push(9),
        EventKind::FaultInjected {
            kind,
            site,
            attempt,
        } => {
            out.push(10);
            out.push(fault_kind_tag(*kind));
            u(*site, out);
            u(*attempt, out);
        }
        EventKind::GroupRetry { group, attempt } => {
            out.push(11);
            u(*group, out);
            u(*attempt, out);
        }
        EventKind::AdaptTransition { state, group_size } => {
            out.push(12);
            out.push(adapt_state_tag(*state));
            u(*group_size, out);
        }
        EventKind::Retune {
            segment,
            group_size,
            window,
            max_reexec,
        } => {
            out.push(13);
            segment.encode(out);
            u(*group_size, out);
            u(*window, out);
            u(*max_reexec, out);
        }
        EventKind::TenantAdmission { tenant, admitted } => {
            out.push(14);
            u(*tenant, out);
            u(*admitted, out);
        }
        EventKind::SpillWrite {
            tenant,
            segment,
            inputs,
        } => {
            out.push(15);
            u(*tenant, out);
            segment.encode(out);
            u(*inputs, out);
        }
        EventKind::SpillReplay {
            tenant,
            segment,
            inputs,
        } => {
            out.push(16);
            u(*tenant, out);
            segment.encode(out);
            u(*inputs, out);
        }
        EventKind::NodeValidation { node, matched } => {
            out.push(17);
            u(*node, out);
            matched.encode(out);
        }
        EventKind::NodeCommit { node } => {
            out.push(18);
            u(*node, out);
        }
        EventKind::NodeAbort { node } => {
            out.push(19);
            u(*node, out);
        }
        EventKind::ConeSquash { node, root } => {
            out.push(20);
            u(*node, out);
            u(*root, out);
        }
    }
}

fn decode_event(bytes: &mut &[u8]) -> Option<EventKind> {
    let tag = u8::decode(bytes)?;
    let u = |bytes: &mut &[u8]| u64::decode(bytes).map(|x| x as usize);
    Some(match tag {
        0 => EventKind::RunStart {
            inputs: u(bytes)?,
            groups: u(bytes)?,
        },
        1 => EventKind::RunEnd,
        2 => EventKind::GroupStart {
            group: u(bytes)?,
            start: u(bytes)?,
            end: u(bytes)?,
            speculative: bool::decode(bytes)?,
        },
        3 => EventKind::GroupEnd { group: u(bytes)? },
        4 => EventKind::Validation {
            group: u(bytes)?,
            attempt: u(bytes)?,
            matched: bool::decode(bytes)?,
        },
        5 => EventKind::Reexecution {
            group: u(bytes)?,
            attempt: u(bytes)?,
        },
        6 => EventKind::GroupCommit {
            group: u(bytes)?,
            reexecutions: u(bytes)?,
        },
        7 => EventKind::GroupAbort { group: u(bytes)? },
        8 => EventKind::SequentialTailStart { index: u(bytes)? },
        9 => EventKind::SequentialTailEnd,
        10 => EventKind::FaultInjected {
            kind: fault_kind_from_tag(u8::decode(bytes)?)?,
            site: u(bytes)?,
            attempt: u(bytes)?,
        },
        11 => EventKind::GroupRetry {
            group: u(bytes)?,
            attempt: u(bytes)?,
        },
        12 => EventKind::AdaptTransition {
            state: adapt_state_from_tag(u8::decode(bytes)?)?,
            group_size: u(bytes)?,
        },
        13 => EventKind::Retune {
            segment: u64::decode(bytes)?,
            group_size: u(bytes)?,
            window: u(bytes)?,
            max_reexec: u(bytes)?,
        },
        14 => EventKind::TenantAdmission {
            tenant: u(bytes)?,
            admitted: u(bytes)?,
        },
        15 => EventKind::SpillWrite {
            tenant: u(bytes)?,
            segment: u64::decode(bytes)?,
            inputs: u(bytes)?,
        },
        16 => EventKind::SpillReplay {
            tenant: u(bytes)?,
            segment: u64::decode(bytes)?,
            inputs: u(bytes)?,
        },
        17 => EventKind::NodeValidation {
            node: u(bytes)?,
            matched: bool::decode(bytes)?,
        },
        18 => EventKind::NodeCommit { node: u(bytes)? },
        19 => EventKind::NodeAbort { node: u(bytes)? },
        20 => EventKind::ConeSquash {
            node: u(bytes)?,
            root: u(bytes)?,
        },
        _ => return None,
    })
}

fn fault_kind_tag(kind: FaultKind) -> u8 {
    match kind {
        FaultKind::WorkerPanic => 0,
        FaultKind::ValidationMismatch => 1,
        FaultKind::SlowGroup => 2,
        FaultKind::QueueStall => 3,
    }
}

fn fault_kind_from_tag(tag: u8) -> Option<FaultKind> {
    Some(match tag {
        0 => FaultKind::WorkerPanic,
        1 => FaultKind::ValidationMismatch,
        2 => FaultKind::SlowGroup,
        3 => FaultKind::QueueStall,
        _ => return None,
    })
}

fn adapt_state_tag(state: AdaptState) -> u8 {
    match state {
        AdaptState::Speculative => 0,
        AdaptState::Shrunk => 1,
        AdaptState::Sequential => 2,
        AdaptState::Probing => 3,
    }
}

fn adapt_state_from_tag(tag: u8) -> Option<AdaptState> {
    Some(match tag {
        0 => AdaptState::Speculative,
        1 => AdaptState::Shrunk,
        2 => AdaptState::Sequential,
        3 => AdaptState::Probing,
        _ => return None,
    })
}

// --------------------------------------------------- canonical ordering

/// Whether the event is emitted from pool worker threads, so its position
/// in raw sink order races with other workers' events. Returns the
/// deterministic sort key `(group/site, attempt, kind rank)` used within
/// its segment.
fn floating_key(ev: &EventKind) -> Option<(usize, usize, u8)> {
    match ev {
        EventKind::GroupStart { group, .. } => Some((*group, 0, 0)),
        EventKind::FaultInjected {
            kind: FaultKind::WorkerPanic | FaultKind::SlowGroup,
            site,
            attempt,
        } => Some((*site, *attempt, 1)),
        EventKind::GroupRetry { group, attempt } => Some((*group, *attempt, 2)),
        EventKind::GroupEnd { group } => Some((*group, usize::MAX, 3)),
        _ => None,
    }
}

/// Put a raw event sequence into the canonical order the determinism
/// contract covers.
///
/// Coordinator-emitted *resolution* events (run/segment boundaries,
/// validations, re-executions, commits, aborts, the sequential tail,
/// forced-mismatch and queue-stall faults, adapt and retune transitions)
/// are deterministic in both content and relative order, and keep their
/// raw order. Worker-emitted *execution* events (group start/end,
/// worker-panic and slow-group faults, retries) are deterministic in
/// content and multiplicity but interleave racily across workers; within
/// each segment they are stably sorted by `(group, attempt, kind)` and
/// placed just before the segment's `RunEnd`. Two runs of the same log are
/// therefore byte-identical after canonicalization — the exact contract
/// `docs/replay.md` documents.
pub fn canonical_events(raw: &[EventKind]) -> Vec<EventKind> {
    let mut out = Vec::with_capacity(raw.len());
    let mut floating: Vec<EventKind> = Vec::new();
    let flush = |floating: &mut Vec<EventKind>, out: &mut Vec<EventKind>| {
        floating.sort_by_key(|ev| floating_key(ev).expect("only floating events are buffered"));
        out.append(floating);
    };
    for ev in raw {
        if floating_key(ev).is_some() {
            floating.push(*ev);
        } else {
            if matches!(ev, EventKind::RunEnd) {
                flush(&mut floating, &mut out);
            }
            out.push(*ev);
        }
    }
    flush(&mut floating, &mut out);
    out
}

// ------------------------------------------------------------- digests

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over u64 *words* rather than bytes: one xor+multiply per field
/// keeps the digest cheap enough for record mode's ≤5% overhead budget
/// while staying fully deterministic.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }
    fn u64(&mut self, x: u64) {
        self.0 ^= x;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }
    fn usize(&mut self, x: usize) {
        self.u64(x as u64);
    }
    fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }
    fn bool(&mut self, x: bool) {
        self.u64(u64::from(x));
    }
}

/// FNV-1a digest of a [`SpecTrace`]: node kinds and coordinates, work
/// totals and memory splits as IEEE bit patterns, dependence edges, and
/// commit flags. Equal digests ⇔ byte-identical trace layout.
pub fn trace_digest(trace: &SpecTrace) -> u64 {
    let mut h = Fnv::new();
    h.usize(trace.nodes.len());
    for node in &trace.nodes {
        match &node.kind {
            TraceNodeKind::Auxiliary { group } => {
                h.u64(0);
                h.usize(*group);
            }
            TraceNodeKind::Invocation {
                group,
                index,
                attempt,
                sequential_tail,
            } => {
                h.u64(1);
                h.usize(*group);
                h.usize(*index);
                h.usize(*attempt);
                h.bool(*sequential_tail);
            }
            TraceNodeKind::Validation { group, attempt } => {
                h.u64(2);
                h.usize(*group);
                h.usize(*attempt);
            }
        }
        h.f64(node.work.total);
        h.f64(node.work.memory);
        h.usize(node.deps.len());
        for &d in &node.deps {
            h.usize(d);
        }
        h.bool(node.committed);
    }
    h.0
}

/// FNV-1a digest of a [`SpecReport`]: per-group records, counters, the
/// abort flag, and the work sums as IEEE bit patterns.
pub fn report_digest(report: &SpecReport) -> u64 {
    let mut h = Fnv::new();
    h.usize(report.groups.len());
    for g in &report.groups {
        h.usize(g.start);
        h.usize(g.end);
        match g.resolution {
            GroupResolution::NonSpeculative => h.u64(0),
            GroupResolution::Committed { reexecutions } => {
                h.u64(1);
                h.usize(reexecutions);
            }
            GroupResolution::Aborted => h.u64(2),
            GroupResolution::SequentialTail => h.u64(3),
        }
    }
    h.usize(report.reexecutions);
    h.usize(report.validations);
    h.bool(report.aborted);
    h.f64(report.committed_original_work);
    h.f64(report.committed_aux_work);
    h.f64(report.squashed_work);
    h.0
}

// ------------------------------------------------------------ recording

/// Tee sink: appends every event to an in-memory tape and forwards to the
/// wrapped user sink. Always enabled — recording needs the events even
/// when the user's sink is a no-op.
struct TapeSink {
    inner: Arc<dyn EventSink>,
    events: Mutex<Vec<EventKind>>,
}

impl TapeSink {
    fn over(inner: Arc<dyn EventSink>) -> Self {
        TapeSink {
            inner,
            events: Mutex::new(Vec::new()),
        }
    }

    fn take(&self) -> Vec<EventKind> {
        std::mem::take(&mut *self.events.lock())
    }
}

impl EventSink for TapeSink {
    fn enabled(&self) -> bool {
        true
    }

    fn emit(&self, kind: EventKind) {
        self.events.lock().push(kind);
        if self.inner.enabled() {
            self.inner.emit(kind);
        }
    }
}

/// A [`Session`] that records everything the run consumed
/// into a [`SessionLog`] as it executes.
///
/// ```
/// use stats_core::replay::{replay, SessionRecorder};
/// use stats_core::{ExactState, InvocationCtx, RunOptions, Session, StateTransition};
///
/// struct Double;
/// impl StateTransition for Double {
///     type Input = u64;
///     type State = ExactState<u64>;
///     type Output = u64;
///     fn compute_output(
///         &self,
///         input: &u64,
///         state: &mut ExactState<u64>,
///         ctx: &mut InvocationCtx,
///     ) -> u64 {
///         ctx.charge(1.0);
///         state.0 = *input;
///         2 * *input
///     }
/// }
///
/// let recorder = SessionRecorder::new(ExactState(0), Double, RunOptions::default().seed(7));
/// for i in 0..32 {
///     recorder.push(i);
/// }
/// let (outcome, log) = recorder.finish();
///
/// let bytes = log.to_bytes();
/// let log = stats_core::replay::SessionLog::from_bytes(&bytes).unwrap();
/// let replayed = replay(&log, ExactState(0), Double, RunOptions::default()).unwrap();
/// assert!(replayed.is_faithful());
/// assert_eq!(replayed.outcome.outputs, outcome.outputs);
/// ```
pub struct SessionRecorder<T: StateTransition>
where
    T::Input: SpillCodec,
{
    session: Session<T>,
    tape: Arc<TapeSink>,
    log: Mutex<SessionLog>,
}

impl<T: StateTransition> SessionRecorder<T>
where
    T::Input: SpillCodec,
{
    /// Open a recorded stream from `initial` under `options` (see
    /// [`Session::new`] for the streaming semantics). The options' sink is
    /// teed: the user still observes every event, and the recorder keeps
    /// the canonical sequence for the log.
    pub fn new(initial: T::State, transition: T, mut options: RunOptions) -> Self {
        let log = SessionLog {
            label: String::new(),
            seed: options.seed,
            config: SpecConfig {
                aux_bindings: Default::default(),
                orig_bindings: Default::default(),
                ..options.config.clone()
            },
            segment: options.segment,
            adapt: options.adapt,
            retry: options.retry,
            retune_enabled: options.retune.is_some(),
            faults: options.faults,
            chunks: Vec::new(),
            events: Vec::new(),
            summary: RunDigest::default(),
            input_count: 0,
            input_bytes: Vec::new(),
        };
        let tape = Arc::new(TapeSink::over(Arc::clone(&options.sink)));
        options.sink = Arc::clone(&tape) as Arc<dyn EventSink>;
        SessionRecorder {
            session: Session::new(initial, transition, options),
            tape,
            log: Mutex::new(log),
        }
    }

    /// Set the log's free-form label (e.g. a workload name).
    pub fn label(self, label: impl Into<String>) -> Self {
        self.log.lock().label = label.into();
        self
    }

    /// Record and enqueue one input (one chunk of one). Blocks under
    /// backpressure exactly like [`Session::push`].
    pub fn push(&self, input: T::Input) {
        {
            let mut log = self.log.lock();
            input.encode(&mut log.input_bytes);
            log.input_count += 1;
            log.chunks.push(1);
        }
        self.session.push(input);
    }

    /// Record and enqueue a batch of inputs (one chunk). Blocks under
    /// backpressure exactly like [`Session::push_batch`].
    pub fn push_batch(&self, inputs: impl IntoIterator<Item = T::Input>) {
        let inputs: Vec<T::Input> = inputs.into_iter().collect();
        {
            let mut log = self.log.lock();
            for input in &inputs {
                input.encode(&mut log.input_bytes);
            }
            log.input_count += inputs.len() as u64;
            log.chunks.push(inputs.len() as u64);
        }
        self.session.push_batch(inputs);
    }

    /// Close the stream, drain the engine, and return the outcome together
    /// with the finished [`SessionLog`] (canonical events and result
    /// digests included).
    pub fn finish(self) -> (SpecOutcome<T>, SessionLog) {
        let outcome = self.session.finish();
        let mut log = self.log.into_inner();
        log.events = canonical_events(&self.tape.take());
        log.summary = RunDigest {
            outputs: outcome.outputs.len() as u64,
            trace_digest: trace_digest(&outcome.trace),
            report_digest: report_digest(&outcome.report),
        };
        (outcome, log)
    }
}

// ------------------------------------------------------------- replay

/// Plays recorded [`EventKind::Retune`] decisions back at their recorded
/// segments, replacing the live tuner at replay time (no database needed).
struct ReplayRetuner {
    decisions: BTreeMap<u64, TuneDecision>,
}

impl Retuner for ReplayRetuner {
    fn observe(&mut self, _stats: &SegmentStats) {}

    fn decide(&mut self, next_segment: u64) -> Option<TuneDecision> {
        self.decisions.get(&next_segment).copied()
    }
}

/// What [`replay`] produced and how it compared to the recording.
pub struct ReplayOutcome<T: StateTransition> {
    /// The re-executed run's outcome.
    pub outcome: SpecOutcome<T>,
    /// Positions where the replayed canonical event sequence differs from
    /// the recorded one (plus any length difference). Zero on a faithful
    /// replay.
    pub divergences: usize,
    /// Number of canonical events compared.
    pub events: usize,
    /// Whether the replayed trace digest matches the recorded one.
    pub trace_matched: bool,
    /// Whether the replayed report digest matches the recorded one.
    pub report_matched: bool,
}

impl<T: StateTransition> ReplayOutcome<T> {
    /// Whether the replay reproduced the recording exactly: zero event
    /// divergences and matching trace/report digests.
    pub fn is_faithful(&self) -> bool {
        self.divergences == 0 && self.trace_matched && self.report_matched
    }
}

/// Re-execute a recorded session and verify it against the recording.
///
/// `initial` and `transition` are the same program the recording ran
/// (code is not serialized); `env` contributes only non-semantic resources
/// (pool, sink, queue capacity, priority, tradeoff bindings) — every
/// semantics-bearing knob (seed, configuration scalars, segmenting, fault
/// plan, adapt/retry policies, re-tuning decisions) comes from the log.
/// The recorded inputs are re-pushed with the recorded chunking.
///
/// See [`SessionRecorder`] for a worked record→replay example.
pub fn replay<T: StateTransition>(
    log: &SessionLog,
    initial: T::State,
    transition: T,
    env: RunOptions,
) -> Result<ReplayOutcome<T>, ReplayError>
where
    T::Input: SpillCodec,
{
    let inputs: Vec<T::Input> = log.decode_inputs()?;

    let mut options = env;
    options.seed = log.seed;
    options.config = SpecConfig {
        group_size: log.config.group_size,
        window: log.config.window,
        max_reexec: log.config.max_reexec,
        rollback: log.config.rollback,
        speculate: log.config.speculate,
        validation_cost: log.config.validation_cost,
        ..options.config
    };
    options.segment = log.segment;
    options.adapt = log.adapt;
    options.retry = log.retry;
    options.faults = log.faults;
    options.plan = None;
    options.retune = log.retune_enabled.then(|| {
        let decisions = log
            .events
            .iter()
            .filter_map(|ev| match ev {
                EventKind::Retune {
                    segment,
                    group_size,
                    window,
                    max_reexec,
                } => Some((
                    *segment,
                    TuneDecision {
                        group_size: *group_size,
                        window: *window,
                        max_reexec: *max_reexec,
                    },
                )),
                _ => None,
            })
            .collect();
        Arc::new(std::sync::Mutex::new(ReplayRetuner { decisions }))
            as Arc<std::sync::Mutex<dyn Retuner>>
    });

    let tape = Arc::new(TapeSink::over(Arc::clone(&options.sink)));
    options.sink = Arc::clone(&tape) as Arc<dyn EventSink>;

    let session = Session::new(initial, transition, options);
    let mut iter = inputs.into_iter();
    for &chunk in &log.chunks {
        session.push_batch(iter.by_ref().take(chunk as usize));
    }
    let outcome = session.finish();

    let replayed = canonical_events(&tape.take());
    let divergences = replayed
        .iter()
        .zip(&log.events)
        .filter(|(a, b)| *a != *b)
        .count()
        + replayed.len().abs_diff(log.events.len());
    Ok(ReplayOutcome {
        events: replayed.len().max(log.events.len()),
        divergences,
        trace_matched: trace_digest(&outcome.trace) == log.summary.trace_digest,
        report_matched: report_digest(&outcome.report) == log.summary.report_digest
            && outcome.outputs.len() as u64 == log.summary.outputs,
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::InvocationCtx;
    use crate::sdi::ExactState;

    struct Double;
    impl StateTransition for Double {
        type Input = u64;
        type State = ExactState<u64>;
        type Output = u64;
        fn compute_output(
            &self,
            input: &u64,
            state: &mut ExactState<u64>,
            ctx: &mut InvocationCtx,
        ) -> u64 {
            ctx.charge(1.0);
            state.0 = *input;
            2 * *input
        }
    }

    fn sample_log() -> SessionLog {
        let recorder = SessionRecorder::new(
            ExactState(0),
            Double,
            RunOptions::default()
                .seed(42)
                .faults(FaultPlan::new(7).validation_mismatch(FaultRule::transient(0.5))),
        )
        .label("double");
        recorder.push_batch(0..40u64);
        recorder.push(99);
        let (_, log) = recorder.finish();
        log
    }

    #[test]
    fn log_round_trips_through_bytes() {
        let log = sample_log();
        let bytes = log.to_bytes();
        let back = SessionLog::from_bytes(&bytes).unwrap();
        assert_eq!(back, log);
        assert_eq!(back.label, "double");
        assert_eq!(back.input_count(), 41);
        assert_eq!(back.chunks, vec![40, 1]);
        assert_eq!(back.decode_inputs::<u64>().unwrap().len(), 41);
    }

    #[test]
    fn truncation_yields_typed_errors_everywhere() {
        let bytes = sample_log().to_bytes();
        for cut in 0..bytes.len() {
            match SessionLog::from_bytes(&bytes[..cut]) {
                Err(_) => {}
                Ok(_) => panic!("truncation at {cut}/{} decoded successfully", bytes.len()),
            }
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut bytes = sample_log().to_bytes();
        assert_eq!(
            SessionLog::from_bytes(&bytes[..4]),
            Err(ReplayError::Truncated)
        );
        bytes[0] = b'X';
        assert_eq!(SessionLog::from_bytes(&bytes), Err(ReplayError::BadMagic));
        let mut bytes = sample_log().to_bytes();
        bytes[8] = 0xFF; // version little-endian low byte
        assert!(matches!(
            SessionLog::from_bytes(&bytes),
            Err(ReplayError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let log = sample_log();
        let bytes = log.to_bytes();
        // Re-frame with an unknown section spliced in before END.
        let end_frame = 1 + 8; // tag + length
        let mut spliced = bytes[..bytes.len() - end_frame].to_vec();
        section(&mut spliced, 0xEE, &[1, 2, 3]);
        section(&mut spliced, TAG_END, &[]);
        assert_eq!(SessionLog::from_bytes(&spliced).unwrap(), log);
    }

    #[test]
    fn replay_of_plain_run_is_faithful() {
        let log = sample_log();
        let r = replay(&log, ExactState(0), Double, RunOptions::default()).unwrap();
        assert!(r.is_faithful(), "divergences: {}", r.divergences);
        assert_eq!(r.outcome.outputs.len(), 41);
    }

    #[test]
    fn replay_detects_a_different_program() {
        struct Triple;
        impl StateTransition for Triple {
            type Input = u64;
            type State = ExactState<u64>;
            type Output = u64;
            fn compute_output(
                &self,
                input: &u64,
                state: &mut ExactState<u64>,
                ctx: &mut InvocationCtx,
            ) -> u64 {
                ctx.charge(2.0); // different work profile => different trace
                state.0 = *input;
                3 * *input
            }
        }
        let log = sample_log();
        let r = replay(&log, ExactState(0), Triple, RunOptions::default()).unwrap();
        assert!(!r.trace_matched);
        assert!(!r.is_faithful());
    }

    #[test]
    fn canonicalization_sorts_worker_events_within_segments() {
        let raw = [
            EventKind::RunStart {
                inputs: 0,
                groups: 0,
            },
            EventKind::GroupEnd { group: 2 },
            EventKind::GroupStart {
                group: 2,
                start: 8,
                end: 12,
                speculative: true,
            },
            EventKind::GroupStart {
                group: 1,
                start: 4,
                end: 8,
                speculative: true,
            },
            EventKind::Validation {
                group: 1,
                attempt: 0,
                matched: true,
            },
            EventKind::GroupEnd { group: 1 },
            EventKind::RunEnd,
        ];
        let canon = canonical_events(&raw);
        // Placed events keep their order; floating events sort by
        // (group, attempt, rank) just before RunEnd.
        assert_eq!(
            canon,
            vec![
                EventKind::RunStart {
                    inputs: 0,
                    groups: 0
                },
                EventKind::Validation {
                    group: 1,
                    attempt: 0,
                    matched: true
                },
                EventKind::GroupStart {
                    group: 1,
                    start: 4,
                    end: 8,
                    speculative: true
                },
                EventKind::GroupEnd { group: 1 },
                EventKind::GroupStart {
                    group: 2,
                    start: 8,
                    end: 12,
                    speculative: true
                },
                EventKind::GroupEnd { group: 2 },
                EventKind::RunEnd,
            ]
        );
    }

    #[test]
    fn digests_are_sensitive_to_float_bits() {
        let mut trace = SpecTrace::default();
        trace.nodes.push(crate::protocol::TraceNode {
            kind: TraceNodeKind::Auxiliary { group: 0 },
            work: crate::ctx::WorkMeter {
                total: 0.0,
                memory: 0.0,
            },
            deps: vec![],
            committed: true,
        });
        let a = trace_digest(&trace);
        trace.nodes[0].work.total = -0.0; // same value, different bits
        let b = trace_digest(&trace);
        assert_ne!(a, b);
    }
}
