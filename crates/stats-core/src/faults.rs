//! Deterministic fault injection for the speculation runtime.
//!
//! A [`FaultPlan`] is a seeded description of *where* the runtime should
//! misbehave: which speculative groups lose their worker, which validations
//! are forced to mismatch, which groups run slow, and which queue intakes
//! stall. Every decision is a pure hash of `(plan seed, run seed, fault
//! kind, site, attempt)` — no clocks, no RNG state — so the same plan
//! replayed against the same run produces the *same* faults at the *same*
//! points. That determinism is what turns a chaos scenario into a
//! regression test: see `docs/robustness.md` for the full contract.
//!
//! Injection sites:
//!
//! - **Worker panic** ([`FaultPlan::worker_panic`]): a pool job dispatched
//!   by [`Session`](crate::Session) dies before producing its group,
//!   routed through the same completion channel a real panic uses. The
//!   coordinator retries under [`RetryPolicy`](crate::RetryPolicy) and
//!   finally re-executes the group inline.
//! - **Forced validation mismatch** ([`FaultPlan::validation_mismatch`]):
//!   the resolver treats a speculative start state as mismatched even when
//!   it matched, driving re-execution and — with an unbounded rule — a
//!   full abort.
//! - **Slow group** ([`FaultPlan::slow_group`]): a group's execution is
//!   delayed by [`FaultRule::delay`] before it starts.
//! - **Queue stall** ([`FaultPlan::queue_stall`]): the streaming
//!   coordinator sleeps before admitting a given input from the bounded
//!   queue.

use std::time::Duration;

/// The kind of fault injected at a site. Carried on
/// [`EventKind::FaultInjected`](crate::EventKind::FaultInjected) so traces
/// record exactly which faults fired where.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A speculative pool job dies before producing its group.
    WorkerPanic,
    /// A validation is forced to report a mismatch.
    ValidationMismatch,
    /// A group's execution is delayed before it starts.
    SlowGroup,
    /// The streaming coordinator stalls before admitting an input.
    QueueStall,
}

impl FaultKind {
    /// Stable salt mixed into the site hash so the four kinds draw
    /// independent decisions from one plan seed.
    fn salt(self) -> u64 {
        match self {
            FaultKind::WorkerPanic => 0x9e37_79b9_7f4a_7c15,
            FaultKind::ValidationMismatch => 0xc2b2_ae3d_27d4_eb4f,
            FaultKind::SlowGroup => 0x1656_67b1_9e37_79f9,
            FaultKind::QueueStall => 0x2545_f491_4f6c_dd1d,
        }
    }

    /// Short stable label used in event rendering and smoke output.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::WorkerPanic => "worker-panic",
            FaultKind::ValidationMismatch => "validation-mismatch",
            FaultKind::SlowGroup => "slow-group",
            FaultKind::QueueStall => "queue-stall",
        }
    }
}

/// One injection rule: how often a site is targeted, and how persistently
/// the fault fires once it is.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultRule {
    /// Probability in `[0, 1]` that an eligible site is targeted. The
    /// draw is a pure hash of the site coordinates, so the *same* sites
    /// are targeted on every replay.
    pub rate: f64,
    /// Number of successive attempts at a targeted site the fault fires
    /// on; attempts numbered `>= attempts` succeed. `u32::MAX` makes the
    /// fault permanent (e.g. a validation mismatch that survives every
    /// re-execution and forces an abort).
    pub attempts: u32,
    /// Injected delay, for the latency faults (slow group, queue stall).
    /// Ignored by the fail-stop kinds.
    pub delay: Duration,
}

impl Default for FaultRule {
    fn default() -> Self {
        FaultRule {
            rate: 0.0,
            attempts: 1,
            delay: Duration::ZERO,
        }
    }
}

impl FaultRule {
    /// A rule that never fires.
    pub fn off() -> Self {
        FaultRule::default()
    }

    /// A fail-stop rule targeting `rate` of sites, firing on the first
    /// attempt only (retries succeed).
    pub fn transient(rate: f64) -> Self {
        FaultRule {
            rate,
            attempts: 1,
            delay: Duration::ZERO,
        }
    }

    /// A fail-stop rule targeting `rate` of sites and firing on *every*
    /// attempt — retries and re-executions never clear it.
    pub fn permanent(rate: f64) -> Self {
        FaultRule {
            rate,
            attempts: u32::MAX,
            delay: Duration::ZERO,
        }
    }

    /// A latency rule delaying `rate` of sites by `delay`.
    pub fn slow(rate: f64, delay: Duration) -> Self {
        FaultRule {
            rate,
            attempts: u32::MAX,
            delay,
        }
    }
}

/// A seeded, deterministic plan of injected faults, threaded through
/// [`RunOptions::faults`](crate::RunOptions::faults).
///
/// The plan is inert by default ([`FaultPlan::new`] with all rules off);
/// enable individual kinds with the builder methods:
///
/// ```
/// use std::time::Duration;
/// use stats_core::prelude::*;
///
/// let plan = FaultPlan::new(7)
///     .validation_mismatch(FaultRule::transient(0.25))
///     .slow_group(FaultRule::slow(0.1, Duration::from_micros(50)));
/// let options = RunOptions::default().seed(42).faults(plan);
/// # let _ = options;
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed from which every injection decision is derived.
    pub seed: u64,
    /// Rule for killing speculative pool jobs ([`Session`](crate::Session)
    /// dispatch only; the batch pool path treats job panics as fatal).
    pub worker_panic: FaultRule,
    /// Rule for forcing validation mismatches in the resolver.
    pub validation_mismatch: FaultRule,
    /// Rule for delaying group execution.
    pub slow_group: FaultRule,
    /// Rule for stalling the streaming coordinator's queue intake.
    pub queue_stall: FaultRule,
}

impl FaultPlan {
    /// An inert plan: all rules off. Enable kinds with the builders.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            worker_panic: FaultRule::off(),
            validation_mismatch: FaultRule::off(),
            slow_group: FaultRule::off(),
            queue_stall: FaultRule::off(),
        }
    }

    /// Set the worker-panic rule.
    pub fn worker_panic(mut self, rule: FaultRule) -> Self {
        self.worker_panic = rule;
        self
    }

    /// Set the forced-validation-mismatch rule.
    pub fn validation_mismatch(mut self, rule: FaultRule) -> Self {
        self.validation_mismatch = rule;
        self
    }

    /// Set the slow-group rule.
    pub fn slow_group(mut self, rule: FaultRule) -> Self {
        self.slow_group = rule;
        self
    }

    /// Set the queue-stall rule.
    pub fn queue_stall(mut self, rule: FaultRule) -> Self {
        self.queue_stall = rule;
        self
    }

    fn rule(&self, kind: FaultKind) -> &FaultRule {
        match kind {
            FaultKind::WorkerPanic => &self.worker_panic,
            FaultKind::ValidationMismatch => &self.validation_mismatch,
            FaultKind::SlowGroup => &self.slow_group,
            FaultKind::QueueStall => &self.queue_stall,
        }
    }

    /// Whether `kind` fires at `site` (a group or input index, depending
    /// on the kind) on the given `attempt`, under the run seeded by
    /// `run_seed`. Pure: same arguments ⇒ same answer, forever.
    pub fn fires(&self, kind: FaultKind, run_seed: u64, site: u64, attempt: u32) -> bool {
        let rule = self.rule(kind);
        if rule.rate <= 0.0 || attempt >= rule.attempts {
            return false;
        }
        hash01(self.seed ^ kind.salt(), run_seed, site) < rule.rate
    }

    /// The delay to inject for a latency `kind` at `site`, or `None` when
    /// the site is not targeted. Latency faults ignore attempts.
    pub fn delay(&self, kind: FaultKind, run_seed: u64, site: u64) -> Option<Duration> {
        let rule = self.rule(kind);
        if rule.rate <= 0.0 || rule.delay.is_zero() {
            return None;
        }
        (hash01(self.seed ^ kind.salt(), run_seed, site) < rule.rate).then_some(rule.delay)
    }
}

/// SplitMix64-style finalizer mapping `(seed, run_seed, site)` to a
/// uniform draw in `[0, 1)` — the same mixing discipline as
/// `InvocationCtx::derive_seed`, so fault decisions inherit the runtime's
/// determinism story.
fn hash01(seed: u64, run_seed: u64, site: u64) -> f64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(run_seed.wrapping_add(1)))
        .wrapping_add(0xbf58_476d_1ce4_e5b9_u64.wrapping_mul(site.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Payload routed through the streaming coordinator's completion channel
/// when an injected [`FaultKind::WorkerPanic`] kills a pool job: records
/// which group died on which attempt so the coordinator can retry it.
#[derive(Clone, Copy, Debug)]
pub(crate) struct InjectedFault {
    pub(crate) group: usize,
    #[allow(dead_code)]
    pub(crate) attempt: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::new(1234)
            .worker_panic(FaultRule::transient(0.5))
            .validation_mismatch(FaultRule::permanent(0.5));
        for site in 0..256u64 {
            for attempt in 0..3 {
                let a = plan.fires(FaultKind::WorkerPanic, 9, site, attempt);
                let b = plan.fires(FaultKind::WorkerPanic, 9, site, attempt);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn rate_bounds_are_respected() {
        let never = FaultPlan::new(7).worker_panic(FaultRule::transient(0.0));
        let always = FaultPlan::new(7).worker_panic(FaultRule::transient(1.0));
        for site in 0..512u64 {
            assert!(!never.fires(FaultKind::WorkerPanic, 3, site, 0));
            assert!(always.fires(FaultKind::WorkerPanic, 3, site, 0));
        }
    }

    #[test]
    fn observed_rate_tracks_requested_rate() {
        let plan = FaultPlan::new(99).validation_mismatch(FaultRule::permanent(0.3));
        let hits = (0..4096u64)
            .filter(|&s| plan.fires(FaultKind::ValidationMismatch, 11, s, 0))
            .count();
        let observed = hits as f64 / 4096.0;
        assert!(
            (observed - 0.3).abs() < 0.05,
            "observed rate {observed} far from requested 0.3"
        );
    }

    #[test]
    fn attempts_bound_transient_faults() {
        let plan = FaultPlan::new(5).worker_panic(FaultRule::transient(1.0));
        assert!(plan.fires(FaultKind::WorkerPanic, 0, 3, 0));
        assert!(!plan.fires(FaultKind::WorkerPanic, 0, 3, 1));
        let hard = FaultPlan::new(5).worker_panic(FaultRule::permanent(1.0));
        assert!(hard.fires(FaultKind::WorkerPanic, 0, 3, 1_000_000));
    }

    #[test]
    fn kinds_draw_independent_decisions() {
        let plan = FaultPlan::new(42)
            .worker_panic(FaultRule::transient(0.5))
            .validation_mismatch(FaultRule::transient(0.5));
        let differs = (0..256u64).any(|s| {
            plan.fires(FaultKind::WorkerPanic, 1, s, 0)
                != plan.fires(FaultKind::ValidationMismatch, 1, s, 0)
        });
        assert!(differs, "kind salts failed to decorrelate decisions");
    }

    #[test]
    fn run_seed_varies_targeting_across_segments() {
        let plan = FaultPlan::new(42).validation_mismatch(FaultRule::permanent(0.5));
        let differs = (0..64u64).any(|seg| {
            plan.fires(FaultKind::ValidationMismatch, seg, 1, 0)
                != plan.fires(FaultKind::ValidationMismatch, 0, 1, 0)
        });
        assert!(
            differs,
            "same group index must draw fresh decisions per run seed"
        );
    }

    #[test]
    fn delay_applies_only_to_targeted_sites() {
        let d = Duration::from_micros(100);
        let plan = FaultPlan::new(3).slow_group(FaultRule::slow(0.5, d));
        let mut hit = 0;
        for site in 0..256u64 {
            if let Some(got) = plan.delay(FaultKind::SlowGroup, 2, site) {
                assert_eq!(got, d);
                hit += 1;
            }
        }
        assert!(hit > 64 && hit < 192, "targeting wildly off: {hit}/256");
    }
}
