//! Synchronization facade for the speculation runtime.
//!
//! Every concurrency primitive `stats-core` uses — mutexes, condvars,
//! atomics, threads, and the work-stealing deque — is imported from this
//! module rather than from `std`/`parking_lot`/`crossbeam` directly. A
//! normal build re-exports the real primitives unchanged (zero cost); a
//! build with `RUSTFLAGS="--cfg loom"` swaps in the `loom` model checker's
//! equivalents, so the loom suites in `tests/loom.rs` exhaustively explore
//! thread interleavings of the *actual* runtime code paths.
//!
//! CI enforces the funnel: `ci.sh` greps that no file outside `sync.rs`
//! imports `std::sync::atomic`, and `ci.sh --loom` runs the model suite.
//! The memory-ordering audit in `docs/concurrency.md` documents every
//! atomic routed through here, the happens-before edge its orderings
//! establish, and the loom model that pins it.
//!
//! Differences under `cfg(loom)` (all documented in `vendor/loom`):
//!
//! - `thread::sleep` becomes a cooperative yield — the model has no clock,
//!   and sleeping for real would only serialize the already-serialized
//!   model threads.
//! - `Condvar` timed waits time out exactly when no other model thread can
//!   run; a timeout never races a notification.
//! - `thread::available_parallelism` reports a fixed small constant so
//!   models stay tractable.

#[cfg(not(loom))]
pub use self::std_impl::*;

#[cfg(loom)]
pub use self::loom_impl::*;

/// Production implementation: thin re-exports of the real primitives.
#[cfg(not(loom))]
mod std_impl {
    pub use crossbeam::utils::CachePadded;
    pub use parking_lot::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
    pub use std::sync::Arc;

    /// Atomic integer types and memory orderings.
    pub mod atomic {
        pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    }

    /// Thread spawning and control.
    pub mod thread {
        pub use std::thread::{panicking, sleep, spawn, yield_now, Builder, JoinHandle, Result};

        /// Available hardware parallelism, defaulting to 1 when unknown.
        pub fn available_parallelism() -> usize {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Work-stealing deques (crossbeam's `Injector`/`Worker`/`Stealer`).
    pub mod deque {
        pub use crossbeam::deque::{Injector, Steal, Stealer, Worker};
    }
}

/// Model-checked implementation: loom primitives wrapped back into the
/// `parking_lot`-style ergonomics the runtime is written against.
#[cfg(loom)]
mod loom_impl {
    use std::fmt;
    use std::ops::{Deref, DerefMut};
    use std::time::Duration;

    pub use loom::sync::Arc;

    // Padding is a layout concern invisible to the model: reusing the
    // vendored type keeps the padded runtime structs identical under loom.
    pub use crossbeam::utils::CachePadded;

    /// Atomic integer types and memory orderings (model-checked: `Relaxed`
    /// loads explore stale values, `Acquire`/`Release` pairs establish
    /// happens-before edges the model tracks).
    pub mod atomic {
        pub use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    }

    /// Thread spawning and control, scheduled by the model.
    pub mod thread {
        pub use loom::thread::{panicking, spawn, yield_now, Builder, JoinHandle, Result};

        /// The model has no clock: sleeping degrades to a cooperative
        /// yield so the threads being waited on can run.
        pub fn sleep(_dur: std::time::Duration) {
            yield_now();
        }

        /// Fixed small parallelism so models stay tractable.
        pub fn available_parallelism() -> usize {
            2
        }
    }

    /// A mutex with `parking_lot` ergonomics over the loom model mutex.
    #[derive(Default)]
    pub struct Mutex<T> {
        inner: loom::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Wrap `value` in a new mutex.
        pub fn new(value: T) -> Self {
            Self {
                inner: loom::sync::Mutex::new(value),
            }
        }

        /// Consume the mutex, returning the inner value.
        pub fn into_inner(self) -> T {
            self.inner
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        /// Acquire the lock (a model scheduling point).
        pub fn lock(&self) -> MutexGuard<'_, T> {
            MutexGuard {
                inner: Some(
                    self.inner
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner),
                ),
            }
        }
    }

    impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Mutex").finish_non_exhaustive()
        }
    }

    /// RAII guard returned by [`Mutex::lock`].
    pub struct MutexGuard<'a, T> {
        // Kept in an Option so Condvar::wait can take the loom guard out
        // by value, mirroring the parking_lot facade.
        inner: Option<loom::sync::MutexGuard<'a, T>>,
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard taken during wait")
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard taken during wait")
        }
    }

    /// Result of a timed wait; mirrors `parking_lot::WaitTimeoutResult`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct WaitTimeoutResult {
        timed_out: bool,
    }

    impl WaitTimeoutResult {
        /// Whether the wait ended because the timeout elapsed.
        pub fn timed_out(&self) -> bool {
            self.timed_out
        }
    }

    /// Condition variable with `parking_lot`'s `&mut guard` signatures
    /// over the loom model condvar.
    #[derive(Debug, Default)]
    pub struct Condvar {
        inner: loom::sync::Condvar,
    }

    impl Condvar {
        /// New condition variable.
        pub fn new() -> Self {
            Self::default()
        }

        /// Wake one waiter (deterministic under the model).
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// Wake all waiters.
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }

        /// Block until notified, releasing the lock while waiting.
        pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            let inner = guard.inner.take().expect("guard taken during wait");
            let inner = self
                .inner
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.inner = Some(inner);
        }

        /// Block until notified or "timed out" — under the model, a
        /// timeout fires only when no other thread is runnable.
        pub fn wait_for<T>(
            &self,
            guard: &mut MutexGuard<'_, T>,
            _timeout: Duration,
        ) -> WaitTimeoutResult {
            let inner = guard.inner.take().expect("guard taken during wait");
            let (inner, result) = self
                .inner
                .wait_timeout(inner, _timeout)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.inner = Some(inner);
            WaitTimeoutResult {
                timed_out: result.timed_out(),
            }
        }
    }

    /// Work-stealing deques re-implemented over the model mutex so every
    /// queue operation is a scheduling point the checker can interleave
    /// (routing the vendored crossbeam shim's internal `std::sync::Mutex`
    /// through the model would hide those points instead).
    pub mod deque {
        use super::{Arc, Mutex};
        use std::collections::VecDeque;

        /// Result of a steal attempt.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub enum Steal<T> {
            /// The queue was empty.
            Empty,
            /// One task was stolen.
            Success(T),
            /// The operation lost a race and may be retried.
            Retry,
        }

        impl<T> Steal<T> {
            /// Whether the attempt found the queue empty.
            pub fn is_empty(&self) -> bool {
                matches!(self, Steal::Empty)
            }

            /// Whether a task was stolen.
            pub fn is_success(&self) -> bool {
                matches!(self, Steal::Success(_))
            }
        }

        /// Shared FIFO injector queue (model-checked).
        #[derive(Debug)]
        pub struct Injector<T> {
            q: Mutex<VecDeque<T>>,
        }

        impl<T> Default for Injector<T> {
            fn default() -> Self {
                Self::new()
            }
        }

        impl<T> Injector<T> {
            /// New empty injector.
            pub fn new() -> Self {
                Self {
                    q: Mutex::new(VecDeque::new()),
                }
            }

            /// Push a task onto the global queue.
            pub fn push(&self, task: T) {
                self.q.lock().push_back(task);
            }

            /// Whether the queue is currently empty (racy hint).
            pub fn is_empty(&self) -> bool {
                self.q.lock().is_empty()
            }

            /// Number of queued tasks (racy hint).
            pub fn len(&self) -> usize {
                self.q.lock().len()
            }

            /// Pop one task.
            pub fn steal(&self) -> Steal<T> {
                match self.q.lock().pop_front() {
                    Some(t) => Steal::Success(t),
                    None => Steal::Empty,
                }
            }

            /// Move a batch of tasks into `dest`'s local queue and pop one.
            pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
                let mut q = self.q.lock();
                let Some(first) = q.pop_front() else {
                    return Steal::Empty;
                };
                let batch = q.len() / 2;
                let mut local = dest.q.lock();
                for _ in 0..batch {
                    match q.pop_front() {
                        Some(t) => local.push_back(t),
                        None => break,
                    }
                }
                Steal::Success(first)
            }
        }

        /// A thread's local queue; the single producer-consumer end.
        #[derive(Debug)]
        pub struct Worker<T> {
            q: Arc<Mutex<VecDeque<T>>>,
        }

        impl<T> Worker<T> {
            /// New FIFO worker queue.
            pub fn new_fifo() -> Self {
                Self {
                    q: Arc::new(Mutex::new(VecDeque::new())),
                }
            }

            /// Push a task onto the local queue.
            pub fn push(&self, task: T) {
                self.q.lock().push_back(task);
            }

            /// Pop the next local task.
            pub fn pop(&self) -> Option<T> {
                self.q.lock().pop_front()
            }

            /// Whether the local queue is empty.
            pub fn is_empty(&self) -> bool {
                self.q.lock().is_empty()
            }

            /// A shared stealing handle onto this queue.
            pub fn stealer(&self) -> Stealer<T> {
                Stealer {
                    q: Arc::clone(&self.q),
                }
            }
        }

        /// Shared handle that steals from the far end of a [`Worker`].
        #[derive(Debug)]
        pub struct Stealer<T> {
            q: Arc<Mutex<VecDeque<T>>>,
        }

        impl<T> Clone for Stealer<T> {
            fn clone(&self) -> Self {
                Self {
                    q: Arc::clone(&self.q),
                }
            }
        }

        impl<T> Stealer<T> {
            /// Steal one task from the queue's far end.
            pub fn steal(&self) -> Steal<T> {
                match self.q.lock().pop_back() {
                    Some(t) => Steal::Success(t),
                    None => Steal::Empty,
                }
            }

            /// Whether the victim queue is empty (racy hint).
            pub fn is_empty(&self) -> bool {
                self.q.lock().is_empty()
            }
        }
    }
}
