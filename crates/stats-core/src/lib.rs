//! STATS runtime core: state dependences, tradeoffs, and speculation.
//!
//! This crate implements the paper's primary contribution:
//!
//! - the **State Dependence Interface** (SDI, paper Figure 9): the
//!   [`StateTransition`] trait (the `computeOutput(Input, State) -> Output`
//!   pattern of Figure 4) plus [`SpecState`] (state cloning via `Clone` and
//!   the developer-provided `doesSpecStateMatchAny` comparison), and the
//!   [`StateDependence`] object with `start()`/`join()`;
//! - the **Tradeoff Interface** (TI, paper Figure 10): [`TradeoffOptions`]
//!   with `max_index`/`value`/`default_index`, and [`TradeoffBindings`]
//!   resolving tradeoff references inside (auxiliary) code;
//! - the **execution model** of §3.1: grouping inputs into blocks, running
//!   groups in parallel from auxiliary speculative states, validating the
//!   speculative state against a growing set of original nondeterministic
//!   final states, re-executing the previous group's tail on mismatch, and
//!   aborting (squashing outputs, falling back to sequential execution) when
//!   the re-execution budget is exhausted;
//! - a real thread-pool **runtime** executing that model with OS threads,
//!   and a **trace executor** recording the same execution as a task graph
//!   so that the `stats-sim` platform model can replay it on a simulated
//!   28-core machine.
//!
//! # Quickstart
//!
//! ```
//! use stats_core::{
//!     InvocationCtx, RunOptions, SpecConfig, SpecState, StateDependence, StateTransition,
//! };
//!
//! // A toy nondeterministic computation: a random walk whose state is the
//! // current position. Any position within a tolerance is "the same".
//! #[derive(Clone, Debug)]
//! struct Walk(f64);
//! impl SpecState for Walk {
//!     fn matches_any(&self, originals: &[Self]) -> bool {
//!         originals.iter().any(|o| (o.0 - self.0).abs() < 1e3)
//!     }
//! }
//!
//! struct Step;
//! impl StateTransition for Step {
//!     type Input = f64;
//!     type State = Walk;
//!     type Output = f64;
//!     fn compute_output(
//!         &self,
//!         input: &f64,
//!         state: &mut Walk,
//!         ctx: &mut InvocationCtx,
//!     ) -> f64 {
//!         let noise = ctx.normal(0.0, 1.0);
//!         state.0 += input + noise;
//!         ctx.charge(1.0);
//!         state.0
//!     }
//! }
//!
//! let inputs: Vec<f64> = (0..16).map(|i| i as f64).collect();
//! let dep = StateDependence::new(inputs, Walk(0.0), Step)
//!     .with_options(RunOptions::default()
//!         .config(SpecConfig { group_size: 4, ..SpecConfig::default() })
//!         .seed(42));
//! let outcome = dep.run();
//! assert_eq!(outcome.outputs.len(), 16);
//! ```
//!
//! For continuous input streams, [`Session`] runs the same execution model
//! incrementally — see `docs/streaming.md` in the repository root. When the
//! state dependences form a fan-out/fan-in graph rather than a line,
//! describe them with a [`SpecPlan`] and pass it via [`RunOptions::plan`] —
//! validation and rollback then scope to DAG cut-sets (`docs/dag.md`).

#![deny(missing_docs)]

mod adapt;
mod ctx;
mod dag;
mod faults;
pub mod obs;
mod options;
mod plan;
mod pool;
mod protocol;
pub mod replay;
mod resolver;
mod runtime;
mod sdi;
pub mod serve;
mod session;
pub mod sync;
mod tradeoff;

pub use adapt::{
    AdaptPolicy, AdaptState, AdaptiveController, RetryPolicy, Retuner, SegmentStats, TuneDecision,
};
pub use ctx::{InvocationCtx, WorkMeter};
pub use faults::{FaultKind, FaultPlan, FaultRule};
pub use obs::{Event, EventKind, EventSink, NoopSink, RecordingSink};
pub use options::RunOptions;
pub use plan::{PlanError, PlanNode, PlanNodeId, SpecPlan, SpecPlanBuilder};
pub use pool::{PoolMetrics, Priority, ThreadPool};
pub use protocol::{
    run_protocol, run_protocol_with_options, GroupRecord, GroupResolution, ProtocolResult,
    SpecConfig, SpecReport, SpecTrace, TraceNode, TraceNodeKind,
};
pub use replay::{replay, ReplayError, ReplayOutcome, SessionLog, SessionRecorder};
pub use runtime::{SpecOutcome, StateDependence};
pub use sdi::{ExactState, SpecState, StateTransition};
pub use serve::{
    FairnessPolicy, ServeError, ServerMetrics, ServerOptions, SessionServer, SpillCodec,
    TenantHandle, TenantMetrics,
};
pub use session::{PushError, Session, SessionError};
pub use tradeoff::{
    EnumeratedTradeoff, ScalarType, TradeoffBindings, TradeoffOptions, TradeoffValue,
};

/// One-import convenience surface: the types needed to define a state
/// dependence and run it through any of the entry points.
///
/// ```
/// use stats_core::prelude::*;
/// ```
pub mod prelude {
    pub use crate::obs::{Event, EventKind, EventSink, NoopSink, RecordingSink};
    pub use crate::{
        replay, run_protocol, run_protocol_with_options, AdaptPolicy, AdaptState,
        AdaptiveController, ExactState, FairnessPolicy, FaultKind, FaultPlan, FaultRule,
        InvocationCtx, PlanError, PlanNode, PlanNodeId, Priority, ProtocolResult, PushError,
        ReplayError, ReplayOutcome, RetryPolicy, Retuner, RunOptions, SegmentStats, ServeError,
        ServerMetrics, ServerOptions, Session, SessionError, SessionLog, SessionRecorder,
        SessionServer, SpecConfig, SpecOutcome, SpecPlan, SpecPlanBuilder, SpecReport, SpecState,
        SpecTrace, SpillCodec, StateDependence, StateTransition, TenantHandle, TenantMetrics,
        ThreadPool, TradeoffBindings, TuneDecision, WorkMeter,
    };
}
