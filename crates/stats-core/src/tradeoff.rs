//! The Tradeoff Interface (TI, paper §3.3 and Figure 10).
//!
//! A *tradeoff* is a piece of program text — a constant, a data type, or a
//! function choice — whose value is picked from a developer-supplied,
//! enumerable range. Tradeoffs balance the quality of the auxiliary code's
//! speculative state against its computational cost; the autotuner picks
//! their indices.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Scalar data types a *type tradeoff* may select (e.g. the precision of a
/// simulation variable in `bodytrack` or `fluidanimate`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    /// 32-bit IEEE-754 floating point.
    F32,
    /// 64-bit IEEE-754 floating point.
    F64,
}

impl ScalarType {
    /// Round `x` to the precision of this type (the run-time effect of a
    /// type tradeoff on a computed value).
    pub fn quantize(self, x: f64) -> f64 {
        match self {
            ScalarType::F32 => x as f32 as f64,
            ScalarType::F64 => x,
        }
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarType::F32 => write!(f, "f32"),
            ScalarType::F64 => write!(f, "f64"),
        }
    }
}

/// A concrete value a tradeoff can take.
#[derive(Debug, Clone, PartialEq)]
pub enum TradeoffValue {
    /// An integer constant (e.g. number of annealing layers).
    Int(i64),
    /// A floating-point constant.
    Float(f64),
    /// A data type (variable precision).
    Type(ScalarType),
    /// A named function implementation (e.g. a specific `sqrt`).
    Function(String),
}

impl TradeoffValue {
    /// The integer payload, if this is an [`TradeoffValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            TradeoffValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The float payload; integers are widened.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            TradeoffValue::Float(v) => Some(*v),
            TradeoffValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The type payload, if this is a [`TradeoffValue::Type`].
    pub fn as_type(&self) -> Option<ScalarType> {
        match self {
            TradeoffValue::Type(t) => Some(*t),
            _ => None,
        }
    }

    /// The function name, if this is a [`TradeoffValue::Function`].
    pub fn as_function(&self) -> Option<&str> {
        match self {
            TradeoffValue::Function(name) => Some(name),
            _ => None,
        }
    }
}

/// The developer-facing tradeoff description (paper Figure 10).
///
/// Mirrors `Tradeoff_options`: `getMaxIndex()`, `getValue(i)` and
/// `getDefaultIndex()`.
pub trait TradeoffOptions: Send + Sync {
    /// The tradeoff's name, used by code to reference it.
    fn name(&self) -> &str;

    /// Number of possible values (`getMaxIndex`).
    fn max_index(&self) -> i64;

    /// The `i`-th possible value (`getValue`). `i` must be in
    /// `0..max_index()`.
    fn value(&self, index: i64) -> TradeoffValue;

    /// The index used when the tradeoff is referenced outside auxiliary code
    /// (`getDefaultIndex`). Setting every tradeoff to its default yields the
    /// paper's baseline program.
    fn default_index(&self) -> i64;
}

/// A [`TradeoffOptions`] backed by an explicit list of values.
///
/// This is the most common shape in the benchmarks: a handful of enumerated
/// alternatives (precisions, function versions, small integer ranges).
#[derive(Clone)]
pub struct EnumeratedTradeoff {
    name: String,
    values: Vec<TradeoffValue>,
    default_index: i64,
}

impl EnumeratedTradeoff {
    /// Create a tradeoff from an explicit value list.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or `default_index` is out of range.
    pub fn new(name: impl Into<String>, values: Vec<TradeoffValue>, default_index: i64) -> Self {
        assert!(!values.is_empty(), "a tradeoff needs at least one value");
        assert!(
            (0..values.len() as i64).contains(&default_index),
            "default index out of range"
        );
        EnumeratedTradeoff {
            name: name.into(),
            values,
            default_index,
        }
    }

    /// Convenience constructor for an integer range `lo..=hi`.
    pub fn int_range(name: impl Into<String>, lo: i64, hi: i64, default: i64) -> Self {
        assert!(lo <= hi);
        assert!((lo..=hi).contains(&default));
        let values = (lo..=hi).map(TradeoffValue::Int).collect();
        Self::new(name, values, default - lo)
    }
}

impl fmt::Debug for EnumeratedTradeoff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EnumeratedTradeoff")
            .field("name", &self.name)
            .field("len", &self.values.len())
            .field("default_index", &self.default_index)
            .finish()
    }
}

impl TradeoffOptions for EnumeratedTradeoff {
    fn name(&self) -> &str {
        &self.name
    }

    fn max_index(&self) -> i64 {
        self.values.len() as i64
    }

    fn value(&self, index: i64) -> TradeoffValue {
        self.values[index as usize].clone()
    }

    fn default_index(&self) -> i64 {
        self.default_index
    }
}

/// A resolved set of tradeoff values, consulted by (auxiliary) code at run
/// time through [`InvocationCtx`](crate::InvocationCtx).
///
/// Two bindings exist per program configuration: one for original code
/// (always the defaults, set by the middle-end compiler) and one for each
/// state dependence's auxiliary code (set by the back-end from an autotuner
/// configuration).
///
/// Bindings are written once per configuration but cloned once per protocol
/// *invocation* (each `InvocationCtx` owns a copy), so the map lives behind
/// an [`Arc`]: cloning is a reference-count bump, and the rare post-clone
/// [`set`](Self::set) copies on write via [`Arc::make_mut`].
#[derive(Clone, Default)]
pub struct TradeoffBindings {
    values: Arc<HashMap<String, TradeoffValue>>,
}

impl TradeoffBindings {
    /// Empty bindings (every lookup fails).
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind every tradeoff in `options` to its default index — the paper's
    /// baseline semantics for code outside auxiliary functions.
    pub fn defaults(options: &[Arc<dyn TradeoffOptions>]) -> Self {
        let mut b = Self::new();
        for t in options {
            b.set(t.name(), t.value(t.default_index()));
        }
        b
    }

    /// Bind every tradeoff in `options` to the given indices
    /// (`indices[i]` applies to `options[i]`); indices are clamped to the
    /// tradeoff's valid range.
    pub fn from_indices(options: &[Arc<dyn TradeoffOptions>], indices: &[i64]) -> Self {
        let mut b = Self::new();
        for (t, &raw) in options.iter().zip(indices) {
            let idx = raw.clamp(0, t.max_index() - 1);
            b.set(t.name(), t.value(idx));
        }
        // Unspecified trailing tradeoffs fall back to defaults.
        for t in options.iter().skip(indices.len()) {
            b.set(t.name(), t.value(t.default_index()));
        }
        b
    }

    /// Set (or overwrite) one binding. Copies the underlying map only when
    /// it is shared with a clone (copy-on-write).
    pub fn set(&mut self, name: impl Into<String>, value: TradeoffValue) {
        Arc::make_mut(&mut self.values).insert(name.into(), value);
    }

    /// Look up a binding.
    pub fn get(&self, name: &str) -> Option<&TradeoffValue> {
        self.values.get(name)
    }

    /// Number of bound tradeoffs.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no tradeoffs are bound.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Debug for TradeoffBindings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<_> = self.values.keys().collect();
        names.sort();
        f.debug_map()
            .entries(names.iter().map(|n| (n, &self.values[n.as_str()])))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layers() -> EnumeratedTradeoff {
        // The bodytrack annealing-layers tradeoff of Figure 10:
        // max_index 10, value(i) = i + 1, default index 4.
        EnumeratedTradeoff::int_range("numAnnealingLayers", 1, 10, 5)
    }

    #[test]
    fn figure10_semantics() {
        let t = layers();
        assert_eq!(t.max_index(), 10);
        assert_eq!(t.value(0), TradeoffValue::Int(1));
        assert_eq!(t.value(9), TradeoffValue::Int(10));
        assert_eq!(t.default_index(), 4);
        assert_eq!(t.value(t.default_index()), TradeoffValue::Int(5));
    }

    #[test]
    fn defaults_binding() {
        let opts: Vec<Arc<dyn TradeoffOptions>> = vec![Arc::new(layers())];
        let b = TradeoffBindings::defaults(&opts);
        assert_eq!(b.get("numAnnealingLayers").unwrap().as_int(), Some(5));
    }

    #[test]
    fn from_indices_clamps() {
        let opts: Vec<Arc<dyn TradeoffOptions>> = vec![Arc::new(layers())];
        let b = TradeoffBindings::from_indices(&opts, &[99]);
        assert_eq!(b.get("numAnnealingLayers").unwrap().as_int(), Some(10));
        let b = TradeoffBindings::from_indices(&opts, &[-7]);
        assert_eq!(b.get("numAnnealingLayers").unwrap().as_int(), Some(1));
    }

    #[test]
    fn missing_indices_use_defaults() {
        let opts: Vec<Arc<dyn TradeoffOptions>> = vec![
            Arc::new(layers()),
            Arc::new(EnumeratedTradeoff::new(
                "precision",
                vec![
                    TradeoffValue::Type(ScalarType::F32),
                    TradeoffValue::Type(ScalarType::F64),
                ],
                1,
            )),
        ];
        let b = TradeoffBindings::from_indices(&opts, &[0]);
        assert_eq!(b.get("numAnnealingLayers").unwrap().as_int(), Some(1));
        assert_eq!(b.get("precision").unwrap().as_type(), Some(ScalarType::F64));
    }

    #[test]
    fn quantize_f32_loses_precision() {
        let x = 0.1_f64 + 1e-12;
        assert_ne!(ScalarType::F32.quantize(x), x);
        assert_eq!(ScalarType::F64.quantize(x), x);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_tradeoff_rejected() {
        EnumeratedTradeoff::new("x", vec![], 0);
    }

    #[test]
    fn function_tradeoff() {
        let t = EnumeratedTradeoff::new(
            "sqrtVersion",
            vec![
                TradeoffValue::Function("sqrt_exact".into()),
                TradeoffValue::Function("sqrt_newton2".into()),
                TradeoffValue::Function("sqrt_newton1".into()),
            ],
            0,
        );
        assert_eq!(t.value(1).as_function(), Some("sqrt_newton2"));
    }
}
