//! Executing a [`SpecPlan`]: speculation over a dependency DAG of segments.
//!
//! Each plan node runs the ordinary linear protocol over its own input
//! range; the DAG layer decides what state each node *starts* from and when
//! its results *commit*:
//!
//! - **Roots** start from the plan's initial state, non-speculatively.
//! - With cross-node speculation enabled, a non-root node starts eagerly
//!   from a *plan-auxiliary* state: from the initial state, the auxiliary
//!   bindings consume the last [`SpecConfig::window`] inputs of each parent
//!   (ascending parent order) — the DAG generalization of the paper's
//!   auxiliary code, computable before any parent finishes.
//! - A node's **cut-set validation** fires once every parent has settled:
//!   the parents' committed final states are merged
//!   ([`StateTransition::merge_states`]) and the node's speculative start
//!   state is compared against the merge with [`SpecState::matches_any`].
//!   Match ⇒ the eager run commits as-is. Mismatch ⇒ the node **aborts**:
//!   its eager run is squashed, it re-executes from the real merged state,
//!   and — the cut-set rollback rule — every node in its *downstream cone*
//!   is squashed by rule (no validation; each re-executes from its own real
//!   merged state once its parents settle). Nodes outside the cone are
//!   untouched: sibling branches keep their committed results.
//! - With speculation disabled (plan- or config-level), non-root nodes
//!   simply wait for their parents — pure dataflow scheduling — which is
//!   how a linear chain reduces byte-identically to the legacy
//!   [`RunOptions::segment`](crate::RunOptions::segment) path.
//!
//! Determinism: node-internal seeds derive exactly as segmented seeds do
//! (`run_seed ^ node_id << 32`), plan-auxiliary and recovery runs use their
//! own salts, and [`PlanResolver`] always resolves nodes in the plan's
//! canonical topological order — so any scheduling of the eager runs (the
//! sequential reference, or the pool with any worker count) produces
//! bit-identical outputs, reports, and traces. `tests/dag_properties.rs`
//! property-tests this across random plans, seeds, and worker counts.

use crate::ctx::WorkMeter;
use crate::faults::{FaultKind, FaultPlan};
use crate::obs::{EventKind, EventSink};
use crate::plan::{PlanNodeId, SpecPlan};
use crate::protocol::{
    run_invocation, run_observed_inner, ProtocolResult, SpecConfig, SpecReport, SpecTrace,
    TraceNodeKind,
};
use crate::sdi::{SpecState, StateTransition};

/// Salt applied to the run seed for plan-level auxiliary chains, so the
/// cross-node auxiliary producer never replays the original code's
/// randomness or any node-internal auxiliary stream.
const PLAN_AUX_SALT: u64 = 0x0DA6_A0C1_7E57_A0ED;

/// Salt applied to a node's seed when it re-executes after a cut-set abort,
/// so the recovery run's PRVG streams differ from the squashed speculative
/// run's (the DAG analog of the linear tail's attempt bump).
const DAG_RERUN_SALT: u64 = 0x0DA6_2E2C_5EED_F00D;

/// The seed of `node`'s internal protocol run. Matches the segmented path's
/// `run_seed ^ seg_idx << 32` derivation — the reason a linear
/// non-speculative plan is byte-identical to `RunOptions::segment`.
pub(crate) fn node_seed(run_seed: u64, node: PlanNodeId) -> u64 {
    run_seed ^ (node as u64) << 32
}

fn rerun_seed(run_seed: u64, node: PlanNodeId) -> u64 {
    node_seed(run_seed, node) ^ DAG_RERUN_SALT
}

/// Whether cross-node speculation applies to `node` under this plan and
/// configuration (plan flag AND [`SpecConfig::speculate`]; roots never
/// speculate — they start from the real initial state).
fn node_speculates(plan: &SpecPlan, config: &SpecConfig, node: PlanNodeId) -> bool {
    !plan.node(node).parents.is_empty() && plan.speculates() && config.speculate
}

/// Whether `node`'s first execution can be dispatched before its parents
/// settle: roots run from the plan's initial state, speculative nodes from
/// their plan-auxiliary state.
pub(crate) fn node_is_eager(plan: &SpecPlan, config: &SpecConfig, node: PlanNodeId) -> bool {
    plan.node(node).parents.is_empty() || node_speculates(plan, config, node)
}

/// Panic (with coordinates) unless the input count matches the plan.
pub(crate) fn assert_plan_matches(plan: &SpecPlan, inputs: usize) {
    assert_eq!(
        plan.total_inputs(),
        inputs,
        "RunOptions::plan expects exactly {} inputs (the plan's total across \
         all nodes), got {}",
        plan.total_inputs(),
        inputs
    );
}

/// One eagerly executable node run: the plan-auxiliary state it started
/// from (`None` for roots) and the inner protocol result. Pure data — this
/// is what pool jobs hand back to the [`PlanResolver`].
pub(crate) struct NodeRun<T: StateTransition> {
    aux_work: Option<WorkMeter>,
    spec_start: Option<T::State>,
    run: ProtocolResult<T>,
}

/// Execute `node`'s eager run. For roots: the inner protocol from the
/// plan's initial state. For speculative nodes: the plan-auxiliary chain
/// over each parent's input tail (ascending parent order, auxiliary
/// bindings, plan-aux seed space), then the inner protocol from the
/// resulting speculative state. Thread-safe and deterministic.
#[allow(clippy::too_many_arguments)] // one parameter per execution-model knob
pub(crate) fn run_node_eager<T: StateTransition>(
    plan: &SpecPlan,
    node: PlanNodeId,
    transition: &T,
    inputs: &[T::Input],
    initial: &T::State,
    config: &SpecConfig,
    run_seed: u64,
    sink: &dyn EventSink,
) -> NodeRun<T> {
    let base = plan.input_base(node);
    let slice = &inputs[base..base + plan.node(node).inputs];
    if plan.node(node).parents.is_empty() {
        let run = run_observed_inner(
            transition,
            slice,
            initial,
            config,
            node_seed(run_seed, node),
            sink,
            None,
        );
        return NodeRun {
            aux_work: None,
            spec_start: None,
            run,
        };
    }
    let mut state = initial.clone();
    let mut aux_work = WorkMeter::default();
    for &p in &plan.node(node).parents {
        let p_base = plan.input_base(p);
        let p_len = plan.node(p).inputs;
        let w = config.window.min(p_len);
        let lo = p_base + p_len - w;
        for (i, input) in (lo..p_base + p_len).zip(&inputs[lo..p_base + p_len]) {
            let (_out, m) = run_invocation(
                transition,
                input,
                &mut state,
                run_seed ^ PLAN_AUX_SALT,
                node as u64,
                i as u64,
                0,
                &config.aux_bindings,
                true,
            );
            aux_work.total += m.total;
            aux_work.memory += m.memory;
        }
    }
    let run = run_observed_inner(
        transition,
        slice,
        &state,
        config,
        node_seed(run_seed, node),
        sink,
        None,
    );
    NodeRun {
        aux_work: Some(aux_work),
        spec_start: Some(state),
        run,
    }
}

/// How one node resolved, with everything the canonical trace layout needs.
struct NodeOutcome<T: StateTransition> {
    /// Work of the plan-auxiliary chain (`Some` ⇔ the node was speculative).
    aux_work: Option<WorkMeter>,
    /// Whether a cut-set validation node exists for this node (false for
    /// roots, dataflow nodes, and cone-squashed nodes, which skip
    /// validation by rule).
    validated: bool,
    /// The first execution: the committed run, unless `rerun` is present —
    /// then this run was squashed.
    run: ProtocolResult<T>,
    /// The recovery execution from the real merged parent state, present
    /// exactly when the node aborted or was cone-squashed.
    rerun: Option<ProtocolResult<T>>,
}

/// The incremental DAG resolver: ingest eager node runs in *any* order (as
/// the pool finishes them); nodes are resolved — validated, committed, or
/// aborted with their downstream cone squashed — strictly in the plan's
/// canonical topological order, as soon as their cut-set allows. That fixed
/// resolution order is what makes every schedule bit-identical.
pub(crate) struct PlanResolver<'a, T: StateTransition> {
    plan: &'a SpecPlan,
    transition: &'a T,
    inputs: &'a [T::Input],
    config: &'a SpecConfig,
    run_seed: u64,
    sink: &'a dyn EventSink,
    /// Plan-level fault injection: forced mismatches target plan nodes
    /// (site = node id). Node-internal runs are fault-free in plan mode.
    faults: Option<&'a FaultPlan>,
    pending: Vec<Option<NodeRun<T>>>,
    outcomes: Vec<Option<NodeOutcome<T>>>,
    settled: Vec<bool>,
    /// For cone members: the aborted ancestor that doomed them.
    squash_root: Vec<Option<PlanNodeId>>,
    /// Position in the canonical topological order of the next unresolved
    /// node.
    next_topo: usize,
    aborted: bool,
    dag_validations: usize,
}

impl<'a, T: StateTransition> PlanResolver<'a, T> {
    #[allow(clippy::too_many_arguments)] // one parameter per execution-model knob
    pub(crate) fn new(
        plan: &'a SpecPlan,
        transition: &'a T,
        inputs: &'a [T::Input],
        config: &'a SpecConfig,
        run_seed: u64,
        sink: &'a dyn EventSink,
        faults: Option<&'a FaultPlan>,
    ) -> Self {
        assert_plan_matches(plan, inputs.len());
        let n = plan.len();
        PlanResolver {
            plan,
            transition,
            inputs,
            config,
            run_seed,
            sink,
            faults,
            pending: (0..n).map(|_| None).collect(),
            outcomes: (0..n).map(|_| None).collect(),
            settled: vec![false; n],
            squash_root: vec![None; n],
            next_topo: 0,
            aborted: false,
            dag_validations: 0,
        }
    }

    /// Hand one eager node run to the resolver and resolve every node the
    /// canonical order now allows. Non-eager (dataflow) nodes are executed
    /// inline here, on the resolving thread, as their parents settle.
    pub(crate) fn ingest(&mut self, node: PlanNodeId, run: NodeRun<T>) {
        assert!(
            self.pending[node].is_none() && !self.settled[node],
            "plan node {node} ingested twice"
        );
        self.pending[node] = Some(run);
        self.drain();
    }

    fn drain(&mut self) {
        while self.next_topo < self.plan.len() {
            let node = self.plan.topo_order()[self.next_topo];
            if node_is_eager(self.plan, self.config, node) && self.pending[node].is_none() {
                break; // the eager run has not arrived yet
            }
            self.resolve(node);
            self.next_topo += 1;
        }
    }

    /// The committed final state of a settled node (the recovery run's if
    /// the node was squashed).
    fn node_final(&self, node: PlanNodeId) -> &T::State {
        let oc = self.outcomes[node]
            .as_ref()
            .expect("parent settled before child resolution");
        match &oc.rerun {
            Some(r) => &r.final_state,
            None => &oc.run.final_state,
        }
    }

    /// Merge the committed finals of `node`'s parents (ascending id order).
    fn merged_parent_state(&self, node: PlanNodeId) -> T::State {
        let states: Vec<T::State> = self
            .plan
            .node(node)
            .parents
            .iter()
            .map(|&p| self.node_final(p).clone())
            .collect();
        self.transition.merge_states(&states)
    }

    /// One inner protocol run over `node`'s inputs from `start` — used for
    /// dataflow nodes and post-abort recovery runs, inline on the resolving
    /// thread.
    fn run_inline(&self, node: PlanNodeId, start: &T::State, seed: u64) -> ProtocolResult<T> {
        let base = self.plan.input_base(node);
        let slice = &self.inputs[base..base + self.plan.node(node).inputs];
        run_observed_inner(
            self.transition,
            slice,
            start,
            self.config,
            seed,
            self.sink,
            None,
        )
    }

    /// Whether the fault plan forces this node's cut-set validation to
    /// mismatch; emits the marker event when it fires.
    fn forced_mismatch(&self, node: PlanNodeId) -> bool {
        let Some(plan) = self.faults else {
            return false;
        };
        let fired = plan.fires(FaultKind::ValidationMismatch, self.run_seed, node as u64, 0);
        if fired && self.sink.enabled() {
            self.sink.emit(EventKind::FaultInjected {
                kind: FaultKind::ValidationMismatch,
                site: node,
                attempt: 0,
            });
        }
        fired
    }

    fn resolve(&mut self, node: PlanNodeId) {
        if self.plan.node(node).parents.is_empty() {
            let NodeRun { run, .. } = self.pending[node].take().expect("root run ingested");
            self.outcomes[node] = Some(NodeOutcome {
                aux_work: None,
                validated: false,
                run,
                rerun: None,
            });
            self.settled[node] = true;
            return;
        }
        let merged = self.merged_parent_state(node);
        if !node_speculates(self.plan, self.config, node) {
            // Pure dataflow: the node waited for its parents and now runs
            // from the real merged state — the segmented semantics.
            let run = self.run_inline(node, &merged, node_seed(self.run_seed, node));
            self.outcomes[node] = Some(NodeOutcome {
                aux_work: None,
                validated: false,
                run,
                rerun: None,
            });
            self.settled[node] = true;
            return;
        }
        let NodeRun {
            aux_work,
            spec_start,
            run,
        } = self.pending[node].take().expect("speculative run ingested");
        let spec_start = spec_start.expect("speculative run carries its start state");
        if let Some(root) = self.squash_root[node] {
            // Cut-set rollback rule: downstream of an abort, the eager run
            // is squashed without validation and the node re-executes from
            // its real merged state (speculation re-enabled inside — the
            // recovery run starts from a *real* state, like a fresh
            // segment after a segmented abort).
            if self.sink.enabled() {
                self.sink.emit(EventKind::ConeSquash { node, root });
            }
            let rerun = self.run_inline(node, &merged, rerun_seed(self.run_seed, node));
            self.outcomes[node] = Some(NodeOutcome {
                aux_work,
                validated: false,
                run,
                rerun: Some(rerun),
            });
            self.settled[node] = true;
            return;
        }
        self.dag_validations += 1;
        let matched =
            spec_start.matches_any(std::slice::from_ref(&merged)) && !self.forced_mismatch(node);
        if self.sink.enabled() {
            self.sink.emit(EventKind::NodeValidation { node, matched });
        }
        if matched {
            if self.sink.enabled() {
                self.sink.emit(EventKind::NodeCommit { node });
            }
            self.outcomes[node] = Some(NodeOutcome {
                aux_work,
                validated: true,
                run,
                rerun: None,
            });
        } else {
            self.aborted = true;
            if self.sink.enabled() {
                self.sink.emit(EventKind::NodeAbort { node });
            }
            for c in self.plan.downstream_cone(node) {
                if self.squash_root[c].is_none() {
                    self.squash_root[c] = Some(node);
                }
            }
            let rerun = self.run_inline(node, &merged, rerun_seed(self.run_seed, node));
            self.outcomes[node] = Some(NodeOutcome {
                aux_work,
                validated: true,
                run,
                rerun: Some(rerun),
            });
        }
        self.settled[node] = true;
    }

    /// Lay out the canonical trace (topological node order, fixed per-node
    /// shape: plan-aux, eager run, validation, recovery run), assemble the
    /// outputs, and merge the reports.
    pub(crate) fn finish(mut self) -> ProtocolResult<T> {
        assert_eq!(
            self.next_topo,
            self.plan.len(),
            "unresolved plan nodes at finish"
        );
        let val_work = WorkMeter {
            total: self.config.validation_cost,
            memory: 0.0,
        };
        let mut trace = SpecTrace::default();
        let mut report = SpecReport {
            validations: self.dag_validations,
            aborted: self.aborted,
            ..SpecReport::default()
        };
        let mut outputs: Vec<Option<T::Output>> = Vec::new();
        outputs.resize_with(self.plan.total_inputs(), || None);
        let mut last_committed: Vec<Option<usize>> = vec![None; self.plan.len()];
        let mut finals: Vec<Option<T::State>> = (0..self.plan.len()).map(|_| None).collect();

        for &node in self.plan.topo_order() {
            let NodeOutcome {
                aux_work,
                validated,
                run,
                rerun,
            } = self.outcomes[node].take().expect("settled node outcome");
            let base = self.plan.input_base(node);
            let gates: Vec<usize> = self
                .plan
                .node(node)
                .parents
                .iter()
                .filter_map(|&p| last_committed[p])
                .collect();
            let region_start = trace.nodes.len();
            let squashed = rerun.is_some();

            let mut aux_idx = None;
            if let Some(w) = aux_work {
                let idx = trace.push(TraceNodeKind::Auxiliary { group: node }, w, Vec::new());
                trace.nodes[idx].committed = !squashed;
                aux_idx = Some(idx);
            }
            // The eager/dataflow run: its entry nodes start from the
            // plan-auxiliary state (speculative) or the merged parent
            // states (real).
            let entry = match aux_idx {
                Some(a) => vec![a],
                None => gates.clone(),
            };
            let ProtocolResult {
                outputs: run_outputs,
                final_state: run_final,
                report: run_report,
                trace: run_trace,
            } = run;
            absorb_subtrace(&mut trace, run_trace, &entry, squashed);
            report.reexecutions += run_report.reexecutions;
            report.validations += run_report.validations;
            report.aborted |= run_report.aborted;

            let mut val_idx = None;
            if validated {
                let mut deps = vec![aux_idx.expect("validated nodes are speculative")];
                deps.extend_from_slice(&gates);
                val_idx = Some(trace.push(
                    TraceNodeKind::Validation {
                        group: node,
                        attempt: 0,
                    },
                    val_work,
                    deps,
                ));
            }

            let (node_outputs, node_groups, node_final) = match rerun {
                Some(r) => {
                    let ProtocolResult {
                        outputs: re_outputs,
                        final_state: re_final,
                        report: re_report,
                        trace: re_trace,
                    } = r;
                    let mut entry: Vec<usize> = Vec::new();
                    if let Some(v) = val_idx {
                        entry.push(v);
                    }
                    entry.extend_from_slice(&gates);
                    absorb_subtrace(&mut trace, re_trace, &entry, false);
                    report.reexecutions += re_report.reexecutions;
                    report.validations += re_report.validations;
                    report.aborted |= re_report.aborted;
                    (re_outputs, re_report.groups, re_final)
                }
                None => (run_outputs, run_report.groups, run_final),
            };

            for (off, out) in node_outputs.into_iter().enumerate() {
                outputs[base + off] = Some(out);
            }
            for mut g in node_groups {
                g.start += base;
                g.end += base;
                report.groups.push(g);
            }
            finals[node] = Some(node_final);
            last_committed[node] = trace.nodes[region_start..]
                .iter()
                .rposition(|n| n.committed)
                .map(|off| region_start + off);

            // Per-node work sub-sums, added node by node: the same float
            // operation order the segmented accumulator uses, so a linear
            // dataflow plan reproduces its report bit-for-bit.
            let (mut orig, mut aux, mut squash) = (0.0_f64, 0.0_f64, 0.0_f64);
            for tn in &trace.nodes[region_start..] {
                let w = tn.work.total;
                if tn.committed {
                    match tn.kind {
                        TraceNodeKind::Auxiliary { .. } => aux += w,
                        _ => orig += w,
                    }
                } else {
                    squash += w;
                }
            }
            report.committed_original_work += orig;
            report.committed_aux_work += aux;
            report.squashed_work += squash;
        }

        // The plan's final state: the sink nodes' committed finals, merged
        // in ascending node-id order.
        let sink_finals: Vec<T::State> = (0..self.plan.len())
            .filter(|&i| self.plan.children(i).is_empty())
            .map(|i| finals[i].take().expect("sink node settled"))
            .collect();
        let final_state = self.transition.merge_states(&sink_finals);
        let outputs: Vec<T::Output> = outputs
            .into_iter()
            .map(|o| o.expect("every plan input has a committed output"))
            .collect();
        ProtocolResult {
            outputs,
            final_state,
            report,
            trace,
        }
    }
}

/// Append a node-internal sub-trace: shift dependence indices past the
/// nodes already laid out, attach the node's entry nodes (those with no
/// intra-run dependences) to `entry_deps`, and — when the run was squashed
/// — force every node's committed flag off.
fn absorb_subtrace(trace: &mut SpecTrace, sub: SpecTrace, entry_deps: &[usize], squash: bool) {
    let base = trace.nodes.len();
    for mut node in sub.nodes {
        node.deps.iter_mut().for_each(|d| *d += base);
        if node.deps.is_empty() {
            node.deps.extend_from_slice(entry_deps);
        }
        if squash {
            node.committed = false;
        }
        trace.nodes.push(node);
    }
}

/// The sequential reference execution of a plan: eager runs executed inline
/// in canonical topological order, resolution interleaved by the
/// [`PlanResolver`]. Every parallel schedule must reproduce this result
/// bit-for-bit.
#[allow(clippy::too_many_arguments)] // one parameter per execution-model knob
pub(crate) fn run_plan_sequential<T: StateTransition>(
    transition: &T,
    inputs: &[T::Input],
    initial: &T::State,
    plan: &SpecPlan,
    config: &SpecConfig,
    run_seed: u64,
    sink: &dyn EventSink,
    faults: Option<&FaultPlan>,
) -> ProtocolResult<T> {
    let mut resolver = PlanResolver::new(plan, transition, inputs, config, run_seed, sink, faults);
    for &node in plan.topo_order() {
        if node_is_eager(plan, config, node) {
            let run = run_node_eager(
                plan, node, transition, inputs, initial, config, run_seed, sink,
            );
            resolver.ingest(node, run);
        }
    }
    resolver.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::InvocationCtx;
    use crate::faults::FaultRule;
    use crate::obs::{RecordingSink, NOOP};
    use crate::sdi::ExactState;
    use std::sync::Arc;

    /// Short-memory transition: state is the last input seen, and the fan-in
    /// merge keeps the *last* parent's state — so a plan-auxiliary chain
    /// with window >= 1 reproduces the merged state exactly and every
    /// cut-set validation matches.
    struct LastMerge;
    impl StateTransition for LastMerge {
        type Input = u64;
        type State = ExactState<u64>;
        type Output = u64;
        fn compute_output(
            &self,
            input: &u64,
            state: &mut ExactState<u64>,
            ctx: &mut InvocationCtx,
        ) -> u64 {
            ctx.charge(10.0);
            state.0 = *input;
            state.0
        }
        fn merge_states(&self, parents: &[Self::State]) -> Self::State {
            *parents.last().expect("at least one parent")
        }
    }

    fn diamond() -> SpecPlan {
        let mut b = SpecPlan::builder();
        let src = b.node(6);
        let l = b.node(6);
        let r = b.node(6);
        let j = b.node(6);
        b.edge(src, l).edge(src, r).edge(l, j).edge(r, j);
        b.build().unwrap()
    }

    fn run_diamond(
        faults: Option<&FaultPlan>,
        sink: &dyn EventSink,
        seed: u64,
    ) -> ProtocolResult<LastMerge> {
        let plan = diamond();
        let inputs: Vec<u64> = (1..=plan.total_inputs() as u64).collect();
        let config = SpecConfig {
            group_size: 3,
            window: 1,
            ..SpecConfig::default()
        };
        run_plan_sequential(
            &LastMerge,
            &inputs,
            &ExactState(0),
            &plan,
            &config,
            seed,
            sink,
            faults,
        )
    }

    #[test]
    fn short_memory_diamond_commits_every_node() {
        let sink = Arc::new(RecordingSink::new());
        let r = run_diamond(None, &*sink, 7);
        assert!(!r.report.aborted);
        let inputs: Vec<u64> = (1..=24).collect();
        assert_eq!(r.outputs, inputs, "Last echoes its input");
        assert_eq!(r.final_state.0, 24);
        let kinds: Vec<EventKind> = sink.events().iter().map(|e| e.kind).collect();
        for node in 1..=3 {
            assert!(kinds.contains(&EventKind::NodeValidation {
                node,
                matched: true
            }));
            assert!(kinds.contains(&EventKind::NodeCommit { node }));
        }
        assert!(!kinds
            .iter()
            .any(|k| matches!(k, EventKind::NodeAbort { .. })));
    }

    #[test]
    fn forced_abort_squashes_only_the_downstream_cone() {
        // Find a fault seed that targets node 1 (left branch) but not node
        // 2 (right branch); node 3 is in node 1's cone and skips
        // validation by rule.
        let fseed = (0..200)
            .map(|s| FaultPlan::new(s).validation_mismatch(FaultRule::permanent(0.5)))
            .find(|p| {
                p.fires(FaultKind::ValidationMismatch, 7, 1, 0)
                    && !p.fires(FaultKind::ValidationMismatch, 7, 2, 0)
            })
            .expect("a selective fault seed exists");
        let clean_sink = Arc::new(RecordingSink::new());
        let clean = run_diamond(None, &*clean_sink, 7);
        let sink = Arc::new(RecordingSink::new());
        let faulted = run_diamond(Some(&fseed), &*sink, 7);

        assert!(faulted.report.aborted);
        let kinds: Vec<EventKind> = sink.events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::NodeAbort { node: 1 }));
        assert!(kinds.contains(&EventKind::NodeCommit { node: 2 }));
        assert!(kinds.contains(&EventKind::ConeSquash { node: 3, root: 1 }));
        // The sibling branch's committed outputs are untouched by the abort.
        assert_eq!(faulted.outputs[12..18], clean.outputs[12..18]);
        // Every output is still the correct value (Last echoes inputs even
        // through recovery runs).
        assert_eq!(faulted.outputs, clean.outputs);
        // Squashed work appeared: the left branch and the join's eager runs.
        assert!(faulted.report.squashed_work > clean.report.squashed_work);
    }

    #[test]
    fn trace_edges_point_backward_and_work_partitions() {
        for faults in [
            None,
            Some(FaultPlan::new(3).validation_mismatch(FaultRule::permanent(1.0))),
        ] {
            let r = run_diamond(faults.as_ref(), &NOOP, 11);
            for (i, node) in r.trace.nodes.iter().enumerate() {
                for &d in &node.deps {
                    assert!(d < i, "node {i} depends on non-earlier {d}");
                }
            }
            let parts = r.report.committed_original_work
                + r.report.committed_aux_work
                + r.report.squashed_work;
            assert!((r.trace.total_work() - parts).abs() < 1e-9);
        }
    }

    #[test]
    fn sequential_run_is_deterministic() {
        let a = run_diamond(None, &NOOP, 42);
        let b = run_diamond(None, &NOOP, 42);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.report, b.report);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn node_seed_matches_segmented_derivation() {
        // The segmented path derives `run_seed ^ seg_idx << 32`; node seeds
        // must be identical for the linear-plan reduction to hold.
        for seed in [0u64, 1, 0xDEAD_BEEF] {
            for node in 0..5usize {
                assert_eq!(node_seed(seed, node), seed ^ (node as u64) << 32);
            }
        }
    }

    #[test]
    fn eagerness_follows_speculation_flags() {
        let plan = diamond();
        let on = SpecConfig::default();
        let off = SpecConfig::sequential();
        assert!(node_is_eager(&plan, &on, 0), "roots are always eager");
        assert!(node_is_eager(&plan, &on, 3));
        assert!(node_is_eager(&plan, &off, 0));
        assert!(!node_is_eager(&plan, &off, 3), "dataflow nodes wait");
        let linear = SpecPlan::linear(&[4, 4]);
        assert!(
            !node_is_eager(&linear, &on, 1),
            "linear() disables DAG speculation"
        );
    }
}
