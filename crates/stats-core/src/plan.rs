//! Speculation plans: a dependency **DAG of segments**.
//!
//! The linear protocol speculates over one ordered stream of state
//! dependences: segment `k+1` always consumes segment `k`'s final state.
//! Many real computations are wider than that — a streaming join fans a
//! source out over shards and fans the shard states back in, a game loop
//! branches per-faction AI off one frame and merges the decisions into the
//! next, a Monte-Carlo ensemble runs many chains from one burn-in. A
//! [`SpecPlan`] makes that structure explicit: **nodes** are segments (each
//! owning a contiguous run of the input stream) and **edges** are state
//! dependences (a node's initial state is the merge of its parents' final
//! states).
//!
//! Plans are validated at build time: edges must reference declared nodes,
//! self-edges are rejected, and the graph is cycle-checked; the canonical
//! *sequential topological order* (Kahn's algorithm, lowest node id first)
//! is fixed then, so every execution of the plan — sequential reference or
//! pool-parallel — resolves nodes in one deterministic order. See
//! `docs/dag.md` for the execution model and the cut-set rollback rule.

use std::collections::BinaryHeap;
use std::fmt;

/// Identifier of one plan node, as returned by [`SpecPlanBuilder::node`].
/// Node ids are dense indices `0..plan.len()`; node `i`'s inputs are the
/// contiguous slice starting at [`SpecPlan::input_base`]`(i)`.
pub type PlanNodeId = usize;

/// One segment of the plan: how many inputs it owns and which nodes' final
/// states it consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanNode {
    /// Number of inputs this node processes (>= 1).
    pub inputs: usize,
    /// Parent node ids in ascending order; empty for root nodes, which
    /// start from the plan's initial state.
    pub parents: Vec<PlanNodeId>,
}

/// Why a plan failed to build — the structural errors
/// [`SpecPlanBuilder::build`] checks for.
///
/// Marked `#[non_exhaustive]`: future validations may add variants without
/// a breaking release, so match with a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanError {
    /// The plan declares no nodes.
    EmptyPlan,
    /// A node was declared with zero inputs.
    EmptyNode {
        /// The offending node.
        node: PlanNodeId,
    },
    /// An edge references a node id that was never declared.
    UnknownNode {
        /// The undeclared id the edge referenced.
        node: PlanNodeId,
    },
    /// An edge connects a node to itself.
    SelfEdge {
        /// The node with the self-edge.
        node: PlanNodeId,
    },
    /// The dependence edges form a cycle, so no topological order exists.
    Cycle {
        /// A node on the cycle (the lowest-id node left unordered).
        node: PlanNodeId,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::EmptyPlan => write!(f, "plan declares no nodes"),
            PlanError::EmptyNode { node } => write!(f, "node {node} owns zero inputs"),
            PlanError::UnknownNode { node } => {
                write!(f, "edge references undeclared node {node}")
            }
            PlanError::SelfEdge { node } => write!(f, "node {node} depends on itself"),
            PlanError::Cycle { node } => {
                write!(f, "dependence edges form a cycle through node {node}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Builder for a [`SpecPlan`]: declare nodes, connect them, build.
///
/// ```
/// use stats_core::SpecPlan;
///
/// // A diamond: source fans out to two shards, which join back.
/// let mut b = SpecPlan::builder();
/// let src = b.node(8);
/// let left = b.node(8);
/// let right = b.node(8);
/// let join = b.node(8);
/// b.edge(src, left);
/// b.edge(src, right);
/// b.edge(left, join);
/// b.edge(right, join);
/// let plan = b.build().expect("acyclic");
/// assert_eq!(plan.len(), 4);
/// assert_eq!(plan.total_inputs(), 32);
/// assert!(!plan.is_linear());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpecPlanBuilder {
    sizes: Vec<usize>,
    edges: Vec<(PlanNodeId, PlanNodeId)>,
    speculate_nodes: bool,
}

impl SpecPlanBuilder {
    /// Declare a node owning the next `inputs` inputs of the stream (input
    /// ranges are assigned contiguously in declaration order) and return
    /// its id.
    pub fn node(&mut self, inputs: usize) -> PlanNodeId {
        self.sizes.push(inputs);
        self.sizes.len() - 1
    }

    /// Declare a state dependence: `to` starts from (a merge that includes)
    /// `from`'s final state.
    pub fn edge(&mut self, from: PlanNodeId, to: PlanNodeId) -> &mut Self {
        self.edges.push((from, to));
        self
    }

    /// Enable or disable **cross-node speculation** (default for built
    /// plans: enabled). When disabled, every non-root node waits for its
    /// parents' committed final states — pure dataflow scheduling, which is
    /// how a linear chain reduces byte-identically to the legacy segmented
    /// path. See `docs/dag.md`.
    pub fn speculate_nodes(&mut self, on: bool) -> &mut Self {
        self.speculate_nodes = on;
        self
    }

    /// Validate the structure and produce the immutable [`SpecPlan`].
    pub fn build(&self) -> Result<SpecPlan, PlanError> {
        let n = self.sizes.len();
        if n == 0 {
            return Err(PlanError::EmptyPlan);
        }
        for (node, &size) in self.sizes.iter().enumerate() {
            if size == 0 {
                return Err(PlanError::EmptyNode { node });
            }
        }
        let mut parents: Vec<Vec<PlanNodeId>> = vec![Vec::new(); n];
        let mut children: Vec<Vec<PlanNodeId>> = vec![Vec::new(); n];
        for &(from, to) in &self.edges {
            if from >= n {
                return Err(PlanError::UnknownNode { node: from });
            }
            if to >= n {
                return Err(PlanError::UnknownNode { node: to });
            }
            if from == to {
                return Err(PlanError::SelfEdge { node: from });
            }
            if !parents[to].contains(&from) {
                parents[to].push(from);
                children[from].push(to);
            }
        }
        for p in &mut parents {
            p.sort_unstable();
        }
        for c in &mut children {
            c.sort_unstable();
        }

        // Kahn's algorithm with a min-heap: the canonical topological order
        // is deterministic (lowest ready id first), which fixes the
        // sequential reference execution once and for all.
        let mut indegree: Vec<usize> = parents.iter().map(Vec::len).collect();
        let mut ready: BinaryHeap<std::cmp::Reverse<usize>> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| std::cmp::Reverse(i))
            .collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(i)) = ready.pop() {
            topo.push(i);
            for &c in &children[i] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    ready.push(std::cmp::Reverse(c));
                }
            }
        }
        if topo.len() < n {
            let node = indegree
                .iter()
                .position(|&d| d > 0)
                .expect("a cycle leaves positive indegree");
            return Err(PlanError::Cycle { node });
        }

        let mut bases = Vec::with_capacity(n);
        let mut base = 0usize;
        for &size in &self.sizes {
            bases.push(base);
            base += size;
        }
        let nodes = self
            .sizes
            .iter()
            .zip(parents)
            .map(|(&inputs, parents)| PlanNode { inputs, parents })
            .collect();
        Ok(SpecPlan {
            nodes,
            children,
            topo,
            bases,
            total_inputs: base,
            speculate_nodes: self.speculate_nodes,
        })
    }
}

/// An immutable, cycle-checked dependency DAG of segments, accepted by
/// [`RunOptions::plan`](crate::RunOptions::plan).
///
/// Nodes own contiguous, disjoint input ranges in declaration order; edges
/// say whose final states a node's initial state is merged from
/// ([`StateTransition::merge_states`](crate::StateTransition::merge_states)).
/// Build one with [`SpecPlan::builder`], or use [`SpecPlan::linear`] for a
/// chain that reduces to the legacy segmented path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecPlan {
    nodes: Vec<PlanNode>,
    children: Vec<Vec<PlanNodeId>>,
    topo: Vec<PlanNodeId>,
    bases: Vec<usize>,
    total_inputs: usize,
    speculate_nodes: bool,
}

impl SpecPlan {
    /// Start building a plan. Built plans have cross-node speculation
    /// **enabled** by default ([`SpecPlanBuilder::speculate_nodes`]).
    pub fn builder() -> SpecPlanBuilder {
        SpecPlanBuilder {
            sizes: Vec::new(),
            edges: Vec::new(),
            speculate_nodes: true,
        }
    }

    /// A linear chain with the given segment sizes and cross-node
    /// speculation **disabled**: running it is byte-identical — outputs,
    /// report, and trace — to the legacy
    /// [`RunOptions::segment`](crate::RunOptions::segment) path with the
    /// same sizes (property-tested in `tests/dag_properties.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is empty or contains a zero.
    pub fn linear(sizes: &[usize]) -> SpecPlan {
        let mut b = SpecPlan::builder();
        b.speculate_nodes(false);
        for (i, &size) in sizes.iter().enumerate() {
            let id = b.node(size);
            if i > 0 {
                b.edge(id - 1, id);
            }
        }
        b.build()
            .expect("a chain of non-empty nodes is a valid plan")
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the plan has no nodes (never true for a built plan).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total inputs across all nodes — the length the input slice handed to
    /// the entry points must have.
    pub fn total_inputs(&self) -> usize {
        self.total_inputs
    }

    /// The node's declaration-order metadata.
    pub fn node(&self, id: PlanNodeId) -> &PlanNode {
        &self.nodes[id]
    }

    /// Absolute input index where node `id`'s range starts; the range is
    /// `input_base(id) .. input_base(id) + node(id).inputs`.
    pub fn input_base(&self, id: PlanNodeId) -> usize {
        self.bases[id]
    }

    /// Children of `id` in ascending order.
    pub fn children(&self, id: PlanNodeId) -> &[PlanNodeId] {
        &self.children[id]
    }

    /// The canonical sequential topological order (Kahn, lowest ready id
    /// first) every execution resolves nodes in.
    pub fn topo_order(&self) -> &[PlanNodeId] {
        &self.topo
    }

    /// Whether cross-node speculation is enabled for this plan.
    pub fn speculates(&self) -> bool {
        self.speculate_nodes
    }

    /// Whether the plan is a single chain `0 -> 1 -> ... -> n-1`.
    pub fn is_linear(&self) -> bool {
        self.nodes.iter().enumerate().all(|(i, n)| {
            if i == 0 {
                n.parents.is_empty()
            } else {
                n.parents == [i - 1]
            }
        })
    }

    /// Every node reachable from `id` through child edges, **excluding**
    /// `id` itself, in ascending order — the downstream cone an abort of
    /// `id` invalidates.
    pub fn downstream_cone(&self, id: PlanNodeId) -> Vec<PlanNodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<PlanNodeId> = self.children[id].to_vec();
        while let Some(n) = stack.pop() {
            if !seen[n] {
                seen[n] = true;
                stack.extend_from_slice(&self.children[n]);
            }
        }
        (0..self.nodes.len()).filter(|&n| seen[n]).collect()
    }

    /// The critical path: the root-to-sink path maximizing total input
    /// count (the engine's work proxy), as node ids in execution order. The
    /// pooled engine dispatches these nodes on the pool's high-priority
    /// lane so the longest chain is never stuck behind bulk siblings.
    pub fn critical_path(&self) -> Vec<PlanNodeId> {
        let n = self.nodes.len();
        // Longest path ending at each node, over the topological order.
        let mut best = vec![0usize; n];
        let mut pred: Vec<Option<PlanNodeId>> = vec![None; n];
        for &i in &self.topo {
            best[i] += self.nodes[i].inputs;
            for &c in &self.children[i] {
                if best[i] > best[c] {
                    best[c] = best[i];
                    pred[c] = Some(i);
                }
            }
        }
        let mut end = 0;
        for i in 0..n {
            if best[i] > best[end] {
                end = i;
            }
        }
        let mut path = vec![end];
        while let Some(p) = pred[*path.last().expect("path is non-empty")] {
            path.push(p);
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> SpecPlan {
        let mut b = SpecPlan::builder();
        let a = b.node(4);
        let l = b.node(6);
        let r = b.node(2);
        let j = b.node(4);
        b.edge(a, l).edge(a, r).edge(l, j).edge(r, j);
        b.build().unwrap()
    }

    #[test]
    fn diamond_structure() {
        let p = diamond();
        assert_eq!(p.len(), 4);
        assert_eq!(p.total_inputs(), 16);
        assert_eq!(p.node(3).parents, vec![1, 2]);
        assert_eq!(p.children(0), &[1, 2]);
        assert_eq!(p.topo_order(), &[0, 1, 2, 3]);
        assert_eq!(p.input_base(2), 10);
        assert!(!p.is_linear());
        assert!(p.speculates());
    }

    #[test]
    fn linear_constructor_reduces() {
        let p = SpecPlan::linear(&[5, 3, 8]);
        assert!(p.is_linear());
        assert!(!p.speculates());
        assert_eq!(p.total_inputs(), 16);
        assert_eq!(p.topo_order(), &[0, 1, 2]);
        assert_eq!(p.downstream_cone(0), vec![1, 2]);
    }

    #[test]
    fn cycle_is_rejected() {
        let mut b = SpecPlan::builder();
        let a = b.node(1);
        let c = b.node(1);
        b.edge(a, c).edge(c, a);
        assert!(matches!(b.build(), Err(PlanError::Cycle { .. })));
    }

    #[test]
    fn structural_errors_are_reported() {
        assert_eq!(SpecPlan::builder().build(), Err(PlanError::EmptyPlan));

        let mut b = SpecPlan::builder();
        b.node(0);
        assert_eq!(b.build(), Err(PlanError::EmptyNode { node: 0 }));

        let mut b = SpecPlan::builder();
        let a = b.node(1);
        b.edge(a, 7);
        assert_eq!(b.build(), Err(PlanError::UnknownNode { node: 7 }));

        let mut b = SpecPlan::builder();
        let a = b.node(1);
        b.edge(a, a);
        assert_eq!(b.build(), Err(PlanError::SelfEdge { node: 0 }));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut b = SpecPlan::builder();
        let a = b.node(2);
        let c = b.node(2);
        b.edge(a, c).edge(a, c);
        let p = b.build().unwrap();
        assert_eq!(p.node(c).parents, vec![a]);
        assert_eq!(p.children(a), &[c]);
    }

    #[test]
    fn back_edges_get_a_valid_topo_order() {
        // Declaration order need not be topological: node 0 may depend on
        // node 1.
        let mut b = SpecPlan::builder();
        let first = b.node(2);
        let second = b.node(2);
        b.edge(second, first);
        let p = b.build().unwrap();
        assert_eq!(p.topo_order(), &[1, 0]);
        assert_eq!(p.downstream_cone(1), vec![0]);
    }

    #[test]
    fn downstream_cone_excludes_siblings() {
        let p = diamond();
        assert_eq!(p.downstream_cone(1), vec![3]);
        assert_eq!(p.downstream_cone(2), vec![3]);
        assert_eq!(p.downstream_cone(0), vec![1, 2, 3]);
        assert!(p.downstream_cone(3).is_empty());
    }

    #[test]
    fn critical_path_takes_the_heavy_branch() {
        let p = diamond();
        // 0 (4) -> 1 (6) -> 3 (4) beats 0 -> 2 (2) -> 3.
        assert_eq!(p.critical_path(), vec![0, 1, 3]);
    }

    #[test]
    fn errors_display_human_text() {
        let e = PlanError::Cycle { node: 3 };
        assert!(e.to_string().contains("cycle"));
        assert!(PlanError::EmptyPlan.to_string().contains("no nodes"));
    }
}
