//! The STATS execution model (paper §3.1) as a deterministic protocol.
//!
//! [`run_protocol`] is the reference implementation of the execution model:
//! inputs are grouped into ordered blocks; every block after the first
//! starts from a *speculative* state produced by auxiliary code; when the
//! previous block finishes, its final state is compared against the
//! speculative one. On mismatch the previous block's tail re-executes (the
//! nondeterministic producer may reach a different final state) up to a
//! budget; if no match is found, all subsequent blocks abort, their outputs
//! are squashed, and the remaining inputs are processed sequentially with no
//! further speculation.
//!
//! The function is *sequential* but records a [`SpecTrace`]: a task graph of
//! everything that executed (auxiliary runs, speculative invocations,
//! validations, re-executions, the post-abort sequential tail) with work
//! costs and dependence edges. Because every invocation's PRVG is seeded
//! from its coordinates, the real thread-pool runtime
//! ([`StateDependence`](crate::StateDependence)) produces byte-identical
//! outputs, and the simulated platform (`stats-sim`) can replay the trace on
//! any number of virtual cores.

use std::fmt;

use crate::ctx::{InvocationCtx, WorkMeter};
use crate::faults::{FaultKind, FaultPlan};
use crate::obs::{EventKind, EventSink, NOOP};
use crate::options::RunOptions;
use crate::resolver::Resolver;
use crate::sdi::StateTransition;
use crate::tradeoff::TradeoffBindings;

/// Salt mixed into the run seed for auxiliary-code PRVG streams, so the
/// auxiliary producer never replays the original code's randomness.
const AUX_SEED_SALT: u64 = 0xA0C1_11A2_7E57_5EED;

/// A point in the state space for one state dependence (paper §3.3): how to
/// group inputs, how much history the auxiliary code consumes, and the
/// runtime's re-execution/rollback budgets.
#[derive(Debug, Clone)]
pub struct SpecConfig {
    /// Block cardinality `G`. `0`, `1`, or a value at least the input count
    /// disables speculation (a single sequential block).
    pub group_size: usize,
    /// How many previous inputs the auxiliary code consumes (`W`), starting
    /// from the initial state.
    pub window: usize,
    /// Maximum number of times the runtime may re-execute the original
    /// producer of a state dependence (`R`).
    pub max_reexec: usize,
    /// How many inputs the previous group goes back when re-executing (`D`);
    /// clamped to the group length, minimum 1.
    pub rollback: usize,
    /// Master switch: when false, the dependence is satisfied conventionally
    /// (no auxiliary code), which is also what the autotuner chooses when
    /// speculation never pays (e.g. `fluidanimate`).
    pub speculate: bool,
    /// Work units charged for one state comparison.
    pub validation_cost: f64,
    /// Tradeoff bindings in effect inside auxiliary code (cloned tradeoffs,
    /// set by the back-end compiler from the autotuner's configuration).
    pub aux_bindings: TradeoffBindings,
    /// Tradeoff bindings for original code (always the defaults).
    pub orig_bindings: TradeoffBindings,
}

impl Default for SpecConfig {
    fn default() -> Self {
        SpecConfig {
            group_size: 8,
            window: 2,
            max_reexec: 2,
            rollback: 2,
            speculate: true,
            validation_cost: 1.0,
            aux_bindings: TradeoffBindings::new(),
            orig_bindings: TradeoffBindings::new(),
        }
    }
}

impl SpecConfig {
    /// A configuration with speculation disabled: the paper's baseline
    /// semantics (every state dependence satisfied conventionally).
    pub fn sequential() -> Self {
        SpecConfig {
            speculate: false,
            ..SpecConfig::default()
        }
    }

    /// Check the configuration for values that are legal but almost
    /// certainly mistakes, returning human-readable diagnostics. The
    /// protocol accepts any configuration (clamping internally); these
    /// warnings exist for tools that surface configurations to users.
    pub fn lint(&self) -> Vec<String> {
        let mut warnings = Vec::new();
        if self.speculate && self.group_size <= 1 {
            warnings
                .push("group_size <= 1 disables speculation despite speculate=true".to_string());
        }
        if self.speculate && self.window == 0 {
            warnings.push(
                "window = 0 gives auxiliary code no inputs: the speculative \
                 state is the initial state, which rarely matches"
                    .to_string(),
            );
        }
        if self.speculate && self.window > 4 * self.group_size.max(1) {
            warnings.push(format!(
                "window ({}) much larger than group_size ({}): auxiliary code \
                 costs more than the work it overlaps",
                self.window, self.group_size
            ));
        }
        if self.rollback == 0 {
            warnings.push("rollback = 0 is clamped to 1 at run time".to_string());
        }
        if self.validation_cost < 0.0 {
            warnings.push("validation_cost is negative".to_string());
        }
        warnings
    }

    /// The effective group size for `n` inputs (see [`SpecConfig::group_size`]).
    pub fn effective_group_size(&self, n: usize) -> usize {
        if !self.speculate || self.group_size <= 1 || self.group_size >= n {
            n
        } else {
            self.group_size
        }
    }
}

/// What kind of work a trace node represents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceNodeKind {
    /// One auxiliary-code run producing the speculative start state of
    /// `group` (internally a chain over the window inputs, summed).
    Auxiliary {
        /// The group whose start state this run produces.
        group: usize,
    },
    /// One invocation of the original `compute_output`.
    Invocation {
        /// The group the input belongs to.
        group: usize,
        /// Absolute input index.
        index: usize,
        /// Re-execution attempt (0 = first execution).
        attempt: usize,
        /// Whether the invocation ran in the post-abort sequential tail.
        sequential_tail: bool,
    },
    /// One state comparison (`does_spec_state_match_any`).
    Validation {
        /// The speculative group being validated.
        group: usize,
        /// Which comparison attempt this is (0 = against the first original).
        attempt: usize,
    },
}

/// One node of a [`SpecTrace`]: a unit of executed work with dependences.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceNode {
    /// What the node did.
    pub kind: TraceNodeKind,
    /// Work performed (CPU + memory-bound split).
    pub work: WorkMeter,
    /// Indices of trace nodes that must finish before this one starts.
    pub deps: Vec<usize>,
    /// Whether the node's results were committed (false = squashed work).
    pub committed: bool,
}

/// The recorded execution: every piece of work the protocol performed, with
/// dependence edges reflecting the execution model's parallelism.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpecTrace {
    /// Nodes in execution-discovery order; `deps` refer to indices herein.
    pub nodes: Vec<TraceNode>,
}

impl SpecTrace {
    pub(crate) fn push(&mut self, kind: TraceNodeKind, work: WorkMeter, deps: Vec<usize>) -> usize {
        self.nodes.push(TraceNode {
            kind,
            work,
            deps,
            committed: true,
        });
        self.nodes.len() - 1
    }

    /// Total work units across all nodes (committed and squashed).
    pub fn total_work(&self) -> f64 {
        self.nodes.iter().map(|n| n.work.total).sum()
    }

    /// Work units of committed nodes only.
    pub fn committed_work(&self) -> f64 {
        self.nodes
            .iter()
            .filter(|n| n.committed)
            .map(|n| n.work.total)
            .sum()
    }
}

/// How a group of inputs was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupResolution {
    /// The group was never speculative (group 0, or speculation disabled).
    NonSpeculative,
    /// The speculative state matched an original; outputs committed.
    Committed {
        /// How many re-executions of the previous group were needed.
        reexecutions: usize,
    },
    /// No match within the budget; the group (and all later ones) aborted.
    Aborted,
    /// The group's inputs were processed in the post-abort sequential tail.
    SequentialTail,
}

/// Per-group outcome record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupRecord {
    /// First absolute input index of the group.
    pub start: usize,
    /// One past the last absolute input index of the group.
    pub end: usize,
    /// Resolution of the group.
    pub resolution: GroupResolution,
}

/// Aggregate statistics of one protocol run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpecReport {
    /// Per-group outcomes, in input order.
    pub groups: Vec<GroupRecord>,
    /// Total re-executions of original producers.
    pub reexecutions: usize,
    /// Total state comparisons performed.
    pub validations: usize,
    /// Whether an abort occurred.
    pub aborted: bool,
    /// Work units of committed original-code invocations.
    pub committed_original_work: f64,
    /// Work units of committed auxiliary code (the "extra committed
    /// instructions" of Table 1, together with re-execution work).
    pub committed_aux_work: f64,
    /// Work units squashed (aborted speculative groups, failed re-executions).
    pub squashed_work: f64,
}

impl SpecReport {
    /// Number of groups that committed speculatively.
    pub fn committed_speculative_groups(&self) -> usize {
        self.groups
            .iter()
            .filter(|g| matches!(g.resolution, GroupResolution::Committed { .. }))
            .count()
    }

    /// Extra committed work (auxiliary code) relative to the committed
    /// original work — Table 1's "extra committed x86_64 instructions".
    pub fn extra_committed_fraction(&self) -> f64 {
        if self.committed_original_work > 0.0 {
            self.committed_aux_work / self.committed_original_work
        } else {
            0.0
        }
    }
}

/// The complete result of a protocol run.
pub struct ProtocolResult<T: StateTransition> {
    /// Committed outputs, one per input, in input order.
    pub outputs: Vec<T::Output>,
    /// The committed final state after the last input.
    pub final_state: T::State,
    /// Aggregate statistics.
    pub report: SpecReport,
    /// The recorded task graph.
    pub trace: SpecTrace,
}

/// Identity of one group to execute (input range and position).
#[derive(Debug, Clone, Copy)]
pub(crate) struct GroupSpec {
    pub(crate) k: usize,
    pub(crate) start: usize,
    pub(crate) end: usize,
    pub(crate) speculative: bool,
}

/// Everything one group execution produces. Pure data: group executions are
/// mutually independent, which is exactly why they may run on real threads.
pub(crate) struct GroupData<T: StateTransition> {
    pub(crate) spec: GroupSpec,
    pub(crate) aux_work: Option<WorkMeter>,
    pub(crate) spec_start: Option<T::State>,
    pub(crate) checkpoint: T::State,
    pub(crate) final_state: T::State,
    pub(crate) outputs: Vec<T::Output>,
    pub(crate) works: Vec<WorkMeter>,
}

/// Execute one group: auxiliary code (for speculative groups) followed by
/// the chained invocations over the group's inputs. Thread-safe and
/// deterministic given `run_seed`.
///
/// `inputs` may be a window of the full input stream starting at absolute
/// position `base` (the streaming engine ships each pool job only the slice
/// it needs); the spec's `start`/`end` and the loop indices stay *absolute*,
/// because they feed the PRVG seed derivation.
// Loop indices below are *absolute input positions* fed to the PRVG seed
// derivation, not mere subscripts: iterator rewrites would obscure that.
#[allow(clippy::needless_range_loop)]
#[allow(clippy::too_many_arguments)] // one parameter per execution-model knob
pub(crate) fn execute_group<T: StateTransition>(
    transition: &T,
    inputs: &[T::Input],
    base: usize,
    initial: &T::State,
    config: &SpecConfig,
    run_seed: u64,
    spec: GroupSpec,
    sink: &dyn EventSink,
    faults: Option<&FaultPlan>,
) -> GroupData<T> {
    let GroupSpec {
        k,
        start,
        end,
        speculative,
    } = spec;
    if let Some(plan) = faults {
        if let Some(delay) = plan.delay(FaultKind::SlowGroup, run_seed, k as u64) {
            if sink.enabled() {
                sink.emit(EventKind::FaultInjected {
                    kind: FaultKind::SlowGroup,
                    site: k,
                    attempt: 0,
                });
            }
            crate::sync::thread::sleep(delay);
        }
    }
    if sink.enabled() {
        sink.emit(EventKind::GroupStart {
            group: k,
            start,
            end,
            speculative,
        });
    }
    let len = end - start;
    let rollback = config.rollback.clamp(1, len);

    let (mut state, aux_work, spec_start) = if !speculative {
        (initial.clone(), None, None)
    } else {
        // Auxiliary code: from the initial state, consume the last
        // `window` inputs before `start` with the auxiliary bindings.
        let mut aux_state = initial.clone();
        let mut aux_work = WorkMeter::default();
        let w_start = start.saturating_sub(config.window);
        for i in w_start..start {
            let (_out, m) = run_invocation(
                transition,
                &inputs[i - base],
                &mut aux_state,
                run_seed,
                k as u64,
                i as u64,
                0,
                &config.aux_bindings,
                true,
            );
            aux_work.total += m.total;
            aux_work.memory += m.memory;
        }
        (aux_state.clone(), Some(aux_work), Some(aux_state))
    };

    // `rollback` is clamped to `1..=len`, so exactly one iteration below
    // hits `i == end - rollback`: the checkpoint is captured there, never
    // cloned eagerly up front only to be overwritten.
    let mut checkpoint = None;
    let mut outputs = Vec::with_capacity(len);
    let mut works = Vec::with_capacity(len);
    for i in start..end {
        if i == end - rollback {
            checkpoint = Some(state.clone());
        }
        let (out, m) = run_invocation(
            transition,
            &inputs[i - base],
            &mut state,
            run_seed,
            k as u64,
            i as u64,
            0,
            &config.orig_bindings,
            false,
        );
        outputs.push(out);
        works.push(m);
    }

    if sink.enabled() {
        sink.emit(EventKind::GroupEnd { group: k });
    }
    GroupData {
        spec,
        aux_work,
        spec_start,
        checkpoint: checkpoint.expect("rollback clamp guarantees a checkpoint capture"),
        final_state: state,
        outputs,
        works,
    }
}

#[allow(clippy::too_many_arguments)] // the invocation coordinates are the point
pub(crate) fn run_invocation<T: StateTransition>(
    transition: &T,
    input: &T::Input,
    state: &mut T::State,
    run_seed: u64,
    group: u64,
    index: u64,
    attempt: u64,
    bindings: &TradeoffBindings,
    auxiliary: bool,
) -> (T::Output, WorkMeter) {
    let seed_base = if auxiliary {
        run_seed ^ AUX_SEED_SALT
    } else {
        run_seed
    };
    let seed = InvocationCtx::derive_seed(seed_base, group, index, attempt);
    let mut ctx = InvocationCtx::new(seed, bindings.clone(), auxiliary);
    let out = transition.compute_output(input, state, &mut ctx);
    (out, ctx.meter())
}

/// Execute the STATS execution model over `inputs`, starting from `initial`.
///
/// Deterministic: all nondeterminism flows from `run_seed` through
/// per-invocation derived seeds, so repeated calls with the same arguments
/// produce identical outputs, reports, and traces.
pub fn run_protocol<T: StateTransition>(
    transition: &T,
    inputs: &[T::Input],
    initial: &T::State,
    config: &SpecConfig,
    run_seed: u64,
) -> ProtocolResult<T> {
    run_observed_inner(transition, inputs, initial, config, run_seed, &NOOP, None)
}

/// The sequential reference run with every knob taken from one
/// [`RunOptions`] value: sink, seed, config, and optional segmenting. This
/// is the batch counterpart of the streaming [`Session`](crate::Session);
/// the options' pool (if any) is ignored — the parallel execution lives in
/// [`StateDependence`](crate::StateDependence).
pub fn run_protocol_with_options<T: StateTransition>(
    transition: &T,
    inputs: &[T::Input],
    initial: &T::State,
    options: &RunOptions,
) -> ProtocolResult<T> {
    if let Some(plan) = &options.plan {
        // A DAG plan takes precedence over `segment`: the plan's own node
        // boundaries are the segmentation.
        return crate::dag::run_plan_sequential(
            transition,
            inputs,
            initial,
            plan,
            &options.config,
            options.seed,
            &*options.sink,
            options.faults.as_ref(),
        );
    }
    match options.segment {
        None => run_observed_inner(
            transition,
            inputs,
            initial,
            &options.config,
            options.seed,
            &*options.sink,
            options.faults.as_ref(),
        ),
        Some(segment) => run_segmented_inner(
            transition,
            inputs,
            initial,
            &options.config,
            options.seed,
            segment,
            &*options.sink,
            options.faults.as_ref(),
        ),
    }
}

#[allow(clippy::too_many_arguments)] // one parameter per execution-model knob
pub(crate) fn run_observed_inner<T: StateTransition>(
    transition: &T,
    inputs: &[T::Input],
    initial: &T::State,
    config: &SpecConfig,
    run_seed: u64,
    sink: &dyn EventSink,
    faults: Option<&FaultPlan>,
) -> ProtocolResult<T> {
    run_protocol_with(
        transition,
        inputs,
        initial,
        config,
        run_seed,
        sink,
        faults,
        |specs| {
            specs
                .iter()
                .map(|&s| {
                    execute_group(
                        transition, inputs, 0, initial, config, run_seed, s, sink, faults,
                    )
                })
                .collect()
        },
    )
}

/// The execution model parameterized over *how* groups execute: the
/// sequential reference path runs them in a loop; the thread-pool runtime
/// runs them concurrently. Both feed identical [`GroupData`] into the same
/// [`Resolver`] validation/commit/abort logic (which the streaming
/// [`Session`](crate::Session) drives incrementally), so the three paths
/// cannot diverge semantically.
#[allow(clippy::too_many_arguments)] // one parameter per execution-model knob
pub(crate) fn run_protocol_with<T, F>(
    transition: &T,
    inputs: &[T::Input],
    initial: &T::State,
    config: &SpecConfig,
    run_seed: u64,
    sink: &dyn EventSink,
    faults: Option<&FaultPlan>,
    exec_groups: F,
) -> ProtocolResult<T>
where
    T: StateTransition,
    F: FnOnce(&[GroupSpec]) -> Vec<GroupData<T>>,
{
    let n = inputs.len();
    if n == 0 {
        return ProtocolResult {
            outputs: Vec::new(),
            final_state: initial.clone(),
            report: SpecReport::default(),
            trace: SpecTrace::default(),
        };
    }

    let g = config.effective_group_size(n);
    let speculating = g < n;
    let specs: Vec<GroupSpec> = (0..n)
        .step_by(g)
        .enumerate()
        .map(|(k, start)| GroupSpec {
            k,
            start,
            end: (start + g).min(n),
            speculative: k > 0 && speculating,
        })
        .collect();

    if sink.enabled() {
        sink.emit(EventKind::RunStart {
            inputs: n,
            groups: specs.len(),
        });
    }

    // ---- Phase 1: run every group (group 0 from S0, later groups from
    // their auxiliary speculative state). The trace's dependence edges carry
    // the parallelism regardless of how `exec_groups` scheduled the work.
    let data = exec_groups(&specs);
    assert_eq!(data.len(), specs.len(), "executor must run every group");

    // ---- Phases 2 and 3 live in the Resolver, shared with the streaming
    // engine: validation/re-execution/abort settle as groups are ingested;
    // the canonical trace is laid out at finish().
    let mut resolver = Resolver::new(transition, config, run_seed, sink, g, faults);
    for d in data {
        resolver.ingest(d, inputs);
    }
    let result = resolver.finish(initial);

    if sink.enabled() {
        sink.emit(EventKind::RunEnd);
    }
    result
}

impl fmt::Display for SpecReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let spec_groups = self.groups.len().saturating_sub(1);
        write!(
            f,
            "{} groups ({} speculative, {} committed), {} re-executions, \
             {} validations, aborted: {}, work: {:.0} original + {:.0} auxiliary \
             committed, {:.0} squashed",
            self.groups.len(),
            spec_groups,
            self.committed_speculative_groups(),
            self.reexecutions,
            self.validations,
            self.aborted,
            self.committed_original_work,
            self.committed_aux_work,
            self.squashed_work,
        )
    }
}

/// Run the execution model over `inputs` in consecutive segments of
/// `segment` inputs each, carrying the committed final state across
/// segments.
///
/// §3.1's abort rule says "no other speculation is performed until all the
/// *current* inputs are processed": in a long-running program the state
/// dependence is re-entered per batch (a video chunk, a stream window), so
/// an abort disables speculation only for the rest of its own segment —
/// the next segment speculates afresh. Reports are merged (group indices
/// keep segment-local numbering).
#[allow(clippy::too_many_arguments)] // one parameter per execution-model knob
fn run_segmented_inner<T: StateTransition>(
    transition: &T,
    inputs: &[T::Input],
    initial: &T::State,
    config: &SpecConfig,
    run_seed: u64,
    segment: usize,
    sink: &dyn EventSink,
    faults: Option<&FaultPlan>,
) -> ProtocolResult<T> {
    let segment = segment.max(1);
    let mut acc = SegmentAccumulator::new(initial.clone());
    for (seg_idx, chunk) in inputs.chunks(segment).enumerate() {
        let r = run_observed_inner(
            transition,
            chunk,
            acc.state(),
            config,
            run_seed ^ (seg_idx as u64) << 32,
            sink,
            faults,
        );
        acc.absorb(r);
    }
    acc.finish()
}

/// Merges per-segment [`ProtocolResult`]s into one, carrying committed
/// state across segments: output offsets shift, reports add up, and segment
/// traces chain behind the previous segment's last committed node. Shared
/// by the batch segmented path and the streaming engine's segmented mode.
pub(crate) struct SegmentAccumulator<T: StateTransition> {
    outputs: Vec<T::Output>,
    report: SpecReport,
    trace: SpecTrace,
    /// Index of the node producing the previous segment's committed final
    /// state (its last committed node in execution order).
    prev_final: Option<usize>,
    state: T::State,
}

impl<T: StateTransition> SegmentAccumulator<T> {
    pub(crate) fn new(initial: T::State) -> Self {
        SegmentAccumulator {
            outputs: Vec::new(),
            report: SpecReport::default(),
            trace: SpecTrace::default(),
            prev_final: None,
            state: initial,
        }
    }

    /// The committed state the next segment must start from.
    pub(crate) fn state(&self) -> &T::State {
        &self.state
    }

    /// Fold one segment's result into the accumulated run.
    pub(crate) fn absorb(&mut self, r: ProtocolResult<T>) {
        self.state = r.final_state;
        let offset = self.outputs.len();
        self.outputs.extend(r.outputs);
        // Merge the report, shifting group input ranges by the offset.
        for mut g in r.report.groups {
            g.start += offset;
            g.end += offset;
            self.report.groups.push(g);
        }
        self.report.reexecutions += r.report.reexecutions;
        self.report.validations += r.report.validations;
        self.report.aborted |= r.report.aborted;
        self.report.committed_original_work += r.report.committed_original_work;
        self.report.committed_aux_work += r.report.committed_aux_work;
        self.report.squashed_work += r.report.squashed_work;
        // Chain the trace: shift the segment's dependence indices past the
        // nodes already merged, and add the cross-segment state edge — a
        // segment's entry nodes (group 0's first invocation and every
        // auxiliary run, the nodes with no intra-segment dependences) start
        // from the previous segment's committed final state, so they must
        // depend on the node that produced it.
        let base = self.trace.nodes.len();
        for mut node in r.trace.nodes {
            node.deps.iter_mut().for_each(|d| *d += base);
            if node.deps.is_empty() {
                if let Some(p) = self.prev_final {
                    node.deps.push(p);
                }
            }
            self.trace.nodes.push(node);
        }
        self.prev_final = self.trace.nodes[base..]
            .iter()
            .rposition(|n| n.committed)
            .map(|off| base + off);
    }

    /// The merged result of every absorbed segment.
    pub(crate) fn finish(self) -> ProtocolResult<T> {
        ProtocolResult {
            outputs: self.outputs,
            final_state: self.state,
            report: self.report,
            trace: self.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::sdi::{ExactState, SpecState};

    /// Segmented run via the unified options surface.
    fn run_segmented<T: StateTransition>(
        transition: &T,
        inputs: &[T::Input],
        initial: &T::State,
        config: &SpecConfig,
        seed: u64,
        segment: usize,
    ) -> ProtocolResult<T> {
        let options = RunOptions::default()
            .config(config.clone())
            .seed(seed)
            .segment(segment);
        run_protocol_with_options(transition, inputs, initial, &options)
    }

    /// Observed run via the unified options surface.
    fn run_with_sink<T: StateTransition>(
        transition: &T,
        inputs: &[T::Input],
        initial: &T::State,
        config: &SpecConfig,
        seed: u64,
        sink: &Arc<crate::obs::RecordingSink>,
    ) -> ProtocolResult<T> {
        let options = RunOptions::default()
            .config(config.clone())
            .seed(seed)
            .sink(Arc::clone(sink) as Arc<dyn EventSink>);
        run_protocol_with_options(transition, inputs, initial, &options)
    }

    /// Deterministic counter: state is the running sum; outputs the sum.
    struct Sum;
    impl StateTransition for Sum {
        type Input = u64;
        type State = ExactState<u64>;
        type Output = u64;
        fn compute_output(
            &self,
            input: &u64,
            state: &mut ExactState<u64>,
            ctx: &mut InvocationCtx,
        ) -> u64 {
            ctx.charge(10.0);
            state.0 = state.0.wrapping_add(*input);
            state.0
        }
    }

    /// A state whose comparison always succeeds (streamcluster-style: any
    /// speculative state is a legal original output).
    #[derive(Clone, Debug)]
    struct AlwaysMatch(u64);
    impl SpecState for AlwaysMatch {
        fn matches_any(&self, _originals: &[Self]) -> bool {
            true
        }
    }

    /// A state whose comparison never succeeds (forces the abort path).
    #[derive(Clone, Debug)]
    struct NeverMatch(u64);
    impl SpecState for NeverMatch {
        fn matches_any(&self, _originals: &[Self]) -> bool {
            false
        }
    }

    struct SumAlways;
    impl StateTransition for SumAlways {
        type Input = u64;
        type State = AlwaysMatch;
        type Output = u64;
        fn compute_output(
            &self,
            input: &u64,
            state: &mut AlwaysMatch,
            ctx: &mut InvocationCtx,
        ) -> u64 {
            ctx.charge(10.0);
            state.0 = state.0.wrapping_add(*input);
            state.0
        }
    }

    struct SumNever;
    impl StateTransition for SumNever {
        type Input = u64;
        type State = NeverMatch;
        type Output = u64;
        fn compute_output(
            &self,
            input: &u64,
            state: &mut NeverMatch,
            ctx: &mut InvocationCtx,
        ) -> u64 {
            ctx.charge(10.0);
            state.0 = state.0.wrapping_add(*input);
            state.0
        }
    }

    fn inputs(n: usize) -> Vec<u64> {
        (1..=n as u64).collect()
    }

    #[test]
    fn sequential_config_matches_plain_fold() {
        let ins = inputs(10);
        let r = run_protocol(&Sum, &ins, &ExactState(0), &SpecConfig::sequential(), 1);
        let expected: Vec<u64> = ins
            .iter()
            .scan(0u64, |s, &x| {
                *s += x;
                Some(*s)
            })
            .collect();
        assert_eq!(r.outputs, expected);
        assert_eq!(r.final_state.0, 55);
        assert!(!r.report.aborted);
        assert!(r
            .report
            .groups
            .iter()
            .all(|g| g.resolution == GroupResolution::NonSpeculative));
    }

    /// "Short memory" transition: the state is just the last input seen, so
    /// auxiliary code with any window >= 1 reproduces it exactly — the
    /// structural property (§4.8) that makes a computation a good STATS fit.
    struct Last;
    impl StateTransition for Last {
        type Input = u64;
        type State = ExactState<u64>;
        type Output = u64;
        fn compute_output(
            &self,
            input: &u64,
            state: &mut ExactState<u64>,
            ctx: &mut InvocationCtx,
        ) -> u64 {
            ctx.charge(10.0);
            state.0 = *input;
            state.0
        }
    }

    #[test]
    fn exact_state_speculation_commits_for_short_memory_code() {
        let ins = inputs(16);
        let cfg = SpecConfig {
            group_size: 4,
            window: 1,
            ..SpecConfig::default()
        };
        let r = run_protocol(&Last, &ins, &ExactState(0), &cfg, 7);
        assert!(!r.report.aborted, "report: {:?}", r.report);
        assert_eq!(r.report.committed_speculative_groups(), 3);
        assert_eq!(r.outputs, ins);
    }

    #[test]
    fn full_history_state_aborts_even_with_group_sized_window() {
        // Sum's state is the whole prefix sum: a window covering only the
        // previous group cannot reproduce it past the first boundary, so the
        // second speculative group must abort (the fluidanimate situation).
        let ins = inputs(16);
        let cfg = SpecConfig {
            group_size: 4,
            window: 4,
            ..SpecConfig::default()
        };
        let r = run_protocol(&Sum, &ins, &ExactState(0), &cfg, 7);
        assert!(r.report.aborted);
        // Group 1's window happens to cover its whole prefix, so it commits.
        assert_eq!(
            r.report.groups[1].resolution,
            GroupResolution::Committed { reexecutions: 0 }
        );
        let expected: Vec<u64> = ins
            .iter()
            .scan(0u64, |s, &x| {
                *s += x;
                Some(*s)
            })
            .collect();
        assert_eq!(r.outputs, expected);
    }

    #[test]
    fn short_window_mismatch_aborts_exact_state() {
        // With a window smaller than the prefix, the aux state cannot equal
        // the exact running sum, so every validation fails and the first
        // speculative group aborts.
        let ins = inputs(16);
        let cfg = SpecConfig {
            group_size: 4,
            window: 1,
            max_reexec: 2,
            ..SpecConfig::default()
        };
        let r = run_protocol(&Sum, &ins, &ExactState(0), &cfg, 7);
        assert!(r.report.aborted);
        // Outputs must still be the correct sequential results.
        let expected: Vec<u64> = ins
            .iter()
            .scan(0u64, |s, &x| {
                *s += x;
                Some(*s)
            })
            .collect();
        assert_eq!(r.outputs, expected);
        assert_eq!(r.final_state.0, 136);
        // Re-executions happened (deterministic code cannot change its
        // final state, but the runtime doesn't know that).
        assert_eq!(r.report.reexecutions, 2);
        assert!(r.report.squashed_work > 0.0);
    }

    #[test]
    fn always_match_commits_everything() {
        let ins = inputs(20);
        let cfg = SpecConfig {
            group_size: 5,
            window: 2,
            ..SpecConfig::default()
        };
        let r = run_protocol(&SumAlways, &ins, &AlwaysMatch(0), &cfg, 3);
        assert!(!r.report.aborted);
        assert_eq!(r.report.committed_speculative_groups(), 3);
        assert_eq!(r.report.reexecutions, 0);
        assert_eq!(r.outputs.len(), 20);
        assert!(r.report.committed_aux_work > 0.0);
    }

    #[test]
    fn never_match_aborts_at_first_group_and_falls_back() {
        let ins = inputs(20);
        let cfg = SpecConfig {
            group_size: 5,
            window: 2,
            max_reexec: 3,
            ..SpecConfig::default()
        };
        let r = run_protocol(&SumNever, &ins, &NeverMatch(0), &cfg, 3);
        assert!(r.report.aborted);
        assert_eq!(r.report.reexecutions, 3);
        // All 20 outputs exist and match the sequential fold.
        let expected: Vec<u64> = ins
            .iter()
            .scan(0u64, |s, &x| {
                *s += x;
                Some(*s)
            })
            .collect();
        assert_eq!(r.outputs, expected);
        // Groups 1.. are sequential-tail.
        assert!(r
            .report
            .groups
            .iter()
            .skip(1)
            .all(|g| g.resolution == GroupResolution::SequentialTail));
    }

    #[test]
    fn empty_inputs() {
        let r = run_protocol(&Sum, &[], &ExactState(9), &SpecConfig::default(), 0);
        assert!(r.outputs.is_empty());
        assert_eq!(r.final_state.0, 9);
    }

    #[test]
    fn single_input() {
        let r = run_protocol(&Sum, &[5], &ExactState(0), &SpecConfig::default(), 0);
        assert_eq!(r.outputs, vec![5]);
    }

    #[test]
    fn deterministic_across_calls() {
        let ins = inputs(17);
        let cfg = SpecConfig {
            group_size: 4,
            window: 2,
            ..SpecConfig::default()
        };
        let a = run_protocol(&SumAlways, &ins, &AlwaysMatch(0), &cfg, 99);
        let b = run_protocol(&SumAlways, &ins, &AlwaysMatch(0), &cfg, 99);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.trace.nodes.len(), b.trace.nodes.len());
        assert_eq!(a.report.validations, b.report.validations);
    }

    #[test]
    fn trace_dependences_are_backward() {
        let ins = inputs(16);
        let cfg = SpecConfig {
            group_size: 4,
            window: 2,
            ..SpecConfig::default()
        };
        let r = run_protocol(&SumAlways, &ins, &AlwaysMatch(0), &cfg, 1);
        for (i, node) in r.trace.nodes.iter().enumerate() {
            for &d in &node.deps {
                assert!(d < i, "node {i} depends on later node {d}");
            }
        }
    }

    #[test]
    fn speculative_groups_do_not_depend_on_previous_group_chain() {
        // The whole point: group 1's first invocation depends only on its
        // auxiliary node, not on group 0's invocations.
        let ins = inputs(8);
        let cfg = SpecConfig {
            group_size: 4,
            window: 1,
            ..SpecConfig::default()
        };
        let r = run_protocol(&SumAlways, &ins, &AlwaysMatch(0), &cfg, 1);
        let aux_idx = r
            .trace
            .nodes
            .iter()
            .position(|n| matches!(n.kind, TraceNodeKind::Auxiliary { group: 1 }))
            .expect("aux node for group 1");
        let first_g1 = r
            .trace
            .nodes
            .iter()
            .position(|n| {
                matches!(
                    n.kind,
                    TraceNodeKind::Invocation {
                        group: 1,
                        index: 4,
                        ..
                    }
                )
            })
            .expect("first invocation of group 1");
        assert_eq!(r.trace.nodes[first_g1].deps, vec![aux_idx]);
    }

    #[test]
    fn lint_flags_suspicious_configs() {
        let ok = SpecConfig {
            group_size: 8,
            window: 2,
            ..SpecConfig::default()
        };
        assert!(ok.lint().is_empty(), "{:?}", ok.lint());

        let zero_window = SpecConfig {
            window: 0,
            ..SpecConfig::default()
        };
        assert!(zero_window.lint().iter().any(|w| w.contains("window = 0")));

        let huge_window = SpecConfig {
            group_size: 2,
            window: 50,
            ..SpecConfig::default()
        };
        assert!(huge_window.lint().iter().any(|w| w.contains("much larger")));

        let tiny_group = SpecConfig {
            group_size: 1,
            ..SpecConfig::default()
        };
        assert!(tiny_group
            .lint()
            .iter()
            .any(|w| w.contains("disables speculation")));

        let no_rollback = SpecConfig {
            rollback: 0,
            ..SpecConfig::default()
        };
        assert!(no_rollback.lint().iter().any(|w| w.contains("rollback")));
    }

    #[test]
    fn segmented_run_restores_speculation_after_abort() {
        // NeverMatch aborts in every segment, but each new segment tries
        // speculation again (visible as one abort per segment).
        let ins = inputs(40);
        let cfg = SpecConfig {
            group_size: 5,
            window: 2,
            max_reexec: 1,
            ..SpecConfig::default()
        };
        let r = run_segmented(&SumNever, &ins, &NeverMatch(0), &cfg, 3, 20);
        assert!(r.report.aborted);
        // 40 outputs, exact fold, final state carried across segments.
        let expected: Vec<u64> = ins
            .iter()
            .scan(0u64, |s, &x| {
                *s += x;
                Some(*s)
            })
            .collect();
        assert_eq!(r.outputs, expected);
        assert_eq!(r.final_state.0, 820);
        // Group ranges tile the whole input range across segments.
        let mut covered = 0;
        for g in &r.report.groups {
            assert_eq!(g.start, covered);
            covered = g.end;
        }
        assert_eq!(covered, 40);
    }

    #[test]
    fn segmented_preserves_short_memory_semantics() {
        // `Last`'s state is the most recent input: any window >= 1
        // reproduces it, so committed speculation is exact and the final
        // state is the last input regardless of segmentation.
        let ins = inputs(24);
        let cfg = SpecConfig {
            group_size: 4,
            window: 1,
            ..SpecConfig::default()
        };
        let seg = run_segmented(&Last, &ins, &ExactState(0), &cfg, 9, 12);
        assert!(!seg.report.aborted);
        assert_eq!(seg.outputs, ins);
        assert_eq!(seg.final_state.0, 24);
        // Speculation happened in both segments.
        assert!(seg.report.committed_speculative_groups() >= 4);
    }

    #[test]
    fn report_display_is_informative() {
        let ins = inputs(16);
        let cfg = SpecConfig {
            group_size: 4,
            window: 2,
            ..SpecConfig::default()
        };
        let r = run_protocol(&SumAlways, &ins, &AlwaysMatch(0), &cfg, 1);
        let text = format!("{}", r.report);
        assert!(text.contains("4 groups"));
        assert!(text.contains("committed"));
    }

    fn assert_work_partitions(total: f64, report: &SpecReport) {
        let sum = report.committed_original_work + report.committed_aux_work + report.squashed_work;
        assert!((total - sum).abs() < 1e-9, "total {total} != parts {sum}");
    }

    #[test]
    fn work_accounting_partitions_total_on_commit_path() {
        let ins = inputs(20);
        let cfg = SpecConfig {
            group_size: 5,
            window: 2,
            max_reexec: 2,
            ..SpecConfig::default()
        };
        let r = run_protocol(&SumAlways, &ins, &AlwaysMatch(0), &cfg, 5);
        assert_work_partitions(r.trace.total_work(), &r.report);
    }

    #[test]
    fn work_accounting_partitions_total_on_abort_path() {
        let ins = inputs(20);
        let cfg = SpecConfig {
            group_size: 5,
            window: 2,
            max_reexec: 2,
            ..SpecConfig::default()
        };
        let r = run_protocol(&SumNever, &ins, &NeverMatch(0), &cfg, 5);
        assert_work_partitions(r.trace.total_work(), &r.report);
    }

    #[test]
    fn lint_messages_have_no_embedded_double_spaces() {
        // Regression: wrapped string literals used to embed runs of ~17
        // spaces ("the speculative                  state") in the
        // diagnostics surfaced to users.
        let suspicious = [
            SpecConfig {
                window: 0,
                ..SpecConfig::default()
            },
            SpecConfig {
                group_size: 2,
                window: 50,
                ..SpecConfig::default()
            },
            SpecConfig {
                group_size: 1,
                rollback: 0,
                validation_cost: -1.0,
                ..SpecConfig::default()
            },
        ];
        for cfg in suspicious {
            for w in cfg.lint() {
                assert!(!w.contains("  "), "double space in lint message: {w:?}");
            }
        }
    }

    #[test]
    fn segmented_trace_has_cross_segment_state_edges() {
        // Regression: each segment's entry nodes (group 0's first
        // invocation, every auxiliary run) used to have empty `deps`, so
        // `stats-sim` replay treated segments as fully independent and
        // overestimated parallelism. They must depend on the previous
        // segment's last committed node.
        let ins = inputs(24);
        let cfg = SpecConfig {
            group_size: 4,
            window: 1,
            ..SpecConfig::default()
        };
        let seg_len = 8;
        let r = run_segmented(&Last, &ins, &ExactState(0), &cfg, 9, seg_len);
        // The first segment's node count, from an identical standalone run
        // (segment 0 derives its seed as run_seed ^ 0 << 32 == run_seed).
        let first = run_protocol(&Last, &ins[..seg_len], &ExactState(0), &cfg, 9);
        let boundary = first.trace.nodes.len();
        assert!(boundary < r.trace.nodes.len(), "multiple segments expected");
        let zero_dep: Vec<usize> = r
            .trace
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.deps.is_empty())
            .map(|(i, _)| i)
            .collect();
        assert!(!zero_dep.is_empty(), "segment 0 still has entry nodes");
        assert!(
            zero_dep.iter().all(|&i| i < boundary),
            "zero-dep nodes after segment 0: {:?}",
            zero_dep
                .iter()
                .filter(|&&i| i >= boundary)
                .collect::<Vec<_>>()
        );
        // Edges still point strictly backward after the merge.
        for (i, node) in r.trace.nodes.iter().enumerate() {
            for &d in &node.deps {
                assert!(d < i, "node {i} depends on non-earlier {d}");
            }
        }
    }

    #[test]
    fn segmented_abort_chains_tail_into_next_segment() {
        // With NeverMatch every segment aborts; the next segment's entry
        // nodes must depend on the previous segment's last committed node,
        // which after an abort is the final sequential-tail invocation.
        let ins = inputs(20);
        let cfg = SpecConfig {
            group_size: 5,
            window: 2,
            max_reexec: 1,
            ..SpecConfig::default()
        };
        let r = run_segmented(&SumNever, &ins, &NeverMatch(0), &cfg, 3, 10);
        let zero_dep = r.trace.nodes.iter().filter(|n| n.deps.is_empty()).count();
        // Only segment 0's own entry nodes may be dependence-free: the
        // whole second segment is chained behind segment 0's tail.
        let standalone = run_protocol(&SumNever, &ins[..10], &NeverMatch(0), &cfg, 3);
        let seg0_entries = standalone
            .trace
            .nodes
            .iter()
            .filter(|n| n.deps.is_empty())
            .count();
        assert_eq!(zero_dep, seg0_entries, "segment 1 entries must be chained");
    }

    /// State that matches only once two original final states exist — i.e.
    /// validation fails against attempt 0 and succeeds after the first
    /// re-execution, deterministically.
    #[derive(Clone, Debug)]
    struct MatchSecond(f64);
    impl SpecState for MatchSecond {
        fn matches_any(&self, originals: &[Self]) -> bool {
            originals.len() >= 2
        }
    }

    /// Nondeterministic short-memory producer: both the state and the
    /// output are a fresh PRVG draw, so a re-executed tail (attempt 1,
    /// different seeds) produces *different* outputs than attempt 0.
    struct NoisySecond;
    impl StateTransition for NoisySecond {
        type Input = u64;
        type State = MatchSecond;
        type Output = f64;
        fn compute_output(
            &self,
            _input: &u64,
            state: &mut MatchSecond,
            ctx: &mut InvocationCtx,
        ) -> f64 {
            ctx.charge(10.0);
            state.0 = ctx.uniform(0.0, 1.0);
            state.0
        }
    }

    #[test]
    fn matched_reexecution_commits_with_replaced_tail_outputs() {
        let ins = inputs(8);
        let rollback = 1usize;
        let cfg = SpecConfig {
            group_size: 4,
            window: 1,
            max_reexec: 2,
            rollback,
            ..SpecConfig::default()
        };
        let seed = 11u64;
        let r = run_protocol(&NoisySecond, &ins, &MatchSecond(0.0), &cfg, seed);

        // Every speculative group commits after exactly one re-execution.
        assert!(!r.report.aborted);
        assert_eq!(
            r.report.groups[1].resolution,
            GroupResolution::Committed { reexecutions: 1 }
        );
        assert_eq!(r.report.reexecutions, 1);

        // Replay group 0 by hand: attempt-0 chain up to the checkpoint,
        // then the tail at attempt 0 and attempt 1.
        let mut state = MatchSecond(0.0);
        for (i, input) in ins.iter().enumerate().take(3) {
            let _ = run_invocation(
                &NoisySecond,
                input,
                &mut state,
                seed,
                0,
                i as u64,
                0,
                &cfg.orig_bindings,
                false,
            );
        }
        let checkpoint = state.clone();
        let mut s0 = checkpoint.clone();
        let (attempt0_out, _) = run_invocation(
            &NoisySecond,
            &ins[3],
            &mut s0,
            seed,
            0,
            3,
            0,
            &cfg.orig_bindings,
            false,
        );
        let mut s1 = checkpoint.clone();
        let (attempt1_out, _) = run_invocation(
            &NoisySecond,
            &ins[3],
            &mut s1,
            seed,
            0,
            3,
            1,
            &cfg.orig_bindings,
            false,
        );
        assert_ne!(attempt0_out, attempt1_out, "re-execution must differ");
        assert_eq!(
            r.outputs[3], attempt1_out,
            "tail output must be the matched attempt's, not attempt 0's"
        );

        // Attempt-0 tail nodes are squashed; attempt-1 nodes committed.
        let tail0 = r
            .trace
            .nodes
            .iter()
            .find(|n| {
                matches!(
                    n.kind,
                    TraceNodeKind::Invocation {
                        group: 0,
                        index: 3,
                        attempt: 0,
                        ..
                    }
                )
            })
            .expect("attempt-0 tail node");
        assert!(!tail0.committed, "attempt-0 tail must be squashed");
        let tail1 = r
            .trace
            .nodes
            .iter()
            .find(|n| {
                matches!(
                    n.kind,
                    TraceNodeKind::Invocation {
                        group: 0,
                        index: 3,
                        attempt: 1,
                        ..
                    }
                )
            })
            .expect("attempt-1 tail node");
        assert!(tail1.committed, "matched attempt must be committed");

        // Work accounting still partitions the total.
        assert_work_partitions(r.trace.total_work(), &r.report);
        assert!(r.report.squashed_work > 0.0, "attempt-0 tail was squashed");
    }

    #[test]
    fn observed_run_emits_commit_story() {
        use crate::obs::{EventKind, RecordingSink};
        let ins = inputs(16);
        let cfg = SpecConfig {
            group_size: 4,
            window: 2,
            ..SpecConfig::default()
        };
        let sink = Arc::new(RecordingSink::new());
        let r = run_with_sink(&SumAlways, &ins, &AlwaysMatch(0), &cfg, 1, &sink);
        assert!(!r.report.aborted);
        let events = sink.events();
        let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
        assert!(matches!(
            kinds.first(),
            Some(EventKind::RunStart {
                inputs: 16,
                groups: 4
            })
        ));
        assert!(matches!(kinds.last(), Some(EventKind::RunEnd)));
        let commits = kinds
            .iter()
            .filter(|k| matches!(k, EventKind::GroupCommit { .. }))
            .count();
        assert_eq!(commits, 3, "one commit per speculative group");
        let validations = kinds
            .iter()
            .filter(|k| matches!(k, EventKind::Validation { .. }))
            .count();
        assert_eq!(validations, r.report.validations);
        // Group spans pair up.
        for g in 0..4 {
            assert!(kinds.contains(&EventKind::GroupStart {
                group: g,
                start: g * 4,
                end: g * 4 + 4,
                speculative: g > 0,
            }));
            assert!(kinds.contains(&EventKind::GroupEnd { group: g }));
        }
        // Timestamps are monotone within the (sequential) reference run.
        for pair in events.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }

    #[test]
    fn observed_abort_emits_tail_events() {
        use crate::obs::{EventKind, RecordingSink};
        let ins = inputs(20);
        let cfg = SpecConfig {
            group_size: 5,
            window: 2,
            max_reexec: 2,
            ..SpecConfig::default()
        };
        let sink = Arc::new(RecordingSink::new());
        let r = run_with_sink(&SumNever, &ins, &NeverMatch(0), &cfg, 3, &sink);
        assert!(r.report.aborted);
        let kinds: Vec<EventKind> = sink.events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::GroupAbort { group: 1 }));
        assert!(kinds.contains(&EventKind::SequentialTailStart { index: 5 }));
        assert!(kinds.contains(&EventKind::SequentialTailEnd));
        let reexecs = kinds
            .iter()
            .filter(|k| matches!(k, EventKind::Reexecution { .. }))
            .count();
        assert_eq!(reexecs, r.report.reexecutions);
    }

    #[test]
    fn noop_sink_changes_nothing() {
        // `run_protocol` (no-op sink) and an observed run must be
        // byte-identical in outputs, trace, and report.
        use crate::obs::RecordingSink;
        let ins = inputs(17);
        let cfg = SpecConfig {
            group_size: 4,
            window: 2,
            ..SpecConfig::default()
        };
        let plain = run_protocol(&SumAlways, &ins, &AlwaysMatch(0), &cfg, 99);
        let sink = Arc::new(RecordingSink::new());
        let observed = run_with_sink(&SumAlways, &ins, &AlwaysMatch(0), &cfg, 99, &sink);
        assert_eq!(plain.outputs, observed.outputs);
        assert_eq!(plain.trace.nodes.len(), observed.trace.nodes.len());
        assert_eq!(plain.report.validations, observed.report.validations);
        assert!(!sink.is_empty());
    }

    #[test]
    fn chrome_export_is_wellformed() {
        use crate::obs::{chrome_trace_json, validate_backward_deps, RecordingSink};
        let ins = inputs(16);
        let cfg = SpecConfig {
            group_size: 4,
            window: 2,
            ..SpecConfig::default()
        };
        let sink = Arc::new(RecordingSink::new());
        let r = run_with_sink(&SumAlways, &ins, &AlwaysMatch(0), &cfg, 1, &sink);
        validate_backward_deps(&r.trace).expect("backward deps");
        let json = chrome_trace_json(&r.trace, &sink.events());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // One complete event per trace node, plus the wall-clock section.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), r.trace.nodes.len());
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("virtual schedule"));
        assert!(json.contains("wall clock"));
        // Balanced braces/brackets (a cheap structural JSON check; the CI
        // smoke step parses the exported file with a real JSON parser).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn virtual_schedule_respects_dependences() {
        use crate::obs::virtual_schedule;
        let ins = inputs(16);
        let cfg = SpecConfig {
            group_size: 4,
            window: 2,
            ..SpecConfig::default()
        };
        let r = run_protocol(&SumAlways, &ins, &AlwaysMatch(0), &cfg, 1);
        let sched = virtual_schedule(&r.trace);
        assert_eq!(sched.slots.len(), r.trace.nodes.len());
        for (i, node) in r.trace.nodes.iter().enumerate() {
            let (start, finish, _) = sched.slots[i];
            assert!(finish >= start);
            for &d in &node.deps {
                assert!(
                    sched.slots[d].1 <= start + 1e-9,
                    "node {i} starts before dep {d} finishes"
                );
            }
        }
        // Speculation means the schedule is genuinely parallel: the
        // makespan is shorter than the serial sum of work.
        assert!(sched.makespan() < r.trace.total_work());
        assert!(sched.lanes > 1);
    }

    #[test]
    fn render_summary_covers_groups_and_split() {
        use crate::obs::render_summary;
        let ins = inputs(16);
        let cfg = SpecConfig {
            group_size: 4,
            window: 2,
            ..SpecConfig::default()
        };
        let r = run_protocol(&SumAlways, &ins, &AlwaysMatch(0), &cfg, 1);
        let text = render_summary(&r.report, &r.trace);
        assert!(text.contains("per-group timeline"));
        assert!(text.contains("non-speculative"));
        assert!(text.contains("committed"));
        assert!(text.contains("work split"));
        assert!(text.contains("critical path"));
    }
}
