//! The streaming speculation engine: a long-lived [`Session`] that accepts
//! inputs incrementally and runs the §3.1 execution model over them as they
//! arrive.
//!
//! A `Session` keeps one [`ThreadPool`], one [`EventSink`], and one tuned
//! [`SpecConfig`] alive across an entire input stream instead of paying for
//! them per call. Producers `push`/`push_batch` into a bounded queue
//! (backpressure: a full queue blocks the producer); a dedicated
//! `stats-stream` coordinator thread forms speculation groups on the fly,
//! runs group 0 inline while dispatching later groups to the pool, and
//! overlaps validation + commit of group `k` with the auxiliary + original
//! execution of later groups already in flight.
//!
//! **Determinism contract**: for the same seed and the same input order,
//! `Session` is bit-identical — outputs, final state, [`SpecReport`], and
//! [`SpecTrace`](crate::SpecTrace) — to the batch
//! [`run_protocol`](crate::run_protocol) over the concatenated inputs,
//! regardless of how pushes were chunked. The property-based test suite
//! (`tests/streaming_properties.rs`) checks exactly this. See
//! `docs/streaming.md` for lifecycle and backpressure details.

use std::any::Any;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::time::Duration;

use crate::sync::{thread, Arc, Condvar, Mutex};

use crate::adapt::{AdaptiveController, RetryPolicy, SegmentStats};
use crate::faults::{FaultKind, FaultPlan, InjectedFault};
use crate::obs::{EventKind, EventSink};
use crate::options::RunOptions;
use crate::pool::{Priority, ThreadPool};
use crate::protocol::{
    execute_group, run_invocation, GroupData, GroupSpec, ProtocolResult, SegmentAccumulator,
    SpecConfig, SpecReport, SpecTrace,
};
use crate::resolver::Resolver;
use crate::runtime::{resolve_pool, SpecOutcome};
use crate::sdi::StateTransition;

/// Everything shared between producers, the coordinator, and pool jobs.
struct StreamShared<T: StateTransition> {
    inner: Mutex<StreamInner<T>>,
    /// Signaled when queue space frees up (or the coordinator dies).
    producer: Condvar,
    /// Signaled when inputs, completions, or a close arrive.
    coordinator: Condvar,
    capacity: usize,
}

struct StreamInner<T: StateTransition> {
    queue: VecDeque<T::Input>,
    closed: bool,
    /// Finished group executions, keyed by group index within the current
    /// segment (pool jobs may finish out of order).
    completions: Vec<(usize, GroupData<T>)>,
    /// First panic payload from a pool job; re-raised by the coordinator.
    panic: Option<Box<dyn Any + Send>>,
    /// Groups whose pool job was killed by an injected worker-panic fault;
    /// the coordinator retries them under the [`RetryPolicy`].
    lost: Vec<InjectedFault>,
    /// Set when the coordinator thread exits (normally or by panic), so
    /// blocked producers fail fast instead of waiting forever.
    coordinator_gone: bool,
    /// Human-readable message of the panic that killed the coordinator,
    /// recorded before `coordinator_gone` is raised so a failing
    /// [`Session::try_push`] can report *why* the front door is closed.
    gone_message: Option<String>,
}

/// Immutable engine context shared with pool jobs.
struct EngineCtx<T: StateTransition> {
    transition: T,
    config: Arc<SpecConfig>,
    sink: Arc<dyn EventSink>,
    faults: Option<FaultPlan>,
    retry: RetryPolicy,
    priority: Priority,
}

/// A long-lived streaming run of the STATS execution model.
///
/// ```
/// use stats_core::{ExactState, InvocationCtx, RunOptions, Session, SpecConfig, StateTransition};
///
/// struct Double;
/// impl StateTransition for Double {
///     type Input = u64;
///     type State = ExactState<u64>;
///     type Output = u64;
///     fn compute_output(
///         &self,
///         input: &u64,
///         state: &mut ExactState<u64>,
///         ctx: &mut InvocationCtx,
///     ) -> u64 {
///         ctx.charge(1.0);
///         state.0 = *input;
///         2 * *input
///     }
/// }
///
/// let session = Session::new(ExactState(0), Double, RunOptions::default()
///     .config(SpecConfig { group_size: 8, window: 1, ..SpecConfig::default() }));
/// for i in 0..32 {
///     session.push(i);
/// }
/// let outcome = session.finish();
/// assert_eq!(outcome.outputs[5], 10);
/// ```
pub struct Session<T: StateTransition> {
    shared: Arc<StreamShared<T>>,
    handle: Option<thread::JoinHandle<ProtocolResult<T>>>,
}

impl<T: StateTransition> Session<T> {
    /// Open a stream from `initial` under `options`, spawning the
    /// `stats-stream` coordinator thread. The options' pool is shared with
    /// other sessions and dependences; without one, a private pool sized to
    /// the machine is created and kept for the session's whole lifetime.
    pub fn new(initial: T::State, transition: T, options: RunOptions) -> Self {
        assert!(
            options.plan.is_none(),
            "RunOptions::plan is batch-only: a Session streams a linear input \
             sequence (run DAG plans through StateDependence or \
             run_protocol_with_options; see docs/dag.md)"
        );
        let pool = resolve_pool(&options);
        let max_inflight = if options.max_inflight_groups == 0 {
            pool.threads() + 2
        } else {
            options.max_inflight_groups
        }
        .max(1);
        let shared = Arc::new(StreamShared {
            inner: Mutex::new(StreamInner {
                queue: VecDeque::new(),
                closed: false,
                completions: Vec::new(),
                panic: None,
                lost: Vec::new(),
                coordinator_gone: false,
                gone_message: None,
            }),
            producer: Condvar::new(),
            coordinator: Condvar::new(),
            capacity: options.queue_capacity.max(1),
        });
        let ctx = Arc::new(EngineCtx {
            transition,
            config: Arc::new(options.config.clone()),
            sink: Arc::clone(&options.sink),
            faults: options.faults,
            retry: options.retry,
            priority: options.priority,
        });
        let thread_shared = Arc::clone(&shared);
        let handle = thread::Builder::new()
            .name("stats-stream".into())
            .spawn(move || {
                let _guard = CoordinatorGuard {
                    shared: Arc::clone(&thread_shared),
                };
                match std::panic::catch_unwind(AssertUnwindSafe(|| {
                    stream_main(&thread_shared, &ctx, &pool, &options, initial, max_inflight)
                })) {
                    Ok(result) => result,
                    Err(payload) => {
                        // Record the pending panic message *before* the
                        // guard raises `coordinator_gone`, so a producer
                        // failing its `try_push` can report the cause.
                        let mut inner = thread_shared.inner.lock();
                        if inner.gone_message.is_none() {
                            inner.gone_message = Some(panic_message(&*payload));
                        }
                        drop(inner);
                        std::panic::resume_unwind(payload);
                    }
                }
            })
            .expect("failed to spawn stream coordinator");
        Session {
            shared,
            handle: Some(handle),
        }
    }

    /// Enqueue one input. Blocks while the bounded queue is full
    /// (backpressure) until the engine drains it.
    ///
    /// This is a thin panicking wrapper over [`Session::try_push`] for
    /// callers that treat a dead stream as a programming error; a
    /// tenant-facing front door should call `try_push` instead.
    ///
    /// # Panics
    ///
    /// Panics if the coordinator thread has terminated (which only happens
    /// when a transition panicked; the payload is re-raised at `finish()`
    /// or drop).
    pub fn push(&self, input: T::Input) {
        if let Err(e) = self.try_push(input) {
            panic!("{e}; cannot accept inputs");
        }
    }

    /// Enqueue one input, blocking while the bounded queue is full
    /// (backpressure), and failing — never panicking — once the
    /// coordinator thread has terminated. A producer already blocked on a
    /// full queue when the coordinator dies is woken by the coordinator's
    /// exit guard and receives the error instead of hanging.
    ///
    /// The returned [`PushError`] carries the message of the pending panic
    /// that killed the coordinator (the payload itself stays with the
    /// session and is re-raised or reported at
    /// [`finish`](Session::finish)/[`try_finish`](Session::try_finish)).
    pub fn try_push(&self, input: T::Input) -> Result<(), PushError> {
        let mut inner = self.shared.inner.lock();
        loop {
            if inner.coordinator_gone {
                return Err(PushError::coordinator_gone(&inner));
            }
            if inner.queue.len() < self.shared.capacity {
                break;
            }
            self.shared.producer.wait(&mut inner);
        }
        inner.queue.push_back(input);
        drop(inner);
        self.shared.coordinator.notify_all();
        Ok(())
    }

    /// Nonblocking push: `Ok(None)` means the input was enqueued,
    /// `Ok(Some(input))` returns it because the queue is full right now
    /// (try again after the engine drains), and `Err` means the
    /// coordinator has terminated and can never accept it. This is the
    /// primitive the [`serve`](crate::serve) dispatcher multiplexes
    /// tenants with: it must never park on one tenant's full queue while
    /// other tenants have admission budget.
    pub fn offer(&self, input: T::Input) -> Result<Option<T::Input>, PushError> {
        let mut inner = self.shared.inner.lock();
        if inner.coordinator_gone {
            return Err(PushError::coordinator_gone(&inner));
        }
        if inner.queue.len() >= self.shared.capacity {
            return Ok(Some(input));
        }
        inner.queue.push_back(input);
        drop(inner);
        self.shared.coordinator.notify_all();
        Ok(None)
    }

    /// How many inputs are currently waiting in the bounded queue.
    pub fn queued(&self) -> usize {
        self.shared.inner.lock().queue.len()
    }

    /// Enqueue a batch of inputs, blocking as needed (panicking wrapper
    /// over [`Session::try_push_batch`], like [`push`](Session::push)).
    pub fn push_batch(&self, inputs: impl IntoIterator<Item = T::Input>) {
        if let Err(e) = self.try_push_batch(inputs) {
            panic!("{e}; cannot accept inputs");
        }
    }

    /// Enqueue a batch through the bounded queue in capacity-sized chunks:
    /// one lock acquisition and one coordinator notification per *chunk*
    /// instead of per input (the `push_batch` Criterion bench measures the
    /// lock-churn win). Blocks whenever the queue is full mid-batch;
    /// returns how many inputs were enqueued, which is all of them unless
    /// the coordinator terminated partway (the error reports the pending
    /// panic like [`try_push`](Session::try_push)).
    pub fn try_push_batch(
        &self,
        inputs: impl IntoIterator<Item = T::Input>,
    ) -> Result<usize, PushError> {
        let mut iter = inputs.into_iter();
        let mut next = match iter.next() {
            Some(input) => Some(input),
            None => return Ok(0),
        };
        let mut pushed = 0usize;
        loop {
            let mut inner = self.shared.inner.lock();
            loop {
                if inner.coordinator_gone {
                    return Err(PushError::coordinator_gone(&inner));
                }
                if inner.queue.len() < self.shared.capacity {
                    break;
                }
                self.shared.producer.wait(&mut inner);
            }
            while inner.queue.len() < self.shared.capacity {
                let Some(input) = next.take() else { break };
                inner.queue.push_back(input);
                pushed += 1;
                next = iter.next();
            }
            drop(inner);
            self.shared.coordinator.notify_all();
            if next.is_none() {
                return Ok(pushed);
            }
        }
    }

    /// Close the stream, wait for every pushed input to be correctly
    /// processed, and return the outcome.
    ///
    /// # Panics
    ///
    /// Re-raises any panic of the transition on the caller's thread. Use
    /// [`Session::try_finish`] to receive the failure as a
    /// [`SessionError`] instead.
    pub fn finish(mut self) -> SpecOutcome<T> {
        match self.try_finish() {
            Ok(outcome) => outcome,
            Err(SessionError::Panicked { payload, .. }) => std::panic::resume_unwind(payload),
            // `finish` consumes the session, so it can only be the first
            // finishing call.
            Err(SessionError::AlreadyFinished) => unreachable!("finish consumes the session"),
        }
    }

    /// Close the stream and return the outcome, reporting a coordinator
    /// panic as a [`SessionError`] instead of re-raising it.
    ///
    /// Idempotent: every call after the first — whether the first
    /// succeeded or failed — returns [`SessionError::AlreadyFinished`],
    /// and dropping an already-finished session is silent even after a
    /// panic (the payload was handed to the first caller).
    pub fn try_finish(&mut self) -> Result<SpecOutcome<T>, SessionError> {
        let Some(handle) = self.handle.take() else {
            return Err(SessionError::AlreadyFinished);
        };
        self.close();
        match handle.join() {
            Ok(result) => Ok(result.into()),
            Err(payload) => Err(SessionError::Panicked {
                message: panic_message(&*payload),
                payload,
            }),
        }
    }

    fn close(&self) {
        let mut inner = self.shared.inner.lock();
        inner.closed = true;
        drop(inner);
        self.shared.coordinator.notify_all();
    }
}

/// Why a [`Session::try_push`]/[`Session::try_push_batch`] (or a
/// nonblocking [`Session::offer`]) could not accept an input.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PushError {
    /// The `stats-stream` coordinator thread has terminated, so no input
    /// pushed from now on can ever be processed.
    CoordinatorGone {
        /// Message of the pending panic that killed the coordinator, when
        /// one was recorded (a transition panic); `None` when the
        /// coordinator exited without panicking.
        pending_panic: Option<String>,
    },
}

impl PushError {
    fn coordinator_gone<T: StateTransition>(inner: &StreamInner<T>) -> Self {
        PushError::CoordinatorGone {
            pending_panic: inner.gone_message.clone(),
        }
    }

    /// The pending panic message carried by the error, if any.
    pub fn pending_panic(&self) -> Option<&str> {
        match self {
            PushError::CoordinatorGone { pending_panic } => pending_panic.as_deref(),
        }
    }
}

impl fmt::Display for PushError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PushError::CoordinatorGone { pending_panic } => {
                write!(f, "Session coordinator has terminated")?;
                if let Some(message) = pending_panic {
                    write!(f, " (pending panic: {message})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PushError {}

/// Why a [`Session`] failed to finish.
pub enum SessionError {
    /// The coordinator thread panicked (a transition panicked on the
    /// coordinator or a pool worker). The original payload is preserved so
    /// callers can re-raise it with `std::panic::resume_unwind`.
    Panicked {
        /// Human-readable panic message extracted from the payload.
        message: String,
        /// The original panic payload.
        payload: Box<dyn Any + Send>,
    },
    /// The session was already finished by an earlier
    /// [`Session::finish`]/[`Session::try_finish`] call.
    AlreadyFinished,
}

impl fmt::Debug for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Panicked { message, .. } => f
                .debug_struct("Panicked")
                .field("message", message)
                .finish(),
            SessionError::AlreadyFinished => f.write_str("AlreadyFinished"),
        }
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Panicked { message, .. } => {
                write!(f, "stream coordinator panicked: {message}")
            }
            SessionError::AlreadyFinished => f.write_str("session was already finished"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Best-effort human-readable text from a panic payload.
///
/// `panic!("...")` payloads are `&str`/`String` and pass through verbatim.
/// `panic_any(value)` payloads are typed: `dyn Any` erases the concrete
/// type *name*, so this downcasts the payload shapes tenant transitions
/// actually throw (error trait objects and `Display`-able scalars), naming
/// each via `type_name` and rendering its value. Anything else falls back
/// to the payload's `TypeId` — opaque, but a stable correlator across a
/// server log, unlike the old blanket "non-string panic payload".
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        return (*s).to_string();
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.clone();
    }
    macro_rules! typed {
        ($($ty:ty),+ $(,)?) => {
            $(if let Some(v) = payload.downcast_ref::<$ty>() {
                return format!(
                    "typed panic payload {}: {v}",
                    std::any::type_name::<$ty>()
                );
            })+
        };
    }
    typed!(
        Box<dyn std::error::Error + Send + Sync>,
        Box<dyn std::error::Error + Send>,
        std::io::Error,
        std::borrow::Cow<'static, str>,
        i8,
        i16,
        i32,
        i64,
        i128,
        isize,
        u8,
        u16,
        u32,
        u64,
        u128,
        usize,
        f32,
        f64,
        bool,
        char,
    );
    format!("non-string panic payload ({:?})", payload.type_id())
}

/// Dropping a session mid-stream must drain and join cleanly — no leaked
/// `stats-stream` coordinator thread, mirroring `StateDependence`'s
/// Drop-join — and must not swallow transition panics: they re-raise here
/// unless the drop is itself part of a panic unwind.
impl<T: StateTransition> Drop for Session<T> {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.close();
            if let Err(payload) = handle.join() {
                if !thread::panicking() {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

/// Marks the coordinator as gone on any exit path, so producers blocked on
/// a full queue wake up and fail instead of hanging.
struct CoordinatorGuard<T: StateTransition> {
    shared: Arc<StreamShared<T>>,
}

impl<T: StateTransition> Drop for CoordinatorGuard<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock();
        inner.coordinator_gone = true;
        drop(inner);
        self.shared.producer.notify_all();
    }
}

/// Coordinator entry point: one un-segmented run, or one run per segment
/// with committed state carried across (same semantics as the batch
/// segmented path, same seed derivation per segment).
///
/// When [`RunOptions::adapt`] is set, each segment's configuration comes
/// from the [`AdaptiveController`], which watches the same per-segment
/// abort outcome the event stream reports and walks the degradation ladder
/// (`docs/robustness.md`). Adaptation is segment-granular because the
/// resolver assumes one group cardinality per run; without an explicit
/// `segment`, an adaptive session defaults to four groups per segment.
///
/// When [`RunOptions::retune`] is set, the installed [`Retuner`] observes
/// each finished segment's telemetry and may re-pick the base operating
/// point (group cardinality, auxiliary window, re-execution budget) for
/// the rest of the stream; every applied decision is emitted as
/// [`EventKind::Retune`] and restarts the degradation ladder from the new
/// base (`docs/tuning.md`). The segment *length* stays fixed at its
/// stream-start value so segment boundaries — and therefore per-segment
/// seeds and fault sites — never depend on tuning decisions, which is what
/// keeps tuned runs replayable (`docs/replay.md`).
fn stream_main<T: StateTransition>(
    shared: &Arc<StreamShared<T>>,
    ctx: &Arc<EngineCtx<T>>,
    pool: &Arc<ThreadPool>,
    options: &RunOptions,
    initial: T::State,
    max_inflight: usize,
) -> ProtocolResult<T> {
    let mut base = Arc::clone(&ctx.config);
    let mut controller = options
        .adapt
        .map(|policy| AdaptiveController::new(policy, &base));
    let retuner = options.retune.as_ref();
    let segment = if let Some(s) = options.segment {
        Some(s.max(1))
    } else if controller.is_some() || retuner.is_some() {
        // Segment-granular control without an explicit segment length:
        // default to four groups per segment.
        Some(base.group_size.max(1) * 4)
    } else {
        None
    };
    match segment {
        None => stream_segment(
            shared,
            ctx,
            pool,
            options.seed,
            &initial,
            usize::MAX,
            max_inflight,
            &base,
        ),
        Some(segment) => {
            let mut acc: SegmentAccumulator<T> = SegmentAccumulator::new(initial);
            let mut seg_idx = 0u64;
            while wait_for_input(shared) {
                let seg_config = match &controller {
                    Some(c) => Arc::new(c.apply(&base)),
                    None => Arc::clone(&base),
                };
                let seg_initial = acc.state().clone();
                let r = stream_segment(
                    shared,
                    ctx,
                    pool,
                    options.seed ^ seg_idx << 32,
                    &seg_initial,
                    segment,
                    max_inflight,
                    &seg_config,
                );
                let aborted = r.report.aborted;
                let stats = SegmentStats {
                    segment: seg_idx,
                    inputs: r.outputs.len(),
                    aborted,
                    reexecutions: r.report.reexecutions,
                    validations: r.report.validations,
                    committed_original_work: r.report.committed_original_work,
                    committed_aux_work: r.report.committed_aux_work,
                    squashed_work: r.report.squashed_work,
                    group_size: seg_config.group_size,
                    window: seg_config.window,
                    max_reexec: seg_config.max_reexec,
                };
                acc.absorb(r);
                seg_idx += 1;
                if let Some(c) = controller.as_mut() {
                    if let Some((state, group_size)) = c.observe_segment(aborted) {
                        if ctx.sink.enabled() {
                            ctx.sink
                                .emit(EventKind::AdaptTransition { state, group_size });
                        }
                    }
                }
                if let Some(rt) = retuner {
                    let decision = {
                        let mut rt = rt.lock().unwrap_or_else(|e| e.into_inner());
                        rt.observe(&stats);
                        rt.decide(seg_idx)
                    };
                    if let Some(d) = decision {
                        base = Arc::new(SpecConfig {
                            group_size: d.group_size.max(1),
                            window: d.window,
                            max_reexec: d.max_reexec,
                            ..(*base).clone()
                        });
                        // The degradation ladder restarts from the re-tuned
                        // base: its shrink/grow targets are relative to the
                        // base group size, which just moved.
                        if let Some(policy) = options.adapt {
                            controller = Some(AdaptiveController::new(policy, &base));
                        }
                        if ctx.sink.enabled() {
                            ctx.sink.emit(EventKind::Retune {
                                segment: seg_idx,
                                group_size: base.group_size,
                                window: base.window,
                                max_reexec: base.max_reexec,
                            });
                        }
                    }
                }
            }
            acc.finish()
        }
    }
}

/// Block until at least one input is queued (true) or the stream is closed
/// with nothing left (false).
fn wait_for_input<T: StateTransition>(shared: &StreamShared<T>) -> bool {
    let mut inner = shared.inner.lock();
    loop {
        if !inner.queue.is_empty() {
            return true;
        }
        if inner.closed {
            return false;
        }
        shared.coordinator.wait(&mut inner);
    }
}

/// Run one stream (or one segment of it, `limit` inputs at most): consume
/// admitted inputs, execute group 0 inline on the coordinator, dispatch
/// later groups to the pool as soon as their inputs are complete, and feed
/// finished groups — strictly in order — into the shared [`Resolver`].
#[allow(clippy::too_many_arguments)] // one parameter per execution-model knob
fn stream_segment<T: StateTransition>(
    shared: &Arc<StreamShared<T>>,
    ctx: &Arc<EngineCtx<T>>,
    pool: &Arc<ThreadPool>,
    seed: u64,
    initial: &T::State,
    limit: usize,
    max_inflight: usize,
    config_arc: &Arc<SpecConfig>,
) -> ProtocolResult<T> {
    let config: &SpecConfig = config_arc;
    let sink: &dyn EventSink = &*ctx.sink;
    // Group cardinality while the input count is unknown: with speculation
    // on, every full `group_size` block becomes a group; the cases where
    // the batch path would collapse to a single group (n <= group_size, or
    // speculation off) fall out naturally because no second group ever
    // forms before the stream closes.
    let group_cap = if config.speculate && config.group_size > 1 {
        Some(config.group_size)
    } else {
        None
    };
    let g_eff = group_cap.unwrap_or(usize::MAX);
    let mut resolver: Resolver<T> = Resolver::new(
        &ctx.transition,
        config,
        seed,
        sink,
        g_eff,
        ctx.faults.as_ref(),
    );

    let mut inputs: Vec<T::Input> = Vec::new();
    let mut consumed = 0usize; // inputs taken off the queue this segment
    let mut intake_done = false;
    let mut run_started = false;

    // Group 0 runs inline on the coordinator thread: it starts from the
    // known initial state, needs no auxiliary code, and computing it here
    // is what makes the bounded queue back-pressure producers.
    let mut g0_state = initial.clone();
    let mut g0_checkpoint = initial.clone();
    let mut g0_outputs: Vec<T::Output> = Vec::new();
    let mut g0_works = Vec::new();
    let mut g0_done = false;
    let g0_checkpoint_at = group_cap.map(|gs| gs - config.rollback.clamp(1, gs));

    let mut dispatched = 1usize; // next speculative group to hand to the pool
    let mut ingested = 0usize; // groups handed to the resolver so far
    let mut pending: BTreeMap<usize, GroupData<T>> = BTreeMap::new();
    let mut total_groups: Option<usize> = None;
    // Retry bookkeeping for groups lost to injected worker panics.
    let mut retries: BTreeMap<usize, u32> = BTreeMap::new();
    let mut ranges: BTreeMap<usize, (usize, usize)> = BTreeMap::new();

    let dispatch_group =
        |k: usize, start: usize, end: usize, attempt: u32, all_inputs: &[T::Input]| {
            let w_start = start.saturating_sub(config.window);
            let slice: Vec<T::Input> = all_inputs[w_start..end].to_vec();
            let spec = GroupSpec {
                k,
                start,
                end,
                speculative: true,
            };
            let job_ctx = Arc::clone(ctx);
            let job_config = Arc::clone(config_arc);
            let job_shared = Arc::clone(shared);
            let job_initial = initial.clone();
            pool.execute_with_priority(ctx.priority, move || {
                // Injected worker panic: the job dies without producing its
                // group. The loss is routed to the coordinator through the
                // same completion channel, which retries under the
                // RetryPolicy; the global panic hook is deliberately not
                // tripped for injected (as opposed to real) failures.
                if let Some(plan) = &job_ctx.faults {
                    if plan.fires(FaultKind::WorkerPanic, seed, k as u64, attempt) {
                        if job_ctx.sink.enabled() {
                            job_ctx.sink.emit(EventKind::FaultInjected {
                                kind: FaultKind::WorkerPanic,
                                site: k,
                                attempt: attempt as usize,
                            });
                        }
                        let mut inner = job_shared.inner.lock();
                        inner.lost.push(InjectedFault { group: k, attempt });
                        drop(inner);
                        job_shared.coordinator.notify_all();
                        return;
                    }
                }
                // `ThreadPool::execute` jobs are not panic-isolated (a panic
                // kills the worker): catch here and hand the payload to the
                // coordinator, which re-raises it on the session owner.
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    execute_group(
                        &job_ctx.transition,
                        &slice,
                        w_start,
                        &job_initial,
                        &job_config,
                        seed,
                        spec,
                        &*job_ctx.sink,
                        job_ctx.faults.as_ref(),
                    )
                }));
                let mut inner = job_shared.inner.lock();
                match outcome {
                    Ok(data) => inner.completions.push((k, data)),
                    Err(payload) => {
                        if inner.panic.is_none() {
                            inner.panic = Some(payload);
                        }
                    }
                }
                drop(inner);
                job_shared.coordinator.notify_all();
            });
        };

    loop {
        if total_groups.is_some_and(|total| ingested >= total) {
            break;
        }

        // ---- Pull admitted inputs and finished groups under the lock,
        // blocking until something actionable arrives.
        let mut fresh: Vec<T::Input> = Vec::new();
        let mut stalls: Vec<(usize, Duration)> = Vec::new();
        let mut lost: Vec<InjectedFault> = Vec::new();
        {
            let mut inner = shared.inner.lock();
            loop {
                if let Some(payload) = inner.panic.take() {
                    drop(inner);
                    std::panic::resume_unwind(payload);
                }
                let mut actionable = false;
                // Admit inputs only a bounded number of groups past the
                // resolved prefix, so an unbounded stream cannot pile up
                // unresolved speculative groups.
                while !intake_done && consumed < limit {
                    let next_index = inputs.len() + fresh.len();
                    let group_of_next = group_cap.map_or(0, |gs| next_index / gs);
                    if group_of_next >= resolver.settled_groups() + max_inflight {
                        break;
                    }
                    match inner.queue.pop_front() {
                        Some(item) => {
                            if let Some(plan) = &ctx.faults {
                                if let Some(d) =
                                    plan.delay(FaultKind::QueueStall, seed, next_index as u64)
                                {
                                    stalls.push((next_index, d));
                                }
                            }
                            fresh.push(item);
                            consumed += 1;
                            actionable = true;
                        }
                        None => break,
                    }
                }
                if actionable {
                    shared.producer.notify_all();
                }
                if !inner.completions.is_empty() {
                    for (k, data) in inner.completions.drain(..) {
                        pending.insert(k, data);
                    }
                    actionable = true;
                }
                if !inner.lost.is_empty() {
                    lost.append(&mut inner.lost);
                    actionable = true;
                }
                if !intake_done && (consumed == limit || (inner.closed && inner.queue.is_empty())) {
                    intake_done = true;
                    actionable = true;
                }
                if actionable {
                    break;
                }
                shared.coordinator.wait(&mut inner);
            }
        }

        // ---- Injected queue stalls: the coordinator sleeps outside the
        // lock (producers keep filling the freed queue space meanwhile).
        for (site, delay) in stalls {
            if sink.enabled() {
                sink.emit(EventKind::FaultInjected {
                    kind: FaultKind::QueueStall,
                    site,
                    attempt: 0,
                });
            }
            thread::sleep(delay);
        }

        // ---- Groups lost to injected worker panics: re-dispatch with
        // backoff while the retry budget lasts, then degrade gracefully by
        // executing the group inline on the coordinator (never subject to
        // worker faults), so a lost group can never wedge the stream.
        for fault in lost {
            let attempt = retries.entry(fault.group).or_insert(0);
            *attempt += 1;
            let attempt = *attempt;
            let (start, end) = ranges[&fault.group];
            if attempt <= ctx.retry.max_retries {
                thread::sleep(ctx.retry.delay_for(attempt - 1));
                if sink.enabled() {
                    sink.emit(EventKind::GroupRetry {
                        group: fault.group,
                        attempt: attempt as usize,
                    });
                }
                dispatch_group(fault.group, start, end, attempt, &inputs);
            } else {
                let data = execute_group(
                    &ctx.transition,
                    &inputs,
                    0,
                    initial,
                    config,
                    seed,
                    GroupSpec {
                        k: fault.group,
                        start,
                        end,
                        speculative: true,
                    },
                    sink,
                    ctx.faults.as_ref(),
                );
                pending.insert(fault.group, data);
            }
        }

        // ---- Run the inline group 0 (and, after an abort, the sequential
        // tail) over the freshly admitted inputs.
        for item in fresh {
            let i = inputs.len();
            inputs.push(item);
            if !run_started {
                run_started = true;
                if sink.enabled() {
                    // Input and group counts are unknown for an open
                    // stream; a streamed RunStart reports zeros.
                    sink.emit(EventKind::RunStart {
                        inputs: 0,
                        groups: 0,
                    });
                }
            }
            if resolver.aborted() {
                continue; // swept into process_tail below
            }
            if !g0_done && group_cap.is_none_or(|gs| i < gs) {
                if g0_checkpoint_at == Some(i) {
                    g0_checkpoint = g0_state.clone();
                }
                let (out, m) = run_invocation(
                    &ctx.transition,
                    &inputs[i],
                    &mut g0_state,
                    seed,
                    0,
                    i as u64,
                    0,
                    &config.orig_bindings,
                    false,
                );
                g0_outputs.push(out);
                g0_works.push(m);
                if group_cap == Some(i + 1) {
                    // Group 0 is exactly full: seal it so validation of
                    // group 1 can proceed without waiting for the close.
                    pending.insert(
                        0,
                        seal_group0(
                            i + 1,
                            &g0_checkpoint,
                            &g0_state,
                            std::mem::take(&mut g0_outputs),
                            std::mem::take(&mut g0_works),
                            sink,
                        ),
                    );
                    g0_done = true;
                }
            }
        }
        if resolver.aborted() {
            resolver.process_tail(&inputs);
        }

        // ---- Dispatch every speculative group whose inputs are complete.
        if let Some(gs) = group_cap {
            while (dispatched + 1) * gs <= inputs.len() {
                ranges.insert(dispatched, (dispatched * gs, (dispatched + 1) * gs));
                dispatch_group(
                    dispatched,
                    dispatched * gs,
                    (dispatched + 1) * gs,
                    0,
                    &inputs,
                );
                dispatched += 1;
            }
        }

        // ---- On intake completion, seal the partial group 0 and dispatch
        // the final (possibly partial) speculative group.
        if intake_done && total_groups.is_none() {
            let n = inputs.len();
            if n == 0 {
                total_groups = Some(0);
            } else {
                if !g0_done {
                    pending.insert(
                        0,
                        seal_group0(
                            n.min(g_eff),
                            &g0_checkpoint,
                            &g0_state,
                            std::mem::take(&mut g0_outputs),
                            std::mem::take(&mut g0_works),
                            sink,
                        ),
                    );
                    g0_done = true;
                }
                total_groups = Some(match group_cap {
                    Some(gs) if n > gs => {
                        if dispatched * gs < n {
                            ranges.insert(dispatched, (dispatched * gs, n));
                            dispatch_group(dispatched, dispatched * gs, n, 0, &inputs);
                            dispatched += 1;
                        }
                        n.div_ceil(gs)
                    }
                    _ => 1,
                });
            }
        }

        // ---- Feed finished groups to the resolver, strictly in order.
        while let Some(data) = pending.remove(&ingested) {
            resolver.ingest(data, &inputs);
            ingested += 1;
        }
    }

    if inputs.is_empty() {
        return ProtocolResult {
            outputs: Vec::new(),
            final_state: initial.clone(),
            report: SpecReport::default(),
            trace: SpecTrace::default(),
        };
    }
    let result = resolver.finish(initial);
    if sink.enabled() {
        sink.emit(EventKind::RunEnd);
    }
    result
}

/// Package the coordinator-executed group 0 as [`GroupData`], emitting the
/// GroupStart/GroupEnd pair. The batch path emits GroupStart before running
/// the group; a stream cannot know `end` until the group is complete, so
/// both events are emitted at seal time (see docs/streaming.md).
fn seal_group0<T: StateTransition>(
    end: usize,
    checkpoint: &T::State,
    final_state: &T::State,
    outputs: Vec<T::Output>,
    works: Vec<crate::ctx::WorkMeter>,
    sink: &dyn EventSink,
) -> GroupData<T> {
    if sink.enabled() {
        sink.emit(EventKind::GroupStart {
            group: 0,
            start: 0,
            end,
            speculative: false,
        });
        sink.emit(EventKind::GroupEnd { group: 0 });
    }
    GroupData {
        spec: GroupSpec {
            k: 0,
            start: 0,
            end,
            speculative: false,
        },
        aux_work: None,
        spec_start: None,
        checkpoint: checkpoint.clone(),
        final_state: final_state.clone(),
        outputs,
        works,
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use super::*;
    use crate::ctx::InvocationCtx;
    use crate::protocol::run_protocol;
    use crate::sdi::{ExactState, SpecState};
    use crate::sync::atomic::{AtomicUsize, Ordering};

    #[derive(Clone, Debug)]
    struct Noisy(f64);
    impl SpecState for Noisy {
        fn matches_any(&self, originals: &[Self]) -> bool {
            originals.iter().any(|o| (o.0 - self.0).abs() < 0.5)
        }
    }

    struct NoisyLast;
    impl StateTransition for NoisyLast {
        type Input = f64;
        type State = Noisy;
        type Output = f64;
        fn compute_output(&self, input: &f64, state: &mut Noisy, ctx: &mut InvocationCtx) -> f64 {
            ctx.charge(5.0);
            state.0 = *input + ctx.uniform(-0.1, 0.1);
            state.0
        }
    }

    fn config() -> SpecConfig {
        SpecConfig {
            group_size: 4,
            window: 1,
            max_reexec: 2,
            rollback: 1,
            ..SpecConfig::default()
        }
    }

    fn options(seed: u64) -> RunOptions {
        RunOptions::default()
            .pool(Arc::new(ThreadPool::new(2)))
            .config(config())
            .seed(seed)
    }

    #[test]
    fn streamed_matches_batch_reference() {
        let inputs: Vec<f64> = (0..26).map(f64::from).collect();
        for seed in [0u64, 3, 11] {
            let reference = run_protocol(&NoisyLast, &inputs, &Noisy(0.0), &config(), seed);
            let session = Session::new(Noisy(0.0), NoisyLast, options(seed));
            session.push_batch(inputs.clone());
            let outcome = session.finish();
            assert_eq!(outcome.outputs, reference.outputs, "seed {seed}");
            assert_eq!(outcome.report, reference.report, "seed {seed}");
            assert_eq!(outcome.trace, reference.trace, "seed {seed}");
        }
    }

    #[test]
    fn empty_session_returns_initial_state() {
        let session = Session::new(Noisy(7.5), NoisyLast, options(0));
        let outcome = session.finish();
        assert!(outcome.outputs.is_empty());
        assert!((outcome.final_state.0 - 7.5).abs() < f64::EPSILON);
        assert!(outcome.trace.nodes.is_empty());
    }

    /// A transition that blocks on a gate until released, so tests can pin
    /// the stream mid-group.
    struct Gated {
        entered: Arc<AtomicUsize>,
        gate: Arc<(Mutex<bool>, Condvar)>,
    }
    impl StateTransition for Gated {
        type Input = u64;
        type State = ExactState<u64>;
        type Output = u64;
        fn compute_output(
            &self,
            input: &u64,
            state: &mut ExactState<u64>,
            ctx: &mut InvocationCtx,
        ) -> u64 {
            self.entered.fetch_add(1, Ordering::SeqCst);
            let (lock, cvar) = &*self.gate;
            let mut open = lock.lock();
            while !*open {
                cvar.wait(&mut open);
            }
            ctx.charge(1.0);
            state.0 = state.0.wrapping_add(*input);
            state.0
        }
    }

    #[test]
    fn full_queue_blocks_producer_instead_of_growing() {
        let capacity = 3usize;
        let entered = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let session = Session::new(
            ExactState(0u64),
            Gated {
                entered: Arc::clone(&entered),
                gate: Arc::clone(&gate),
            },
            RunOptions::default()
                .pool(Arc::new(ThreadPool::new(1)))
                .config(config())
                .queue_capacity(capacity),
        );
        // The coordinator consumes the first input and blocks inside the
        // gated transition; wait until it is provably inside.
        session.push(1);
        while entered.load(Ordering::SeqCst) == 0 {
            thread::yield_now();
        }
        // A producer can now enqueue at most `capacity` more inputs before
        // blocking. Count successful pushes from a helper thread.
        let pushed = Arc::new(AtomicUsize::new(0));
        let producer = {
            let pushed = Arc::clone(&pushed);
            let session = Arc::new(session);
            let handle_session = Arc::clone(&session);
            let handle = thread::spawn(move || {
                for i in 2..=20u64 {
                    handle_session.push(i);
                    pushed.fetch_add(1, Ordering::SeqCst);
                }
            });
            (handle, session)
        };
        let (handle, session) = producer;
        // Give the producer ample time to push as far as it can.
        thread::sleep(Duration::from_millis(200));
        let stalled_at = pushed.load(Ordering::SeqCst);
        assert!(
            stalled_at <= capacity + 1,
            "producer pushed {stalled_at} inputs past a full queue of {capacity}"
        );
        // Open the gate: the stream drains and every push goes through.
        *gate.0.lock() = true;
        gate.1.notify_all();
        handle.join().expect("producer");
        assert_eq!(pushed.load(Ordering::SeqCst), 19);
        let session = Arc::try_unwrap(session).unwrap_or_else(|_| panic!("session still shared"));
        let outcome = session.finish();
        assert_eq!(outcome.outputs.len(), 20);
    }

    /// A transition holding a sentinel `Arc`: once the coordinator thread
    /// (which owns the engine context) has terminated, the count drops.
    struct SentinelLast(#[allow(dead_code)] Arc<()>);
    impl StateTransition for SentinelLast {
        type Input = f64;
        type State = Noisy;
        type Output = f64;
        fn compute_output(&self, input: &f64, state: &mut Noisy, ctx: &mut InvocationCtx) -> f64 {
            ctx.charge(5.0);
            state.0 = *input + ctx.uniform(-0.1, 0.1);
            state.0
        }
    }

    #[test]
    fn dropping_session_mid_stream_drains_and_joins() {
        // The Session counterpart of the StateDependence Drop-join fix:
        // dropping with inputs still queued (mid-group) must drain the
        // stream and join the coordinator, leaking nothing.
        let sentinel = Arc::new(());
        {
            let session = Session::new(Noisy(0.0), SentinelLast(Arc::clone(&sentinel)), options(5));
            session.push_batch((0..13).map(f64::from));
            // Dropped here without finish().
        }
        assert_eq!(
            Arc::strong_count(&sentinel),
            1,
            "stream coordinator still holds the engine context"
        );
    }

    /// A transition that panics on a specific input index.
    struct Exploding;
    impl StateTransition for Exploding {
        type Input = f64;
        type State = Noisy;
        type Output = f64;
        fn compute_output(&self, input: &f64, _: &mut Noisy, ctx: &mut InvocationCtx) -> f64 {
            ctx.charge(1.0);
            if *input >= 6.0 {
                panic!("transition exploded");
            }
            *input
        }
    }

    #[test]
    #[should_panic(expected = "transition exploded")]
    fn finish_propagates_worker_panics() {
        // Input 6 lands in a pool-executed speculative group; the panic
        // must cross worker -> coordinator -> owner.
        let session = Session::new(Noisy(0.0), Exploding, options(1));
        session.push_batch((0..12).map(f64::from));
        session.finish();
    }

    #[test]
    fn worker_panic_does_not_poison_shared_pool() {
        // A worker panic mid-speculative-group must surface at finish()
        // while leaving the shared pool healthy for subsequent runs.
        let pool = Arc::new(ThreadPool::new(2));
        let opts = |seed| {
            RunOptions::default()
                .pool(Arc::clone(&pool))
                .config(config())
                .seed(seed)
        };
        let mut bad = Session::new(Noisy(0.0), Exploding, opts(1));
        bad.push_batch((0..12).map(f64::from));
        let err = match bad.try_finish() {
            Err(e) => e,
            Ok(_) => panic!("worker panic must surface"),
        };
        assert!(err.to_string().contains("transition exploded"), "{err}");
        drop(bad); // silent: the payload was already handed over
        for seed in [0u64, 7, 13] {
            let good = Session::new(Noisy(0.0), NoisyLast, opts(seed));
            good.push_batch((0..16).map(f64::from));
            let outcome = good.finish();
            assert_eq!(outcome.outputs.len(), 16, "seed {seed}");
        }
    }

    #[test]
    fn try_finish_is_idempotent() {
        let mut session = Session::new(Noisy(0.0), NoisyLast, options(2));
        session.push_batch((0..8).map(f64::from));
        let first = session.try_finish().expect("clean run finishes");
        assert_eq!(first.outputs.len(), 8);
        assert!(matches!(
            session.try_finish(),
            Err(SessionError::AlreadyFinished)
        ));
        assert!(matches!(
            session.try_finish(),
            Err(SessionError::AlreadyFinished)
        ));
    }

    #[test]
    fn panicked_session_errors_once_then_reports_already_finished() {
        // The second call path after a coordinator panic is a proper
        // error, not a re-raise.
        let mut session = Session::new(Noisy(0.0), Exploding, options(1));
        session.push_batch((0..12).map(f64::from));
        let err = match session.try_finish() {
            Err(e) => e,
            Ok(_) => panic!("panic must surface as an error"),
        };
        assert!(matches!(err, SessionError::Panicked { .. }));
        assert!(matches!(
            session.try_finish(),
            Err(SessionError::AlreadyFinished)
        ));
    }

    #[test]
    fn streamed_sessions_reuse_one_pool() {
        let pool = Arc::new(ThreadPool::new(2));
        let opts = RunOptions::default()
            .pool(Arc::clone(&pool))
            .config(config())
            .seed(4);
        let inputs: Vec<f64> = (0..16).map(f64::from).collect();
        let a = Session::new(Noisy(0.0), NoisyLast, opts.clone());
        a.push_batch(inputs.clone());
        let oa = a.finish();
        let b = Session::new(Noisy(0.0), NoisyLast, opts);
        b.push_batch(inputs);
        let ob = b.finish();
        assert_eq!(oa.outputs, ob.outputs);
        assert_eq!(Arc::strong_count(&pool), 1, "sessions released the pool");
    }
}
