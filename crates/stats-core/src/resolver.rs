//! Incremental resolution of speculative groups.
//!
//! [`Resolver`] is the single implementation of the protocol's validation /
//! re-execution / commit / abort logic (paper §3.1), shared by the batch
//! entry points — which ingest every [`GroupData`] in one loop — and the
//! streaming [`Session`](crate::Session), which ingests groups as the pool
//! finishes them while later inputs are still arriving.
//!
//! Outputs, states, counters, and events are settled *eagerly* as each group
//! is ingested; the [`SpecTrace`] is laid out only at [`Resolver::finish`],
//! in the exact node order of the historical batch implementation (all
//! attempt-0 chains first, then per-group validation/re-execution nodes,
//! then the post-abort sequential tail). That deferred layout is what makes
//! a streamed run bit-identical — outputs, report, *and* trace — to the
//! batch run over the same inputs and seed.

use crate::ctx::WorkMeter;
use crate::faults::{FaultKind, FaultPlan};
use crate::obs::{EventKind, EventSink};
use crate::protocol::{
    run_invocation, GroupData, GroupRecord, GroupResolution, ProtocolResult, SpecConfig,
    SpecReport, SpecTrace, TraceNodeKind,
};
use crate::sdi::{SpecState, StateTransition};

/// Everything remembered about one ingested group's attempt-0 chain.
struct ChainRec {
    start: usize,
    end: usize,
    aux_work: Option<WorkMeter>,
    works: Vec<WorkMeter>,
    /// Trailing invocations squashed by a matched re-execution.
    tail_squashed: usize,
    /// Entire chain (including the auxiliary run) squashed by an abort.
    squashed_all: bool,
}

/// The states one group run handed over for later validation.
struct StateRec<T: StateTransition> {
    checkpoint: T::State,
    final_state: T::State,
    spec_start: Option<T::State>,
}

/// One re-execution of the previous group's tail.
struct AttemptRec {
    works: Vec<WorkMeter>,
    matched: bool,
}

/// Validation history of one speculative group.
struct ValRec {
    attempts: Vec<AttemptRec>,
    matched: bool,
}

/// Incremental validation/commit/abort engine. Groups are ingested strictly
/// in order; each ingest resolves as many groups as possible.
pub(crate) struct Resolver<'a, T: StateTransition> {
    transition: &'a T,
    config: &'a SpecConfig,
    run_seed: u64,
    sink: &'a dyn EventSink,
    /// Effective group size, for the post-abort `group_of` arithmetic.
    g: usize,
    /// Injected-fault plan: forces validation mismatches when set.
    faults: Option<&'a FaultPlan>,
    chains: Vec<ChainRec>,
    states: Vec<StateRec<T>>,
    vals: Vec<Option<ValRec>>,
    records: Vec<GroupRecord>,
    outputs: Vec<Option<T::Output>>,
    /// Number of groups fully settled (validated, or squashed by an abort).
    settled: usize,
    aborted: bool,
    abort_restart: usize,
    tail_next: usize,
    tail_state: Option<T::State>,
    tail_works: Vec<WorkMeter>,
    reexecutions: usize,
    validations: usize,
}

impl<'a, T: StateTransition> Resolver<'a, T> {
    pub(crate) fn new(
        transition: &'a T,
        config: &'a SpecConfig,
        run_seed: u64,
        sink: &'a dyn EventSink,
        g: usize,
        faults: Option<&'a FaultPlan>,
    ) -> Self {
        Resolver {
            transition,
            config,
            run_seed,
            sink,
            g,
            faults,
            chains: Vec::new(),
            states: Vec::new(),
            vals: Vec::new(),
            records: Vec::new(),
            outputs: Vec::new(),
            settled: 0,
            aborted: false,
            abort_restart: 0,
            tail_next: 0,
            tail_state: None,
            tail_works: Vec::new(),
            reexecutions: 0,
            validations: 0,
        }
    }

    /// Whether a speculative group failed validation and aborted the rest
    /// of the run into the sequential tail.
    pub(crate) fn aborted(&self) -> bool {
        self.aborted
    }

    /// Number of groups whose fate (commit / abort / tail) is decided. The
    /// streaming engine admits new inputs only a bounded number of groups
    /// past this point.
    pub(crate) fn settled_groups(&self) -> usize {
        self.settled
    }

    /// Hand the next group's execution data to the resolver (groups must
    /// arrive in order `0, 1, 2, ...`) and resolve as far as possible.
    pub(crate) fn ingest(&mut self, data: GroupData<T>, inputs: &[T::Input]) {
        let GroupData {
            spec,
            aux_work,
            spec_start,
            checkpoint,
            final_state,
            outputs: group_outputs,
            works,
        } = data;
        debug_assert_eq!(
            spec.k,
            self.chains.len(),
            "groups must be ingested in order"
        );
        if self.outputs.len() < spec.end {
            self.outputs.resize_with(spec.end, || None);
        }
        if self.aborted {
            // The group was doomed before its data arrived: the sequential
            // tail already owns its input range, so its outputs are dropped
            // and its whole chain is squashed work — exactly how the batch
            // path treats every group from the abort point on.
            self.chains.push(ChainRec {
                start: spec.start,
                end: spec.end,
                aux_work,
                works,
                tail_squashed: 0,
                squashed_all: true,
            });
            self.states.push(StateRec {
                checkpoint,
                final_state,
                spec_start: None,
            });
            self.vals.push(None);
            self.records.push(GroupRecord {
                start: spec.start,
                end: spec.end,
                resolution: GroupResolution::SequentialTail,
            });
            self.settled += 1;
            return;
        }
        for (off, out) in group_outputs.into_iter().enumerate() {
            self.outputs[spec.start + off] = Some(out);
        }
        self.chains.push(ChainRec {
            start: spec.start,
            end: spec.end,
            aux_work,
            works,
            tail_squashed: 0,
            squashed_all: false,
        });
        self.states.push(StateRec {
            checkpoint,
            final_state,
            spec_start,
        });
        self.vals.push(None);
        self.records.push(GroupRecord {
            start: spec.start,
            end: spec.end,
            resolution: if spec.speculative {
                GroupResolution::Committed { reexecutions: 0 } // provisional
            } else {
                GroupResolution::NonSpeculative
            },
        });
        while !self.aborted && self.settled < self.chains.len() {
            let k = self.settled;
            if k > 0 {
                self.validate(k, inputs);
            }
            self.settled = k + 1;
        }
        if self.aborted {
            self.settled = self.chains.len();
        }
    }

    /// Whether the fault plan forces validation attempt `attempt` of group
    /// `k` to report a mismatch even when the states matched; emits the
    /// [`EventKind::FaultInjected`] marker when it does.
    fn forced_mismatch(&self, k: usize, attempt: usize) -> bool {
        let Some(plan) = self.faults else {
            return false;
        };
        let fired = plan.fires(
            FaultKind::ValidationMismatch,
            self.run_seed,
            k as u64,
            attempt as u32,
        );
        if fired && self.sink.enabled() {
            self.sink.emit(EventKind::FaultInjected {
                kind: FaultKind::ValidationMismatch,
                site: k,
                attempt,
            });
        }
        fired
    }

    /// Validate speculative group `k` against the (growing) set of original
    /// final states of group `k - 1`, re-executing the previous group's
    /// tail up to the budget; on exhaustion, abort into the sequential tail.
    fn validate(&mut self, k: usize, inputs: &[T::Input]) {
        let config = self.config;
        let spec = self.states[k]
            .spec_start
            .take()
            .expect("speculative group has a start state");
        let prev_start = self.chains[k - 1].start;
        let prev_end = self.chains[k - 1].end;
        let rollback = config.rollback.clamp(1, prev_end - prev_start);

        // Attempt 0 — the common, all-matched path — compares against the
        // previous final state in place; `originals` (previous final state
        // first, then re-executed candidates, the slice shape `matches_any`
        // documents) is only materialized if a re-execution is needed.
        let mut originals: Vec<T::State> = Vec::new();
        self.validations += 1;
        let mut matched = spec.matches_any(std::slice::from_ref(&self.states[k - 1].final_state))
            && !self.forced_mismatch(k, 0);
        let mut attempts = 0usize;
        if self.sink.enabled() {
            self.sink.emit(EventKind::Validation {
                group: k,
                attempt: 0,
                matched,
            });
        }

        let mut rec = ValRec {
            attempts: Vec::new(),
            matched: false,
        };
        while !matched && attempts < config.max_reexec {
            if originals.is_empty() {
                originals.push(self.states[k - 1].final_state.clone());
            }
            attempts += 1;
            self.reexecutions += 1;
            if self.sink.enabled() {
                self.sink.emit(EventKind::Reexecution {
                    group: k - 1,
                    attempt: attempts,
                });
            }
            // Re-execute the previous group's last `rollback` inputs from
            // the checkpoint, with fresh PRVG streams.
            let mut state = self.states[k - 1].checkpoint.clone();
            let re_start = prev_end - rollback;
            let mut tail_outputs: Vec<T::Output> = Vec::with_capacity(rollback);
            let mut tail_works: Vec<WorkMeter> = Vec::with_capacity(rollback);
            for (off, input) in inputs[re_start..prev_end].iter().enumerate() {
                let (out, m) = run_invocation(
                    self.transition,
                    input,
                    &mut state,
                    self.run_seed,
                    (k - 1) as u64,
                    (re_start + off) as u64,
                    attempts as u64,
                    &config.orig_bindings,
                    false,
                );
                tail_outputs.push(out);
                tail_works.push(m);
            }
            originals.push(state);
            self.validations += 1;
            matched = spec.matches_any(&originals) && !self.forced_mismatch(k, attempts);
            if self.sink.enabled() {
                self.sink.emit(EventKind::Validation {
                    group: k,
                    attempt: attempts,
                    matched,
                });
            }
            if matched {
                // The matching original execution becomes official: its
                // tail outputs replace attempt 0's, whose nodes are
                // squashed at trace layout.
                for (off, out) in tail_outputs.into_iter().enumerate() {
                    self.outputs[re_start + off] = Some(out);
                }
                self.chains[k - 1].tail_squashed = rollback;
            }
            rec.attempts.push(AttemptRec {
                works: tail_works,
                matched,
            });
        }
        rec.matched = matched;
        self.vals[k] = Some(rec);

        if matched {
            self.records[k].resolution = GroupResolution::Committed {
                reexecutions: attempts,
            };
            if self.sink.enabled() {
                self.sink.emit(EventKind::GroupCommit {
                    group: k,
                    reexecutions: attempts,
                });
            }
        } else {
            self.aborted = true;
            if self.sink.enabled() {
                self.sink.emit(EventKind::GroupAbort { group: k });
            }
            // Squash every group from k on (outputs and work).
            for c in self.chains.iter_mut().skip(k) {
                c.squashed_all = true;
            }
            let restart = self.chains[k].start;
            for slot in self.outputs.iter_mut().skip(restart) {
                *slot = None;
            }
            for r in self.records.iter_mut().skip(k) {
                r.resolution = GroupResolution::SequentialTail;
            }
            if self.sink.enabled() {
                self.sink
                    .emit(EventKind::SequentialTailStart { index: restart });
            }
            self.abort_restart = restart;
            self.tail_next = restart;
            self.tail_state = Some(self.states[k - 1].final_state.clone());
            self.process_tail(inputs);
        }
    }

    /// After an abort, process every not-yet-consumed input sequentially
    /// (no speculation). The streaming engine calls this again whenever
    /// more inputs arrive; the batch path's inputs are all present at the
    /// time of the abort.
    pub(crate) fn process_tail(&mut self, inputs: &[T::Input]) {
        if !self.aborted {
            return;
        }
        let mut state = self.tail_state.take().expect("tail state present");
        while self.tail_next < inputs.len() {
            let i = self.tail_next;
            let (out, m) = run_invocation(
                self.transition,
                &inputs[i],
                &mut state,
                self.run_seed,
                (i / self.g) as u64,
                i as u64,
                // A fresh (re-)execution: distinct attempt number so its
                // PRVG streams differ from the squashed speculative run.
                (self.config.max_reexec + 1) as u64,
                &self.config.orig_bindings,
                false,
            );
            if self.outputs.len() <= i {
                self.outputs.resize_with(i + 1, || None);
            }
            self.outputs[i] = Some(out);
            self.tail_works.push(m);
            self.tail_next += 1;
        }
        self.tail_state = Some(state);
    }

    /// Lay out the canonical trace, settle accounting, and return the run's
    /// result. `initial` is only used for the degenerate zero-input run.
    pub(crate) fn finish(mut self, initial: &T::State) -> ProtocolResult<T> {
        debug_assert_eq!(
            self.settled,
            self.chains.len(),
            "unresolved groups at finish"
        );
        let config = self.config;
        let mut trace = SpecTrace::default();

        // Phase-1 layout: every group's attempt-0 chain (auxiliary node,
        // then the chained invocations), in group order.
        let mut chain_last: Vec<usize> = Vec::with_capacity(self.chains.len());
        let mut chain_aux: Vec<Option<usize>> = Vec::with_capacity(self.chains.len());
        for (k, c) in self.chains.iter().enumerate() {
            let mut deps: Vec<usize> = Vec::new();
            let mut aux = None;
            if let Some(aux_work) = c.aux_work {
                let idx = trace.push(TraceNodeKind::Auxiliary { group: k }, aux_work, vec![]);
                trace.nodes[idx].committed = !c.squashed_all;
                deps.push(idx);
                aux = Some(idx);
            }
            let len = c.works.len();
            let mut last = usize::MAX;
            for (off, &m) in c.works.iter().enumerate() {
                let node = trace.push(
                    TraceNodeKind::Invocation {
                        group: k,
                        index: c.start + off,
                        attempt: 0,
                        sequential_tail: false,
                    },
                    m,
                    deps,
                );
                trace.nodes[node].committed = !(c.squashed_all || off >= len - c.tail_squashed);
                deps = vec![node];
                last = node;
            }
            chain_last.push(last);
            chain_aux.push(aux);
        }

        // Phase-2 layout: per speculative group, the validation chain and
        // re-executed tails; after an abort, the sequential tail.
        let mut prev_commit_gate: Option<usize> = None;
        let val_work = WorkMeter {
            total: config.validation_cost,
            memory: 0.0,
        };
        for k in 1..self.chains.len() {
            let Some(rec) = &self.vals[k] else { break };
            let prev_start = self.chains[k - 1].start;
            let prev_end = self.chains[k - 1].end;
            let rollback = config.rollback.clamp(1, prev_end - prev_start);
            let re_start = prev_end - rollback;
            let mut val_deps = vec![
                chain_last[k - 1],
                chain_aux[k].expect("speculative group has an auxiliary node"),
            ];
            if let Some(gate) = prev_commit_gate {
                val_deps.push(gate);
            }
            let mut val_node = trace.push(
                TraceNodeKind::Validation {
                    group: k,
                    attempt: 0,
                },
                val_work,
                val_deps,
            );
            for (a, attempt_rec) in rec.attempts.iter().enumerate() {
                let attempt = a + 1;
                let mut deps = vec![val_node];
                let mut tail_nodes: Vec<usize> = Vec::with_capacity(attempt_rec.works.len());
                for (off, &m) in attempt_rec.works.iter().enumerate() {
                    let node = trace.push(
                        TraceNodeKind::Invocation {
                            group: k - 1,
                            index: re_start + off,
                            attempt,
                            sequential_tail: false,
                        },
                        m,
                        deps,
                    );
                    tail_nodes.push(node);
                    deps = vec![node];
                }
                val_node = trace.push(
                    TraceNodeKind::Validation { group: k, attempt },
                    val_work,
                    deps,
                );
                if !attempt_rec.matched {
                    for node in tail_nodes {
                        trace.nodes[node].committed = false;
                    }
                }
            }
            if rec.matched {
                prev_commit_gate = Some(val_node);
            } else {
                let mut deps = vec![val_node];
                for (off, &m) in self.tail_works.iter().enumerate() {
                    let i = self.abort_restart + off;
                    let node = trace.push(
                        TraceNodeKind::Invocation {
                            group: i / self.g,
                            index: i,
                            attempt: config.max_reexec + 1,
                            sequential_tail: true,
                        },
                        m,
                        deps,
                    );
                    deps = vec![node];
                }
                break;
            }
        }
        if self.aborted && self.sink.enabled() {
            self.sink.emit(EventKind::SequentialTailEnd);
        }

        // Phase-3 accounting.
        let mut report = SpecReport {
            groups: self.records,
            reexecutions: self.reexecutions,
            validations: self.validations,
            aborted: self.aborted,
            ..SpecReport::default()
        };
        for node in &trace.nodes {
            let w = node.work.total;
            if node.committed {
                match node.kind {
                    TraceNodeKind::Auxiliary { .. } => report.committed_aux_work += w,
                    _ => report.committed_original_work += w,
                }
            } else {
                report.squashed_work += w;
            }
        }

        let final_state = if self.aborted {
            self.tail_state.take().expect("tail state present")
        } else {
            // `self` is consumed: the last final state moves out instead of
            // cloning (states can be arbitrarily large workload states).
            match self.states.pop() {
                Some(s) => s.final_state,
                None => initial.clone(),
            }
        };
        let outputs: Vec<T::Output> = self
            .outputs
            .into_iter()
            .map(|o| o.expect("every input has a committed output"))
            .collect();
        ProtocolResult {
            outputs,
            final_state,
            report,
            trace,
        }
    }
}
