//! Runtime observability: typed events, wall-clock spans, and exporters.
//!
//! The execution model already records *what* ran as a [`SpecTrace`] (a task
//! graph with work costs and dependence edges); this module adds the
//! orthogonal runtime view — *when* things happened on real threads — and
//! the tooling to inspect both:
//!
//! - [`EventKind`]/[`Event`]: typed protocol events (group start/commit/
//!   abort, validation, re-execution, sequential-tail entry) with wall-clock
//!   timestamps and thread tags;
//! - [`EventSink`]: where the protocol emits events. The default
//!   [`NoopSink`] compiles to a virtual `enabled()` check per site and
//!   nothing else, so instrumentation costs nothing unless a recording sink
//!   is installed (the `protocol_run` bench pins the disabled overhead
//!   below 2%);
//! - [`RecordingSink`]: an in-memory sink stamping events with microsecond
//!   wall-clock offsets and a per-thread tag — usable concurrently from
//!   pool workers;
//! - [`chrome_trace_json`]: a Chrome `trace_event` exporter combining the
//!   [`SpecTrace`] (laid out as a virtual schedule in work units) with the
//!   recorded wall-clock events; the output loads in `about:tracing` /
//!   Perfetto;
//! - [`render_summary`]: the human-readable per-group timeline and
//!   work-split table behind the `stats-report` CLI;
//! - [`validate_backward_deps`]: the structural invariant every exported
//!   trace must satisfy (dependence edges point strictly backward).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

use crate::sync::Mutex;

use crate::adapt::AdaptState;
use crate::faults::FaultKind;
use crate::protocol::{GroupResolution, SpecReport, SpecTrace, TraceNodeKind};

/// What happened, with enough coordinates to reconstruct the run story.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A protocol run began (`run_protocol*` or the pooled runtime).
    RunStart {
        /// Number of inputs in the run.
        inputs: usize,
        /// Number of groups the inputs were split into.
        groups: usize,
    },
    /// The protocol run finished (outputs committed, accounting done).
    RunEnd,
    /// A group's execution (auxiliary code + chained invocations) began.
    GroupStart {
        /// Group index.
        group: usize,
        /// First absolute input index of the group.
        start: usize,
        /// One past the last absolute input index.
        end: usize,
        /// Whether the group starts from an auxiliary speculative state.
        speculative: bool,
    },
    /// A group's execution finished (validation happens later, in order).
    GroupEnd {
        /// Group index.
        group: usize,
    },
    /// One state comparison (`does_spec_state_match_any`).
    Validation {
        /// The speculative group being validated.
        group: usize,
        /// Comparison attempt (0 = against the first original state).
        attempt: usize,
        /// Whether the speculative state matched.
        matched: bool,
    },
    /// The previous group's tail is being re-executed after a mismatch.
    Reexecution {
        /// The group being re-executed (the *previous* group).
        group: usize,
        /// Re-execution attempt number (1-based).
        attempt: usize,
    },
    /// A speculative group's outputs were committed.
    GroupCommit {
        /// Group index.
        group: usize,
        /// Re-executions of the previous group that were needed.
        reexecutions: usize,
    },
    /// A speculative group aborted (re-execution budget exhausted).
    GroupAbort {
        /// Group index.
        group: usize,
    },
    /// The post-abort sequential tail began processing remaining inputs.
    SequentialTailStart {
        /// First absolute input index processed sequentially.
        index: usize,
    },
    /// The sequential tail finished.
    SequentialTailEnd,
    /// An injected fault from the run's [`FaultPlan`](crate::FaultPlan)
    /// fired. `site` is a group index (worker panic, forced mismatch, slow
    /// group) or an absolute input index (queue stall).
    FaultInjected {
        /// Which fault kind fired.
        kind: FaultKind,
        /// The targeted group or input index.
        site: usize,
        /// The attempt the fault fired on (dispatch or validation attempt).
        attempt: usize,
    },
    /// The streaming coordinator is re-dispatching a group whose pool job
    /// died, under the run's [`RetryPolicy`](crate::RetryPolicy).
    GroupRetry {
        /// The group being re-dispatched.
        group: usize,
        /// Retry attempt number (1-based; `0` was the original dispatch).
        attempt: usize,
    },
    /// The [`Session`](crate::Session) adaptive controller moved on the
    /// degradation ladder (see `docs/robustness.md`).
    AdaptTransition {
        /// The state entered.
        state: AdaptState,
        /// The speculative group size in effect after the transition.
        group_size: usize,
    },
    /// An online [`Retuner`](crate::Retuner) re-picked the execution-model
    /// operating point between two [`Session`](crate::Session) segments
    /// (see `docs/tuning.md`). Recorded in session logs so tuned runs
    /// replay deterministically without the tuner (`docs/replay.md`).
    Retune {
        /// First segment the new operating point applies to.
        segment: u64,
        /// Re-picked speculation group cardinality.
        group_size: usize,
        /// Re-picked auxiliary window.
        window: usize,
        /// Re-picked re-execution budget.
        max_reexec: usize,
    },
    /// The [`SessionServer`](crate::serve::SessionServer) dispatcher
    /// admitted inputs from a tenant's spill queue into its session under
    /// the fairness policy (one event per tenant per dispatch round that
    /// moved at least one input; see `docs/serving.md`).
    TenantAdmission {
        /// Dense per-server tenant index.
        tenant: usize,
        /// Inputs moved into the tenant's session this round.
        admitted: usize,
    },
    /// A tenant's spill queue overflowed its in-memory bound and wrote a
    /// FIFO segment to disk.
    SpillWrite {
        /// Dense per-server tenant index.
        tenant: usize,
        /// Monotonic per-tenant segment number.
        segment: u64,
        /// Inputs serialized into the segment.
        inputs: usize,
    },
    /// A spilled segment was read back (in FIFO order) to refill a
    /// tenant's in-memory queue.
    SpillReplay {
        /// Dense per-server tenant index.
        tenant: usize,
        /// The segment number being replayed.
        segment: u64,
        /// Inputs deserialized from the segment.
        inputs: usize,
    },
    /// A plan node's cut-set validation ran: its speculative start state
    /// was compared against the merged committed finals of its parents
    /// (see `docs/dag.md`).
    NodeValidation {
        /// The plan node validated.
        node: usize,
        /// Whether the speculative start state matched the merge.
        matched: bool,
    },
    /// A plan node's cut-set validation matched: its eager speculative run
    /// committed as-is.
    NodeCommit {
        /// The committed plan node.
        node: usize,
    },
    /// A plan node's cut-set validation mismatched: its eager run is
    /// squashed, it re-executes from the real merged state, and its
    /// downstream cone is squashed by rule.
    NodeAbort {
        /// The aborted plan node.
        node: usize,
    },
    /// A plan node inside an aborted ancestor's downstream cone was
    /// squashed without validation (the cut-set rollback rule).
    ConeSquash {
        /// The squashed plan node.
        node: usize,
        /// The aborted ancestor whose cone swallowed it.
        root: usize,
    },
}

impl EventKind {
    /// Display label (also the Chrome trace event name).
    pub fn label(&self) -> String {
        match self {
            EventKind::RunStart { .. } | EventKind::RunEnd => "run".to_string(),
            EventKind::GroupStart { group, .. } | EventKind::GroupEnd { group } => {
                format!("group {group}")
            }
            EventKind::Validation {
                group,
                attempt,
                matched,
            } => format!(
                "validate g{group} a{attempt}: {}",
                if *matched { "match" } else { "mismatch" }
            ),
            EventKind::Reexecution { group, attempt } => format!("reexec g{group} a{attempt}"),
            EventKind::GroupCommit {
                group,
                reexecutions,
            } => format!("commit g{group} (+{reexecutions} reexec)"),
            EventKind::GroupAbort { group } => format!("abort g{group}"),
            EventKind::SequentialTailStart { .. } | EventKind::SequentialTailEnd => {
                "sequential tail".to_string()
            }
            EventKind::FaultInjected {
                kind,
                site,
                attempt,
            } => format!("fault {} @{site} a{attempt}", kind.label()),
            EventKind::GroupRetry { group, attempt } => format!("retry g{group} a{attempt}"),
            EventKind::AdaptTransition { state, group_size } => {
                format!("adapt {} g{group_size}", state.label())
            }
            EventKind::Retune {
                segment,
                group_size,
                window,
                max_reexec,
            } => format!("retune s{segment} g{group_size} w{window} r{max_reexec}"),
            EventKind::TenantAdmission { tenant, admitted } => {
                format!("admit t{tenant} +{admitted}")
            }
            EventKind::SpillWrite {
                tenant,
                segment,
                inputs,
            } => format!("spill t{tenant} seg{segment} ({inputs} inputs)"),
            EventKind::SpillReplay {
                tenant,
                segment,
                inputs,
            } => format!("replay t{tenant} seg{segment} ({inputs} inputs)"),
            EventKind::NodeValidation { node, matched } => format!(
                "plan-validate n{node}: {}",
                if *matched { "match" } else { "mismatch" }
            ),
            EventKind::NodeCommit { node } => format!("plan-commit n{node}"),
            EventKind::NodeAbort { node } => format!("plan-abort n{node}"),
            EventKind::ConeSquash { node, root } => {
                format!("cone-squash n{node} (root n{root})")
            }
        }
    }

    /// Chrome trace phase: span begin/end for paired kinds, instant else.
    fn phase(&self) -> char {
        match self {
            EventKind::RunStart { .. }
            | EventKind::GroupStart { .. }
            | EventKind::SequentialTailStart { .. } => 'B',
            EventKind::RunEnd | EventKind::GroupEnd { .. } | EventKind::SequentialTailEnd => 'E',
            _ => 'i',
        }
    }
}

/// One recorded event: kind, wall-clock offset from the sink's epoch, and a
/// stable tag for the emitting OS thread.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Wall-clock offset from the sink's creation.
    pub at: Duration,
    /// Hash of the emitting thread's id (stable within a process run).
    pub thread: u64,
}

/// Where the protocol emits events.
///
/// Implementations must be callable from multiple threads: the pooled
/// runtime emits group events from worker threads. The default methods make
/// any implementation a no-op until overridden.
pub trait EventSink: Send + Sync {
    /// Whether emission sites should bother constructing events. The
    /// protocol checks this before every emit, so a `false` sink costs one
    /// virtual call per *event site* (per group / validation, never per
    /// invocation).
    fn enabled(&self) -> bool {
        false
    }

    /// Record one event. Called only when [`EventSink::enabled`] is true.
    fn emit(&self, kind: EventKind) {
        let _ = kind;
    }
}

/// The zero-cost default sink: disabled, records nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl EventSink for NoopSink {}

/// A shared no-op instance for call sites that need a `&dyn EventSink`.
pub static NOOP: NoopSink = NoopSink;

/// An in-memory sink stamping each event with the wall-clock offset from
/// the sink's creation and the emitting thread's tag.
#[derive(Debug)]
pub struct RecordingSink {
    epoch: Instant,
    events: Mutex<Vec<Event>>,
}

impl RecordingSink {
    /// Create an empty sink; its epoch (timestamp zero) is now.
    pub fn new() -> Self {
        RecordingSink {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Snapshot the events recorded so far, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Drain the recorded events, leaving the sink empty (epoch unchanged).
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.lock())
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl Default for RecordingSink {
    fn default() -> Self {
        Self::new()
    }
}

impl EventSink for RecordingSink {
    fn enabled(&self) -> bool {
        true
    }

    fn emit(&self, kind: EventKind) {
        let at = self.epoch.elapsed();
        let mut h = DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        let thread = h.finish();
        self.events.lock().push(Event { kind, at, thread });
    }
}

// ------------------------------------------------------------- exporters

/// The [`SpecTrace`] laid out on virtual lanes: a list-schedule in work
/// units where each node starts as soon as its dependences finish, on the
/// first lane free at that time. This is the trace's *inherent* parallelism
/// (unbounded lanes), independent of any platform model.
#[derive(Debug, Clone, Default)]
pub struct VirtualSchedule {
    /// Per node: (start, finish, lane), in work units.
    pub slots: Vec<(f64, f64, usize)>,
    /// Number of lanes used.
    pub lanes: usize,
}

impl VirtualSchedule {
    /// Finish time of the last node (work units).
    pub fn makespan(&self) -> f64 {
        self.slots.iter().map(|s| s.1).fold(0.0, f64::max)
    }
}

/// Lay the trace out on virtual lanes (see [`VirtualSchedule`]).
pub fn virtual_schedule(trace: &SpecTrace) -> VirtualSchedule {
    let mut slots: Vec<(f64, f64, usize)> = Vec::with_capacity(trace.nodes.len());
    let mut lane_free: Vec<f64> = Vec::new();
    for node in &trace.nodes {
        let start = node
            .deps
            .iter()
            .map(|&d| slots[d].1)
            .fold(0.0_f64, f64::max);
        let lane = match lane_free.iter().position(|&f| f <= start + 1e-12) {
            Some(l) => l,
            None => {
                lane_free.push(0.0);
                lane_free.len() - 1
            }
        };
        let finish = start + node.work.total;
        lane_free[lane] = finish;
        slots.push((start, finish, lane));
    }
    VirtualSchedule {
        slots,
        lanes: lane_free.len(),
    }
}

/// Check that every dependence edge points strictly backward (each node
/// depends only on earlier nodes) — the invariant that makes a trace
/// replayable and its exports well-formed.
pub fn validate_backward_deps(trace: &SpecTrace) -> Result<(), String> {
    for (i, node) in trace.nodes.iter().enumerate() {
        for &d in &node.deps {
            if d >= i {
                return Err(format!(
                    "node {i} ({:?}) depends on non-earlier node {d}",
                    node.kind
                ));
            }
        }
    }
    Ok(())
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn node_name(kind: &TraceNodeKind) -> String {
    match kind {
        TraceNodeKind::Auxiliary { group } => format!("aux g{group}"),
        TraceNodeKind::Invocation {
            group,
            index,
            attempt,
            sequential_tail,
        } => {
            if *sequential_tail {
                format!("tail i{index}")
            } else if *attempt > 0 {
                format!("inv g{group} i{index} a{attempt}")
            } else {
                format!("inv g{group} i{index}")
            }
        }
        TraceNodeKind::Validation { group, attempt } => format!("val g{group} a{attempt}"),
    }
}

/// Render the trace and recorded events as a Chrome `trace_event` JSON
/// document (loads in `about:tracing` / Perfetto).
///
/// Two processes are emitted:
///
/// - **pid 1** — the virtual schedule of the [`SpecTrace`]: one complete
///   ("X") event per node, one row per virtual lane, timestamps in work
///   units (1 unit = 1 µs). Each event's `args` carry the node index, its
///   dependence edges, its group, and whether it committed — squashed work
///   is visible as `committed: false`.
/// - **pid 2** — the recorded wall-clock [`Event`]s (when any): span
///   begin/end pairs for runs, groups, and the sequential tail, instants
///   for validations, re-executions, commits, and aborts, one row per OS
///   thread, timestamps in real microseconds.
///
/// Written by hand: the sanctioned dependency set has no JSON serializer.
pub fn chrome_trace_json(trace: &SpecTrace, events: &[Event]) -> String {
    let sched = virtual_schedule(trace);
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let push = |s: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&s);
    };

    push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"virtual schedule (work units)\"}}"
            .to_string(),
        &mut out,
        &mut first,
    );
    for (i, node) in trace.nodes.iter().enumerate() {
        let (start, finish, lane) = sched.slots[i];
        let (group, committed) = match node.kind {
            TraceNodeKind::Auxiliary { group } => (group, node.committed),
            TraceNodeKind::Invocation { group, .. } => (group, node.committed),
            TraceNodeKind::Validation { group, .. } => (group, node.committed),
        };
        let deps = node
            .deps
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(",");
        push(
            format!(
                "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":1,\"tid\":{lane},\
                 \"ts\":{ts:.3},\"dur\":{dur:.3},\"args\":{{\"node\":{i},\
                 \"group\":{group},\"committed\":{committed},\"deps\":[{deps}]}}}}",
                name = escape(&node_name(&node.kind)),
                ts = start,
                dur = finish - start,
            ),
            &mut out,
            &mut first,
        );
    }

    if !events.is_empty() {
        push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\
             \"args\":{\"name\":\"wall clock\"}}"
                .to_string(),
            &mut out,
            &mut first,
        );
        // Stable small tids per thread tag, in first-appearance order.
        let mut tids: Vec<u64> = Vec::new();
        for ev in events {
            let tid = match tids.iter().position(|&t| t == ev.thread) {
                Some(t) => t,
                None => {
                    tids.push(ev.thread);
                    tids.len() - 1
                }
            };
            let ph = ev.kind.phase();
            let scope = if ph == 'i' { ",\"s\":\"t\"" } else { "" };
            push(
                format!(
                    "{{\"name\":\"{name}\",\"ph\":\"{ph}\",\"pid\":2,\"tid\":{tid},\
                     \"ts\":{ts:.3}{scope}}}",
                    name = escape(&ev.kind.label()),
                    ts = ev.at.as_secs_f64() * 1.0e6,
                ),
                &mut out,
                &mut first,
            );
        }
    }
    out.push_str("]}");
    out
}

// ------------------------------------------------------- human summaries

fn fmt_units(x: f64) -> String {
    if x >= 1000.0 {
        format!("{:.1}k", x / 1000.0)
    } else {
        format!("{x:.0}")
    }
}

/// Render a human-readable run summary: a per-group timeline (input range,
/// resolution, virtual-schedule span, committed/squashed work) and the
/// work-split table behind Table 1's columns.
pub fn render_summary(report: &SpecReport, trace: &SpecTrace) -> String {
    let sched = virtual_schedule(trace);
    let n_groups = report.groups.len();
    let mut committed = vec![0.0_f64; n_groups];
    let mut squashed = vec![0.0_f64; n_groups];
    let mut span: Vec<Option<(f64, f64)>> = vec![None; n_groups];
    for (i, node) in trace.nodes.iter().enumerate() {
        let g = match node.kind {
            TraceNodeKind::Auxiliary { group } => group,
            TraceNodeKind::Invocation { group, .. } => group,
            TraceNodeKind::Validation { group, .. } => group,
        };
        if g >= n_groups {
            continue;
        }
        if node.committed {
            committed[g] += node.work.total;
        } else {
            squashed[g] += node.work.total;
        }
        let (s, f, _) = sched.slots[i];
        span[g] = Some(match span[g] {
            Some((s0, f0)) => (s0.min(s), f0.max(f)),
            None => (s, f),
        });
    }

    let mut out = String::new();
    out.push_str("per-group timeline (virtual work units):\n");
    out.push_str(
        "  group  inputs        span                resolution            committed  squashed\n",
    );
    for (g, rec) in report.groups.iter().enumerate() {
        let res = match rec.resolution {
            GroupResolution::NonSpeculative => "non-speculative".to_string(),
            GroupResolution::Committed { reexecutions: 0 } => "committed".to_string(),
            GroupResolution::Committed { reexecutions } => {
                format!("committed (+{reexecutions} reexec)")
            }
            GroupResolution::Aborted => "aborted".to_string(),
            GroupResolution::SequentialTail => "sequential tail".to_string(),
        };
        let (s, f) = span[g].unwrap_or((0.0, 0.0));
        out.push_str(&format!(
            "  {g:>5}  [{:>4},{:>4})  [{:>8},{:>8})  {res:<21} {:>9}  {:>8}\n",
            rec.start,
            rec.end,
            fmt_units(s),
            fmt_units(f),
            fmt_units(committed[g]),
            fmt_units(squashed[g]),
        ));
    }

    let total = trace.total_work();
    let pct = |x: f64| {
        if total > 0.0 {
            100.0 * x / total
        } else {
            0.0
        }
    };
    out.push_str("\nwork split:\n");
    out.push_str(&format!(
        "  committed original  {:>10}  ({:.1}%)\n",
        fmt_units(report.committed_original_work),
        pct(report.committed_original_work)
    ));
    out.push_str(&format!(
        "  committed auxiliary {:>10}  ({:.1}%, extra {:.1}% of original)\n",
        fmt_units(report.committed_aux_work),
        pct(report.committed_aux_work),
        100.0 * report.extra_committed_fraction()
    ));
    out.push_str(&format!(
        "  squashed            {:>10}  ({:.1}%)\n",
        fmt_units(report.squashed_work),
        pct(report.squashed_work)
    ));
    out.push_str(&format!("  total               {:>10}\n", fmt_units(total)));
    out.push_str(&format!(
        "\ncritical path: {} units over {} lanes ({} nodes); \
         inherent speedup {:.2}x\n",
        fmt_units(sched.makespan()),
        sched.lanes,
        trace.nodes.len(),
        if sched.makespan() > 0.0 {
            total / sched.makespan()
        } else {
            1.0
        },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn noop_sink_is_disabled() {
        assert!(!NoopSink.enabled());
        NoopSink.emit(EventKind::RunEnd); // must be a no-op, not a panic
    }

    #[test]
    fn recording_sink_stamps_events() {
        let sink = RecordingSink::new();
        assert!(sink.is_empty());
        sink.emit(EventKind::RunStart {
            inputs: 8,
            groups: 2,
        });
        sink.emit(EventKind::RunEnd);
        let evs = sink.events();
        assert_eq!(evs.len(), 2);
        assert!(evs[0].at <= evs[1].at);
        assert_eq!(evs[0].thread, evs[1].thread);
        assert_eq!(sink.take().len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn recording_sink_is_thread_safe() {
        let sink = Arc::new(RecordingSink::new());
        let handles: Vec<_> = (0..4)
            .map(|g| {
                let s = Arc::clone(&sink);
                std::thread::spawn(move || {
                    for a in 0..25 {
                        s.emit(EventKind::Validation {
                            group: g,
                            attempt: a,
                            matched: false,
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let evs = sink.events();
        assert_eq!(evs.len(), 100);
        // Four distinct thread tags.
        let mut tags: Vec<u64> = evs.iter().map(|e| e.thread).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 4);
    }

    #[test]
    fn event_labels_are_informative() {
        assert_eq!(
            EventKind::GroupCommit {
                group: 3,
                reexecutions: 1
            }
            .label(),
            "commit g3 (+1 reexec)"
        );
        assert!(EventKind::Validation {
            group: 2,
            attempt: 0,
            matched: true
        }
        .label()
        .contains("match"));
    }

    #[test]
    fn span_kinds_pair_begin_end() {
        assert_eq!(
            EventKind::GroupStart {
                group: 1,
                start: 4,
                end: 8,
                speculative: true
            }
            .phase(),
            'B'
        );
        assert_eq!(EventKind::GroupEnd { group: 1 }.phase(), 'E');
        assert_eq!(
            EventKind::GroupStart {
                group: 1,
                start: 4,
                end: 8,
                speculative: true
            }
            .label(),
            EventKind::GroupEnd { group: 1 }.label(),
            "begin/end labels must match for Chrome span pairing"
        );
    }
}
