//! The user-facing runtime object: `StateDependence` (paper Figure 9).
//!
//! `StateDependence::start()` begins the §3.1 execution model in parallel
//! with the invoking thread, running groups of invocations concurrently on a
//! shared [`ThreadPool`]; `join()` waits until all inputs are correctly
//! processed and returns the committed outputs. All knobs (pool, sink,
//! seed, config, segmenting) come from one [`RunOptions`] value — the same
//! options type the streaming [`Session`](crate::Session) consumes.
//!
//! Because every invocation's PRVG stream is derived from coordinates (run
//! seed, group, index, attempt), the parallel execution is *reproducible*
//! and byte-identical to the sequential reference
//! [`run_protocol`](crate::run_protocol) — a property the test suite checks.

use crate::sync::{thread, Arc, Condvar, Mutex};

use crate::dag::{assert_plan_matches, node_is_eager, run_node_eager, NodeRun, PlanResolver};
use crate::options::RunOptions;
use crate::pool::{Priority, ThreadPool};
use crate::protocol::{
    execute_group, run_protocol_with, GroupData, ProtocolResult, SegmentAccumulator, SpecReport,
    SpecTrace,
};
use crate::sdi::StateTransition;

/// The result of a completed state-dependence execution.
pub struct SpecOutcome<T: StateTransition> {
    /// Committed outputs, one per input, in input order.
    pub outputs: Vec<T::Output>,
    /// The committed final state.
    pub final_state: T::State,
    /// Speculation statistics (commits, re-executions, aborts, work split).
    pub report: SpecReport,
    /// The recorded task graph of everything that executed.
    pub trace: SpecTrace,
}

impl<T: StateTransition> From<ProtocolResult<T>> for SpecOutcome<T> {
    fn from(result: ProtocolResult<T>) -> Self {
        SpecOutcome {
            outputs: result.outputs,
            final_state: result.final_state,
            report: result.report,
            trace: result.trace,
        }
    }
}

struct Shared<T: StateTransition> {
    inputs: Vec<T::Input>,
    initial: T::State,
    transition: T,
    options: RunOptions,
}

/// A state dependence made explicit (paper Figures 8/9): the inputs, the
/// initial state, and the `compute_output` transition, plus the STATS
/// execution-model configuration carried by [`RunOptions`].
///
/// ```
/// use stats_core::{
///     ExactState, InvocationCtx, RunOptions, SpecConfig, StateDependence, StateTransition,
/// };
///
/// struct Double;
/// impl StateTransition for Double {
///     type Input = u64;
///     type State = ExactState<u64>;
///     type Output = u64;
///     fn compute_output(
///         &self,
///         input: &u64,
///         state: &mut ExactState<u64>,
///         ctx: &mut InvocationCtx,
///     ) -> u64 {
///         ctx.charge(1.0);
///         state.0 = *input; // short-memory state
///         2 * *input
///     }
/// }
///
/// let mut dep = StateDependence::new((0..32).collect(), ExactState(0), Double)
///     .with_options(RunOptions::default()
///         .config(SpecConfig { group_size: 8, window: 1, ..SpecConfig::default() }));
/// dep.start();
/// let outcome = dep.join();
/// assert_eq!(outcome.outputs[5], 10);
/// assert!(!outcome.report.aborted);
/// ```
pub struct StateDependence<T: StateTransition> {
    shared: Option<Arc<Shared<T>>>,
    handle: Option<thread::JoinHandle<ProtocolResult<T>>>,
}

impl<T: StateTransition> StateDependence<T> {
    /// Create a state dependence over `inputs` with the given initial state
    /// and transition, under default [`RunOptions`] (a private pool sized
    /// to the machine's available parallelism is created at `start()`).
    pub fn new(inputs: Vec<T::Input>, initial: T::State, transition: T) -> Self {
        StateDependence {
            shared: Some(Arc::new(Shared {
                inputs,
                initial,
                transition,
                options: RunOptions::default(),
            })),
            handle: None,
        }
    }

    fn map_options(mut self, f: impl FnOnce(&mut RunOptions)) -> Self {
        let mut shared = Arc::try_unwrap(self.shared.take().expect("not started"))
            .unwrap_or_else(|_| panic!("options must be set before start"));
        f(&mut shared.options);
        self.shared = Some(Arc::new(shared));
        self
    }

    /// Replace every runtime knob at once (builder style): pool, sink,
    /// seed, config, segmenting, and DAG plan all come from `options`.
    pub fn with_options(self, options: RunOptions) -> Self {
        self.map_options(|o| *o = options)
    }

    /// Run to completion and return the outcome. Equivalent to `start()`
    /// followed by `join()`; the seed comes from [`RunOptions::seed`].
    pub fn run(mut self) -> SpecOutcome<T> {
        self.start();
        self.join()
    }

    /// Begin the execution model in parallel with the invoking thread.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn start(&mut self) {
        assert!(self.handle.is_none(), "start() called twice");
        let shared = Arc::clone(self.shared.as_ref().expect("not consumed"));
        let pool = resolve_pool(&shared.options);
        self.handle = Some(
            thread::Builder::new()
                .name("stats-coordinator".into())
                .spawn(move || run_pooled(&shared, &pool))
                .expect("failed to spawn coordinator"),
        );
    }

    /// Wait until all inputs are correctly processed and return the outcome.
    ///
    /// # Panics
    ///
    /// Panics if `start()` was not called first.
    pub fn join(mut self) -> SpecOutcome<T> {
        let handle = self.handle.take().expect("join() requires start()");
        let result = handle.join().expect("coordinator panicked");
        result.into()
    }
}

/// The options' shared pool, or a private one sized to the machine.
pub(crate) fn resolve_pool(options: &RunOptions) -> Arc<ThreadPool> {
    options
        .pool
        .clone()
        .unwrap_or_else(|| Arc::new(ThreadPool::new(thread::available_parallelism())))
}

/// Dropping a started-but-not-joined dependence must not leak a detached
/// `stats-coordinator` thread (it would keep running — and keep pool slots
/// busy — with nobody to observe it) nor swallow its panics: the handle is
/// joined here, and a coordinator panic is re-raised unless the drop is
/// itself part of a panic unwind (re-raising then would abort the process).
impl<T: StateTransition> Drop for StateDependence<T> {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            if let Err(payload) = handle.join() {
                if !thread::panicking() {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

/// Execute the protocol with group execution fanned out to the pool,
/// segment by segment when [`RunOptions::segment`] is set, or over the
/// dependency DAG when [`RunOptions::plan`] is set.
fn run_pooled<T: StateTransition>(
    shared: &Arc<Shared<T>>,
    pool: &Arc<ThreadPool>,
) -> ProtocolResult<T> {
    let options = &shared.options;
    if options.plan.is_some() {
        return run_plan_pooled(shared, pool);
    }
    match options.segment {
        None => run_pooled_chunk(
            shared,
            pool,
            options.seed,
            0,
            shared.inputs.len(),
            &shared.initial,
        ),
        Some(segment) => {
            let segment = segment.max(1);
            let n = shared.inputs.len();
            let mut acc: SegmentAccumulator<T> = SegmentAccumulator::new(shared.initial.clone());
            let mut lo = 0usize;
            let mut seg_idx = 0u64;
            while lo < n {
                let hi = (lo + segment).min(n);
                let initial = acc.state().clone();
                let r =
                    run_pooled_chunk(shared, pool, options.seed ^ seg_idx << 32, lo, hi, &initial);
                acc.absorb(r);
                lo = hi;
                seg_idx += 1;
            }
            acc.finish()
        }
    }
}

/// One (sub-)run over `inputs[lo..hi]`, groups fanned out to the pool.
fn run_pooled_chunk<T: StateTransition>(
    shared: &Arc<Shared<T>>,
    pool: &Arc<ThreadPool>,
    seed: u64,
    lo: usize,
    hi: usize,
    initial: &T::State,
) -> ProtocolResult<T> {
    let s = Arc::clone(shared);
    run_protocol_with(
        &shared.transition,
        &shared.inputs[lo..hi],
        initial,
        &shared.options.config,
        seed,
        &*shared.options.sink,
        shared.options.faults.as_ref(),
        move |specs| {
            let slots: Arc<Mutex<Vec<Option<GroupData<T>>>>> =
                Arc::new(Mutex::new((0..specs.len()).map(|_| None).collect()));
            let jobs: Vec<_> = specs
                .iter()
                .map(|&spec| {
                    let s = Arc::clone(&s);
                    let slots = Arc::clone(&slots);
                    let init = initial.clone();
                    move |idx: usize| {
                        let data = execute_group(
                            &s.transition,
                            &s.inputs[lo..hi],
                            0,
                            &init,
                            &s.options.config,
                            seed,
                            spec,
                            &*s.options.sink,
                            s.options.faults.as_ref(),
                        );
                        slots.lock()[idx] = Some(data);
                    }
                })
                .collect();
            pool.scope(jobs);
            Arc::try_unwrap(slots)
                .unwrap_or_else(|_| panic!("pool scope leaked a slot reference"))
                .into_inner()
                .into_iter()
                .map(|d| d.expect("every group executed"))
                .collect()
        },
    )
}

/// One filled slot per eager plan node, shared between pool jobs and the
/// coordinator (a job's panic is carried as the `Err` payload).
type NodeSlots<T> = Arc<(Mutex<Vec<Option<std::thread::Result<NodeRun<T>>>>>, Condvar)>;

/// Execute a [`SpecPlan`](crate::SpecPlan) with every eager node run (roots
/// and speculative non-roots) fanned out to the pool at once — critical-path
/// nodes on the [`Priority::High`] lane so the longest dependence chain is
/// never stuck behind sibling branches. The coordinator ingests finished
/// runs into the [`PlanResolver`], which resolves nodes strictly in the
/// plan's canonical topological order; dataflow nodes and post-abort
/// recovery runs execute inline on the coordinator as their parents settle.
/// Bit-identical to the sequential reference at any worker count.
fn run_plan_pooled<T: StateTransition>(
    shared: &Arc<Shared<T>>,
    pool: &Arc<ThreadPool>,
) -> ProtocolResult<T> {
    let options = &shared.options;
    let plan = Arc::new(options.plan.clone().expect("plan mode"));
    assert_plan_matches(&plan, shared.inputs.len());
    let eager: Vec<usize> = plan
        .topo_order()
        .iter()
        .copied()
        .filter(|&n| node_is_eager(&plan, &options.config, n))
        .collect();
    let critical = plan.critical_path();
    let slots: NodeSlots<T> = Arc::new((
        Mutex::new((0..plan.len()).map(|_| None).collect()),
        Condvar::new(),
    ));
    for &node in &eager {
        let s = Arc::clone(shared);
        let slots = Arc::clone(&slots);
        let plan_job = Arc::clone(&plan);
        let priority = if critical.contains(&node) {
            Priority::High
        } else {
            options.priority
        };
        pool.execute_with_priority(priority, move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_node_eager(
                    &plan_job,
                    node,
                    &s.transition,
                    &s.inputs,
                    &s.initial,
                    &s.options.config,
                    s.options.seed,
                    &*s.options.sink,
                )
            }));
            // Release the Shared/plan clones BEFORE publishing the result:
            // once the slot is filled the coordinator may return and the
            // caller drop its pool handle, and `s.options` holds an
            // `Arc<ThreadPool>` — if this worker's clone were the last one,
            // the pool would be dropped on a worker thread and join itself
            // (EDEADLK). After this point the job owns only `slots`.
            drop(s);
            drop(plan_job);
            let (lock, cv) = &*slots;
            lock.lock()[node] = Some(result);
            cv.notify_all();
        });
    }
    let mut resolver = PlanResolver::new(
        &plan,
        &shared.transition,
        &shared.inputs,
        &options.config,
        options.seed,
        &*options.sink,
        options.faults.as_ref(),
    );
    let mut remaining = eager.len();
    let (lock, cv) = &*slots;
    while remaining > 0 {
        let mut taken = Vec::new();
        {
            let mut guard = lock.lock();
            loop {
                for (node, slot) in guard.iter_mut().enumerate() {
                    if slot.is_some() {
                        taken.push((node, slot.take().expect("checked is_some")));
                    }
                }
                if !taken.is_empty() {
                    break;
                }
                cv.wait(&mut guard);
            }
        }
        for (node, result) in taken {
            remaining -= 1;
            match result {
                Ok(run) => resolver.ingest(node, run),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    }
    resolver.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::InvocationCtx;
    use crate::protocol::{run_protocol, run_protocol_with_options, SpecConfig};
    use crate::sdi::SpecState;

    /// Nondeterministic short-memory workload: state is the last input plus
    /// bounded noise; matches tolerate the noise.
    #[derive(Clone, Debug)]
    struct Noisy(f64);
    impl SpecState for Noisy {
        fn matches_any(&self, originals: &[Self]) -> bool {
            originals.iter().any(|o| (o.0 - self.0).abs() < 0.5)
        }
    }

    struct NoisyLast;
    impl StateTransition for NoisyLast {
        type Input = f64;
        type State = Noisy;
        type Output = f64;
        fn compute_output(&self, input: &f64, state: &mut Noisy, ctx: &mut InvocationCtx) -> f64 {
            ctx.charge(5.0);
            state.0 = *input + ctx.uniform(-0.1, 0.1);
            state.0
        }
    }

    fn config() -> SpecConfig {
        SpecConfig {
            group_size: 4,
            window: 1,
            max_reexec: 2,
            rollback: 1,
            ..SpecConfig::default()
        }
    }

    fn pooled_options(threads: usize, seed: u64) -> RunOptions {
        RunOptions::default()
            .pool(Arc::new(ThreadPool::new(threads)))
            .config(config())
            .seed(seed)
    }

    #[test]
    fn pooled_matches_sequential_reference() {
        let inputs: Vec<f64> = (0..24).map(|i| i as f64).collect();
        for seed in [0_u64, 1, 7, 42] {
            let reference = run_protocol(&NoisyLast, &inputs, &Noisy(0.0), &config(), seed);
            let dep = StateDependence::new(inputs.clone(), Noisy(0.0), NoisyLast)
                .with_options(pooled_options(4, seed));
            let outcome = dep.run();
            assert_eq!(outcome.outputs, reference.outputs, "seed {seed}");
            assert_eq!(outcome.report.aborted, reference.report.aborted);
            assert_eq!(outcome.report.reexecutions, reference.report.reexecutions);
            assert_eq!(outcome.trace, reference.trace, "seed {seed}");
        }
    }

    #[test]
    fn segmented_pooled_matches_sequential_segmented_reference() {
        let inputs: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let options = RunOptions::default().config(config()).seed(5).segment(13);
        let reference =
            crate::protocol::run_protocol_with_options(&NoisyLast, &inputs, &Noisy(0.0), &options);
        let dep = StateDependence::new(inputs, Noisy(0.0), NoisyLast)
            .with_options(options.pool(Arc::new(ThreadPool::new(4))));
        let outcome = dep.run();
        assert_eq!(outcome.outputs, reference.outputs);
        assert_eq!(outcome.report, reference.report);
        assert_eq!(outcome.trace, reference.trace);
    }

    #[test]
    fn start_join_api() {
        let mut dep =
            StateDependence::new((0..16).map(|i| i as f64).collect(), Noisy(0.0), NoisyLast)
                .with_options(pooled_options(2, 3));
        dep.start();
        let outcome = dep.join();
        assert_eq!(outcome.outputs.len(), 16);
    }

    #[test]
    fn plan_pooled_matches_sequential_reference_at_any_worker_count() {
        // A diamond plan over the noisy workload: the pooled DAG driver
        // must reproduce the sequential plan run bit-for-bit regardless of
        // how many workers race the eager node runs.
        let mut b = crate::SpecPlan::builder();
        let src = b.node(8);
        let l = b.node(8);
        let r = b.node(8);
        let j = b.node(8);
        b.edge(src, l).edge(src, r).edge(l, j).edge(r, j);
        let plan = b.build().unwrap();
        let inputs: Vec<f64> = (0..plan.total_inputs()).map(|i| i as f64).collect();
        for seed in [0_u64, 7, 42] {
            let options = RunOptions::default()
                .config(config())
                .seed(seed)
                .plan(plan.clone());
            let reference = run_protocol_with_options(&NoisyLast, &inputs, &Noisy(0.0), &options);
            for threads in [1usize, 2, 4] {
                let dep = StateDependence::new(inputs.clone(), Noisy(0.0), NoisyLast)
                    .with_options(options.clone().pool(Arc::new(ThreadPool::new(threads))));
                let outcome = dep.run();
                assert_eq!(outcome.outputs, reference.outputs, "seed {seed} x{threads}");
                assert_eq!(outcome.report, reference.report, "seed {seed} x{threads}");
                assert_eq!(outcome.trace, reference.trace, "seed {seed} x{threads}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "start() called twice")]
    fn double_start_panics() {
        let mut dep = StateDependence::new(vec![1.0], Noisy(0.0), NoisyLast)
            .with_options(pooled_options(1, 0));
        dep.start();
        dep.start();
    }

    /// A transition holding a sentinel `Arc`: when the coordinator thread
    /// has truly terminated, its clone of the `Shared` state (and hence of
    /// the sentinel) is gone.
    struct SentinelLast(#[allow(dead_code)] Arc<()>);
    impl StateTransition for SentinelLast {
        type Input = f64;
        type State = Noisy;
        type Output = f64;
        fn compute_output(&self, input: &f64, state: &mut Noisy, ctx: &mut InvocationCtx) -> f64 {
            ctx.charge(5.0);
            state.0 = *input + ctx.uniform(-0.1, 0.1);
            state.0
        }
    }

    #[test]
    fn dropping_started_dependence_joins_coordinator() {
        // Regression: dropping a started-but-not-joined dependence used to
        // leak a detached `stats-coordinator` thread. The sentinel's strong
        // count proves the coordinator (which owns a clone through the
        // shared state) has terminated by the time drop returns — and the
        // test finishing at all proves the process was not aborted.
        let sentinel = Arc::new(());
        {
            let mut dep = StateDependence::new(
                (0..32).map(f64::from).collect(),
                Noisy(0.0),
                SentinelLast(Arc::clone(&sentinel)),
            )
            .with_options(pooled_options(2, 0));
            dep.start();
            // Dropped here without join().
        }
        assert_eq!(
            Arc::strong_count(&sentinel),
            1,
            "coordinator thread still holds the shared state"
        );
    }

    #[test]
    fn dropping_unstarted_dependence_is_inert() {
        let dep = StateDependence::new(vec![1.0, 2.0], Noisy(0.0), NoisyLast);
        drop(dep); // no coordinator was ever spawned
    }

    /// A transition that panics: the coordinator thread dies with it.
    struct Exploding;
    impl StateTransition for Exploding {
        type Input = f64;
        type State = Noisy;
        type Output = f64;
        fn compute_output(&self, _: &f64, _: &mut Noisy, _: &mut InvocationCtx) -> f64 {
            panic!("transition exploded");
        }
    }

    #[test]
    #[should_panic(expected = "panicked in ThreadPool::scope")]
    fn dropping_dependence_propagates_coordinator_panic() {
        // The old detached handle silently swallowed coordinator panics;
        // now drop re-raises them on the owning thread.
        let mut dep = StateDependence::new(vec![1.0, 2.0, 3.0], Noisy(0.0), Exploding)
            .with_options(pooled_options(1, 0));
        dep.start();
        drop(dep);
    }

    #[test]
    fn pooled_run_emits_events_from_worker_threads() {
        use crate::obs::{EventKind, RecordingSink};
        let sink = Arc::new(RecordingSink::new());
        let dep = StateDependence::new((0..24).map(f64::from).collect(), Noisy(0.0), NoisyLast)
            .with_options(
                pooled_options(4, 7).sink(Arc::clone(&sink) as Arc<dyn crate::obs::EventSink>),
            );
        let outcome = dep.run();
        assert_eq!(outcome.outputs.len(), 24);
        let events = sink.events();
        let starts = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::GroupStart { .. }))
            .count();
        let ends = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::GroupEnd { .. }))
            .count();
        assert_eq!(starts, 6, "one start per group");
        assert_eq!(starts, ends);
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::RunStart { inputs: 24, .. })));
    }

    #[test]
    fn shared_pool_across_dependences() {
        let pool = Arc::new(ThreadPool::new(4));
        let options = RunOptions::default()
            .pool(Arc::clone(&pool))
            .config(config())
            .seed(1);
        let a = StateDependence::new((0..8).map(f64::from).collect(), Noisy(0.0), NoisyLast)
            .with_options(options.clone());
        let b = StateDependence::new((0..8).map(f64::from).collect(), Noisy(0.0), NoisyLast)
            .with_options(options);
        let oa = a.run();
        let ob = b.run();
        assert_eq!(oa.outputs, ob.outputs);
    }
}
