//! Invocation context: the PRVG, tradeoff lookups, and work accounting.
//!
//! Every invocation of `compute_output` receives an [`InvocationCtx`]. It
//! bundles the three things the STATS machinery must control:
//!
//! - the **pseudo-random value generator** (the benchmarks' source of
//!   nondeterminism; the paper restores PRVGs seeded randomly, and the
//!   runtime re-seeds them per re-execution attempt so a re-executed
//!   producer can reach a *different* final state);
//! - the **tradeoff bindings** in effect (default bindings in original
//!   code, tuned clones inside auxiliary code);
//! - a **work meter** accumulating abstract work units, which become task
//!   costs on the simulated platform and the "extra committed instructions"
//!   column of Table 1.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::tradeoff::{ScalarType, TradeoffBindings, TradeoffValue};

/// Accumulates the computational cost of an invocation, split into a
/// CPU-bound and a memory-bound component (the latter is subject to the
/// simulated NUMA penalty).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkMeter {
    /// Total work units charged.
    pub total: f64,
    /// Work units charged as memory-bound.
    pub memory: f64,
}

impl WorkMeter {
    /// Fraction of the work that is memory-bound (0 when no work charged).
    pub fn mem_fraction(&self) -> f64 {
        if self.total > 0.0 {
            (self.memory / self.total).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }
}

/// Per-invocation execution context handed to
/// [`StateTransition::compute_output`](crate::StateTransition::compute_output).
#[derive(Debug)]
pub struct InvocationCtx {
    rng: SmallRng,
    bindings: TradeoffBindings,
    meter: WorkMeter,
    auxiliary: bool,
}

impl InvocationCtx {
    /// Create a context with the given PRVG seed and tradeoff bindings.
    ///
    /// `auxiliary` is true inside auxiliary code; workloads may consult it,
    /// although in STATS the *only* intended difference between original and
    /// auxiliary code is the tradeoff bindings.
    pub fn new(seed: u64, bindings: TradeoffBindings, auxiliary: bool) -> Self {
        InvocationCtx {
            rng: SmallRng::seed_from_u64(seed),
            bindings,
            meter: WorkMeter::default(),
            auxiliary,
        }
    }

    /// Derive a per-invocation seed from a run seed and the invocation's
    /// coordinates (group, index within the run, re-execution attempt).
    ///
    /// This keeps every invocation's PRVG stream independent and makes whole
    /// executions reproducible from a single seed, while re-execution
    /// attempts (`attempt > 0`) draw fresh randomness — the mechanism §3.1
    /// relies on to obtain *different* original final states.
    pub fn derive_seed(run_seed: u64, group: u64, index: u64, attempt: u64) -> u64 {
        // SplitMix64-style mixing; cheap and well distributed.
        let mut z = run_seed
            .wrapping_add(0x9e3779b97f4a7c15_u64.wrapping_mul(group + 1))
            .wrapping_add(0xbf58476d1ce4e5b9_u64.wrapping_mul(index + 1))
            .wrapping_add(0x94d049bb133111eb_u64.wrapping_mul(attempt + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Whether this invocation is auxiliary code.
    pub fn is_auxiliary(&self) -> bool {
        self.auxiliary
    }

    /// Access the PRVG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Draw from a normal distribution via Box–Muller (avoids a dependency
    /// on `rand_distr`, which is not in the sanctioned crate set).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = self.rng.random::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.rng.random::<f64>()
    }

    /// Uniform integer in `0..n`.
    pub fn index(&mut self, n: usize) -> usize {
        self.rng.random_range(0..n.max(1))
    }

    /// Charge CPU-bound work units.
    pub fn charge(&mut self, units: f64) {
        debug_assert!(units >= 0.0);
        self.meter.total += units;
    }

    /// Charge memory-bound work units (also counted in the total).
    pub fn charge_mem(&mut self, units: f64) {
        debug_assert!(units >= 0.0);
        self.meter.total += units;
        self.meter.memory += units;
    }

    /// The work accumulated so far.
    pub fn meter(&self) -> WorkMeter {
        self.meter
    }

    /// Look up a tradeoff binding (panics with a clear message if unbound:
    /// an unbound tradeoff reference is a compiler bug, not a user error).
    pub fn tradeoff(&self, name: &str) -> &TradeoffValue {
        self.bindings
            .get(name)
            .unwrap_or_else(|| panic!("tradeoff `{name}` is not bound in this context"))
    }

    /// Integer tradeoff lookup.
    pub fn tradeoff_int(&self, name: &str) -> i64 {
        self.tradeoff(name)
            .as_int()
            .unwrap_or_else(|| panic!("tradeoff `{name}` is not an integer"))
    }

    /// Float tradeoff lookup (integers widen).
    pub fn tradeoff_float(&self, name: &str) -> f64 {
        self.tradeoff(name)
            .as_float()
            .unwrap_or_else(|| panic!("tradeoff `{name}` is not numeric"))
    }

    /// Type tradeoff lookup.
    pub fn tradeoff_type(&self, name: &str) -> ScalarType {
        self.tradeoff(name)
            .as_type()
            .unwrap_or_else(|| panic!("tradeoff `{name}` is not a type"))
    }

    /// Function tradeoff lookup.
    pub fn tradeoff_function(&self, name: &str) -> &str {
        self.tradeoff(name)
            .as_function()
            .unwrap_or_else(|| panic!("tradeoff `{name}` is not a function"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tradeoff::EnumeratedTradeoff;
    use crate::tradeoff::TradeoffOptions;
    use std::sync::Arc;

    fn ctx() -> InvocationCtx {
        let opts: Vec<Arc<dyn TradeoffOptions>> =
            vec![Arc::new(EnumeratedTradeoff::int_range("layers", 1, 10, 5))];
        InvocationCtx::new(7, TradeoffBindings::defaults(&opts), false)
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = ctx();
        let mut b = ctx();
        for _ in 0..100 {
            assert_eq!(a.rng().random::<u64>(), b.rng().random::<u64>());
        }
    }

    #[test]
    fn derive_seed_varies_with_attempt() {
        let s0 = InvocationCtx::derive_seed(1, 2, 3, 0);
        let s1 = InvocationCtx::derive_seed(1, 2, 3, 1);
        assert_ne!(s0, s1);
    }

    #[test]
    fn derive_seed_varies_with_coordinates() {
        let base = InvocationCtx::derive_seed(1, 0, 0, 0);
        assert_ne!(base, InvocationCtx::derive_seed(2, 0, 0, 0));
        assert_ne!(base, InvocationCtx::derive_seed(1, 1, 0, 0));
        assert_ne!(base, InvocationCtx::derive_seed(1, 0, 1, 0));
    }

    #[test]
    fn work_meter_accumulates() {
        let mut c = ctx();
        c.charge(10.0);
        c.charge_mem(5.0);
        assert_eq!(c.meter().total, 15.0);
        assert_eq!(c.meter().memory, 5.0);
        assert!((c.meter().mem_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_meter_fraction_zero() {
        assert_eq!(WorkMeter::default().mem_fraction(), 0.0);
    }

    #[test]
    fn tradeoff_lookup() {
        let c = ctx();
        assert_eq!(c.tradeoff_int("layers"), 5);
    }

    #[test]
    #[should_panic(expected = "not bound")]
    fn unbound_tradeoff_panics() {
        let c = ctx();
        c.tradeoff_int("missing");
    }

    #[test]
    fn normal_moments() {
        let mut c = ctx();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| c.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_bounds() {
        let mut c = ctx();
        for _ in 0..1000 {
            let x = c.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }
}
