//! Expanding a speculation trace into a platform task graph.
//!
//! Each invocation node of a [`SpecTrace`] is decomposed with the
//! benchmark's [`OriginalTlp`] model into a fork/join of `t_orig` subtasks
//! (serial prefix + parallel body + synchronization overhead), so the
//! simulated platform sees both sources of TLP: group-level speculation
//! across invocations and the original threading within one.

use stats_core::{SpecTrace, TraceNodeKind};
use stats_sim::{TaskGraph, TaskId};
use stats_workloads::OriginalTlp;

/// Expand `trace` into a [`TaskGraph`], decomposing every invocation with
/// `tlp` across `t_orig` original threads (1 = no intra-invocation
/// parallelism). Returns the graph.
pub fn expand_trace(trace: &SpecTrace, tlp: &OriginalTlp, t_orig: usize) -> TaskGraph {
    let mut graph = TaskGraph::new();
    // Exit task of each trace node (the task later nodes must wait for).
    let mut exit: Vec<TaskId> = Vec::with_capacity(trace.nodes.len());

    for node in &trace.nodes {
        let deps: Vec<TaskId> = node.deps.iter().map(|&d| exit[d]).collect();
        let cost = node.work.total;
        let mem = node.work.mem_fraction();

        let is_invocation = matches!(node.kind, TraceNodeKind::Invocation { .. });
        let t = t_orig.clamp(1, tlp.max_threads.max(1));
        if !is_invocation || t == 1 || cost <= 0.0 {
            let id = graph.add_task(cost, mem, &deps);
            exit.push(id);
            continue;
        }

        // Fork/join decomposition: serial part + sync overhead, then `t`
        // parallel slices, then a zero-cost join.
        let parallel = cost * tlp.parallel_fraction;
        let serial = cost - parallel + cost * tlp.sync_overhead * (t as f64 - 1.0);
        let fork = graph.add_task(serial, mem, &deps);
        let mut slices = Vec::with_capacity(t);
        for _ in 0..t {
            slices.push(graph.add_task(parallel / t as f64, mem, &[fork]));
        }
        let join = graph.add_task(0.0, 0.0, &slices);
        exit.push(join);
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats_core::{run_protocol, ExactState, InvocationCtx, SpecConfig, StateTransition};

    struct Unit;
    impl StateTransition for Unit {
        type Input = u64;
        type State = ExactState<u64>;
        type Output = u64;
        fn compute_output(
            &self,
            input: &u64,
            state: &mut ExactState<u64>,
            ctx: &mut InvocationCtx,
        ) -> u64 {
            ctx.charge(100.0);
            state.0 = *input;
            *input
        }
    }

    fn tlp() -> OriginalTlp {
        OriginalTlp {
            parallel_fraction: 0.9,
            sync_overhead: 0.01,
            max_threads: 8,
            mem_fraction: 0.3,
        }
    }

    fn trace(n: usize) -> SpecTrace {
        let inputs: Vec<u64> = (0..n as u64).collect();
        run_protocol(&Unit, &inputs, &ExactState(0), &SpecConfig::sequential(), 0).trace
    }

    #[test]
    fn t1_is_one_task_per_node() {
        let tr = trace(5);
        let g = expand_trace(&tr, &tlp(), 1);
        assert_eq!(g.len(), tr.nodes.len());
        assert!((g.total_work() - tr.total_work()).abs() < 1e-9);
    }

    #[test]
    fn fork_join_preserves_parallel_work_and_adds_sync() {
        let tr = trace(3);
        let g4 = expand_trace(&tr, &tlp(), 4);
        // Each invocation: fork + 4 slices + join = 6 tasks.
        assert_eq!(g4.len(), 3 * 6);
        let expected = tr.total_work() + 3.0 * 100.0 * 0.01 * 3.0;
        assert!((g4.total_work() - expected).abs() < 1e-9);
    }

    #[test]
    fn t_orig_clamped_to_model_max() {
        let tr = trace(2);
        let g = expand_trace(&tr, &tlp(), 100);
        // max_threads = 8: fork + 8 + join per invocation.
        assert_eq!(g.len(), 2 * 10);
    }

    #[test]
    fn chain_dependences_preserved() {
        let tr = trace(4);
        let g = expand_trace(&tr, &tlp(), 2);
        // The critical path must include every invocation's serial part:
        // 4 * (serial + slice) where serial = 100*(0.1 + 0.01).
        let serial = 100.0 * (0.1 + 0.01);
        let slice = 100.0 * 0.9 / 2.0;
        let expected = 4.0 * (serial + slice);
        assert!((g.critical_path() - expected).abs() < 1e-9);
    }

    #[test]
    fn fork_join_matches_amdahl_analytically() {
        // One invocation decomposed over t threads on an uncontended
        // platform must take exactly serial + sync + parallel/t.
        use stats_sim::{simulate, Platform};
        let tr = trace(1);
        let model = tlp();
        let platform = Platform::haswell_single_socket();
        for t in [1usize, 2, 4, 8] {
            let g = expand_trace(&tr, &model, t);
            let s = simulate(&g, &platform, t.max(2));
            let cost = 100.0;
            let expected = if t == 1 {
                cost
            } else {
                cost * (1.0 - model.parallel_fraction)
                    + cost * model.sync_overhead * (t as f64 - 1.0)
                    + cost * model.parallel_fraction / t as f64
            };
            assert!(
                (s.makespan_work() - expected).abs() < 1e-9,
                "t={t}: {} vs analytic {expected}",
                s.makespan_work()
            );
        }
    }

    #[test]
    fn more_threads_shorten_critical_path() {
        let tr = trace(4);
        let cp2 = expand_trace(&tr, &tlp(), 2).critical_path();
        let cp8 = expand_trace(&tr, &tlp(), 8).critical_path();
        assert!(cp8 < cp2);
    }
}
