//! The state space (paper §3.3) and the autotuning loop over it.
//!
//! "The state space is defined by all tradeoffs, by how often a state
//! dependence is satisfied with auxiliary code, by the number of previous
//! inputs an auxiliary code will consider, by the maximum number of times
//! the STATS runtime can execute an original producer of a given state
//! dependence, and by the number of threads to dedicate to the TLP already
//! available in the original program."

use stats_autotune::{
    Configuration, IntegerParameter, Measurement, Objective, ResultsDatabase, SearchSpace, Tuner,
    TuningOutcome,
};
use stats_core::{SpecConfig, TradeoffBindings};
use stats_workloads::{Instance, Workload, WorkloadSpec};

use crate::measure::{measure_instance, FullMeasurement, RunSettings};

/// Group-cardinality choices exposed to the tuner.
pub const GROUP_SIZES: [usize; 6] = [2, 4, 6, 8, 12, 16];

/// Build the state space for `workload` on a `threads`-thread platform.
///
/// Dimension order: `speculate`, `group`, `window`, `reexec`, `rollback`,
/// `t_orig`, then one dimension per tradeoff. `tradeoff_prefix` limits how
/// many tradeoffs are tunable (the Figure 18 sweep); the rest stay at their
/// defaults.
pub fn search_space<W: Workload>(
    workload: &W,
    threads: usize,
    tradeoff_prefix: usize,
) -> SearchSpace {
    let mut space = SearchSpace::new()
        .with(IntegerParameter::new("speculate", 0, 1))
        .with(IntegerParameter::new(
            "group",
            0,
            GROUP_SIZES.len() as i64 - 1,
        ))
        .with(IntegerParameter::new("window", 1, 6))
        .with(IntegerParameter::new("reexec", 0, 3))
        .with(IntegerParameter::new("rollback", 1, 4))
        .with(IntegerParameter::new("t_orig", 1, threads.max(1) as i64))
        // Hardware threads actually allocated: the dimension that lets the
        // energy objective "avoid using extra cores if the additional
        // performance obtained by them is not significant" (§4.3).
        .with(IntegerParameter::new("alloc", 1, threads.max(1) as i64));
    for (i, t) in workload.tradeoffs().iter().enumerate() {
        if i < tradeoff_prefix {
            space.push(IntegerParameter::new(t.name(), 0, t.max_index() - 1));
        } else {
            let d = t.default_index();
            space.push(IntegerParameter::new(t.name(), d, d));
        }
    }
    space
}

/// A decoded state-space point.
#[derive(Debug, Clone)]
pub struct DecodedConfig {
    /// The speculation configuration (bindings resolved).
    pub spec_config: SpecConfig,
    /// Threads devoted to the original TLP.
    pub t_orig: usize,
    /// Hardware threads allocated in total.
    pub alloc: usize,
}

/// Decode an autotuner configuration into runnable settings.
pub fn decode<W: Workload>(workload: &W, cfg: &Configuration) -> DecodedConfig {
    let opts = workload.tradeoffs();
    let defaults = TradeoffBindings::defaults(&opts);
    let tradeoff_indices: Vec<i64> = cfg[7..].to_vec();
    DecodedConfig {
        spec_config: SpecConfig {
            speculate: cfg[0] != 0,
            group_size: GROUP_SIZES[cfg[1] as usize],
            window: cfg[2] as usize,
            max_reexec: cfg[3] as usize,
            rollback: cfg[4] as usize,
            orig_bindings: defaults,
            aux_bindings: TradeoffBindings::from_indices(&opts, &tradeoff_indices),
            ..SpecConfig::default()
        },
        t_orig: cfg[5] as usize,
        alloc: cfg[6] as usize,
    }
}

/// The outcome of a tuning run: the best configuration with its full
/// measurement, plus the search history and reusable database.
pub struct TuneResult {
    /// The autotuner's outcome (best configuration + history).
    pub outcome: TuningOutcome,
    /// The best configuration, decoded.
    pub best: DecodedConfig,
    /// Full measurement of the best configuration.
    pub best_measurement: FullMeasurement,
    /// The results database, reusable under a different objective.
    pub database: ResultsDatabase,
}

/// Profile one configuration against a pre-materialized instance.
fn profile_config<W: Workload>(
    workload: &W,
    instance: &Instance<W::T>,
    spec: &WorkloadSpec,
    threads: usize,
    base: &RunSettings,
    cfg: &Configuration,
) -> Measurement {
    let decoded = decode(workload, cfg);
    let settings = RunSettings {
        threads: decoded.alloc.clamp(1, threads),
        t_orig: decoded.t_orig,
        spec_config: decoded.spec_config,
        ..base.clone()
    };
    let m = measure_instance(workload, instance, spec, &settings);
    Measurement {
        time_s: m.time_s,
        energy_j: m.energy_j,
    }
}

/// Measure the tuner's winning configuration in full.
fn measure_best<W: Workload>(
    workload: &W,
    instance: &Instance<W::T>,
    spec: &WorkloadSpec,
    threads: usize,
    base: RunSettings,
    best: &DecodedConfig,
) -> FullMeasurement {
    let settings = RunSettings {
        threads: best.alloc.clamp(1, threads),
        t_orig: best.t_orig,
        spec_config: best.spec_config.clone(),
        ..base
    };
    measure_instance(workload, instance, spec, &settings)
}

/// Autotune `workload` on the given training `spec` with `threads` hardware
/// threads, evaluating `budget` configurations.
pub fn tune<W: Workload>(
    workload: &W,
    spec: &WorkloadSpec,
    threads: usize,
    objective: Objective,
    budget: usize,
    search_seed: u64,
) -> TuneResult {
    tune_with_prefix(
        workload,
        spec,
        threads,
        objective,
        budget,
        search_seed,
        usize::MAX,
    )
}

/// Re-target a finished exploration at a different objective (paper §3.2:
/// the autotuner "stores the results of its exploration … which allows them
/// to be reused should the specific optimization objective change"): the
/// previous database answers repeat profiles for free, and the previous
/// best configuration seeds the new search, so the result can never be
/// worse under the new objective than anything already explored.
pub fn retune<W: Workload>(
    workload: &W,
    spec: &WorkloadSpec,
    threads: usize,
    objective: Objective,
    budget: usize,
    search_seed: u64,
    prior: &TuneResult,
) -> TuneResult {
    let space = search_space(workload, threads, usize::MAX);
    let tuner = Tuner::new(space, objective, search_seed)
        .with_database(prior.database.clone())
        .with_seed_configs(
            prior
                .outcome
                .history
                .trials()
                .map(|(c, _, _)| c.clone())
                .collect(),
        );
    let base_settings = RunSettings::for_mode(workload, crate::Mode::ParStats, threads);
    let instance = workload.instance(spec);
    let (outcome, database) = tuner.run(budget.max(prior.outcome.history.len()), |cfg| {
        profile_config(workload, &instance, spec, threads, &base_settings, cfg)
    });
    let best = decode(workload, &outcome.best);
    let best_measurement = measure_best(workload, &instance, spec, threads, base_settings, &best);
    TuneResult {
        outcome,
        best,
        best_measurement,
        database,
    }
}

/// [`tune`] with the profile runs fanned out over `workers` threads.
///
/// Proposals come in deterministic fixed-size generations
/// ([`Tuner::GENERATION`]), so the search history, best configuration, and
/// convergence curve are bit-identical to [`tune`] with the same
/// `search_seed`, for any worker count. The shared workload instance is
/// materialized once and profiled concurrently (it is read-only).
#[allow(clippy::too_many_arguments)]
pub fn tune_parallel<W: Workload + Sync>(
    workload: &W,
    spec: &WorkloadSpec,
    threads: usize,
    objective: Objective,
    budget: usize,
    search_seed: u64,
    workers: usize,
) -> TuneResult {
    let (tuner, base_settings) =
        seeded_tuner(workload, threads, objective, search_seed, usize::MAX);
    let instance = workload.instance(spec);
    let (outcome, database) = tuner.run_parallel(budget, workers, |cfg| {
        profile_config(workload, &instance, spec, threads, &base_settings, cfg)
    });
    let best = decode(workload, &outcome.best);
    let best_measurement = measure_best(workload, &instance, spec, threads, base_settings, &best);
    TuneResult {
        outcome,
        best,
        best_measurement,
        database,
    }
}

/// A tuner seeded with the four baseline configurations, plus the base run
/// settings — the shared setup of [`tune_with_prefix`] and [`tune_parallel`].
fn seeded_tuner<W: Workload>(
    workload: &W,
    threads: usize,
    objective: Objective,
    search_seed: u64,
    tradeoff_prefix: usize,
) -> (Tuner, RunSettings) {
    let space = search_space(workload, threads, tradeoff_prefix);
    let t = threads.max(1) as i64;
    let n_tradeoffs = workload.tradeoffs().len();
    let defaults: Vec<i64> = workload
        .tradeoffs()
        .iter()
        .map(|tr| tr.default_index())
        .collect();
    // Seed the search with the two obvious baselines: the original program
    // (speculation off, every thread on the original TLP) and an untuned
    // Par. STATS point — the tuner can then only improve on them.
    let mut original_seed = vec![0, 2, 2, 2, 2, t, t];
    original_seed.extend(defaults.iter().copied());
    let mut par_seed = vec![1, 1, 4, 3, 2, (t / 4).max(1), t];
    par_seed.extend(defaults.iter().copied());
    let mut spec_seed = vec![1, 0, 4, 3, 2, 1, t];
    spec_seed.extend(defaults.iter().copied());
    // A half-allocation original point anchors the energy objective (fewer
    // cores, nearly the same time for sub-linear workloads).
    let mut original_half = vec![0, 2, 2, 2, 2, (t / 2).max(1), (t / 2).max(1)];
    original_half.extend(defaults);
    debug_assert_eq!(original_seed.len(), 7 + n_tradeoffs);
    let tuner = Tuner::new(space, objective, search_seed).with_seed_configs(vec![
        original_seed,
        par_seed,
        spec_seed,
        original_half,
    ]);
    let base_settings = RunSettings::for_mode(workload, crate::Mode::ParStats, threads);
    (tuner, base_settings)
}

/// [`tune`] with only the first `tradeoff_prefix` tradeoffs tunable.
#[allow(clippy::too_many_arguments)]
pub fn tune_with_prefix<W: Workload>(
    workload: &W,
    spec: &WorkloadSpec,
    threads: usize,
    objective: Objective,
    budget: usize,
    search_seed: u64,
    tradeoff_prefix: usize,
) -> TuneResult {
    let (tuner, base_settings) =
        seeded_tuner(workload, threads, objective, search_seed, tradeoff_prefix);
    let instance = workload.instance(spec);
    let (outcome, database) = tuner.run(budget, |cfg| {
        profile_config(workload, &instance, spec, threads, &base_settings, cfg)
    });
    let best = decode(workload, &outcome.best);
    let best_measurement = measure_best(workload, &instance, spec, threads, base_settings, &best);
    TuneResult {
        outcome,
        best,
        best_measurement,
        database,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{measure, Mode};
    use stats_workloads::bodytrack::BodyTrack;
    use stats_workloads::fluidanimate::FluidAnimate;
    use stats_workloads::swaptions::Swaptions;

    fn spec(n: usize) -> WorkloadSpec {
        WorkloadSpec {
            inputs: n,
            ..WorkloadSpec::default()
        }
    }

    #[test]
    fn space_has_expected_dimensions() {
        let s = search_space(&BodyTrack, 28, usize::MAX);
        // 7 protocol dims + 3 bodytrack tradeoffs.
        assert_eq!(s.dims(), 10);
        assert!(s.cardinality() > 10_000);
    }

    #[test]
    fn prefix_pins_trailing_tradeoffs() {
        let s = search_space(&BodyTrack, 28, 1);
        let params = s.params();
        assert_eq!(params[7].hi - params[7].lo, 9); // layers tunable
        assert_eq!(params[8].lo, params[8].hi); // precision pinned
        assert_eq!(params[9].lo, params[9].hi); // particles pinned
    }

    #[test]
    fn decode_roundtrip() {
        let cfg = vec![1, 3, 2, 1, 2, 7, 20, 4, 1, 2];
        let d = decode(&BodyTrack, &cfg);
        assert!(d.spec_config.speculate);
        assert_eq!(d.spec_config.group_size, 8);
        assert_eq!(d.spec_config.window, 2);
        assert_eq!(d.spec_config.max_reexec, 1);
        assert_eq!(d.spec_config.rollback, 2);
        assert_eq!(d.t_orig, 7);
        assert_eq!(d.alloc, 20);
        assert_eq!(
            d.spec_config
                .aux_bindings
                .get("numAnnealingLayers")
                .unwrap()
                .as_int(),
            Some(5)
        );
    }

    #[test]
    fn tuned_beats_original_for_bodytrack() {
        let w = BodyTrack;
        let s = spec(32);
        let threads = 16;
        let result = tune(&w, &s, threads, Objective::Time, 40, 1);
        let original = measure(&w, &s, &RunSettings::for_mode(&w, Mode::Original, threads));
        assert!(
            result.best_measurement.time_s < original.time_s,
            "tuned {} vs original {}",
            result.best_measurement.time_s,
            original.time_s
        );
    }

    #[test]
    fn tuner_disables_speculation_for_fluidanimate() {
        let w = FluidAnimate;
        let s = spec(12);
        let result = tune(&w, &s, 8, Objective::Time, 30, 2);
        // The best configuration either turns speculation off or keeps it
        // on to no benefit; it must never beat-and-break: quality stays.
        let orig = measure(&w, &s, &RunSettings::for_mode(&w, Mode::Original, 8));
        assert!(result.best_measurement.time_s <= orig.time_s * 1.05);
    }

    #[test]
    fn energy_objective_can_pick_fewer_threads() {
        let w = Swaptions;
        let s = spec(24);
        let time_best = tune(&w, &s, 28, Objective::Time, 40, 3);
        let energy_best = retune(&w, &s, 28, Objective::Energy, 40, 3, &time_best);
        assert!(energy_best.best_measurement.energy_j <= time_best.best_measurement.energy_j);
    }

    #[test]
    fn parallel_tuning_reproduces_serial_search() {
        let w = Swaptions;
        let s = spec(12);
        let serial = tune(&w, &s, 8, Objective::Time, 24, 7);
        for workers in [2, 4] {
            let par = tune_parallel(&w, &s, 8, Objective::Time, 24, 7, workers);
            assert_eq!(par.outcome.best, serial.outcome.best, "{workers} workers");
            assert_eq!(
                par.outcome.history.best_so_far_curve(),
                serial.outcome.history.best_so_far_curve(),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn retune_reuses_the_database() {
        let w = Swaptions;
        let s = spec(16);
        let first = tune(&w, &s, 16, Objective::Time, 20, 4);
        let explored = first.database.len();
        let second = retune(&w, &s, 16, Objective::Energy, 20, 4, &first);
        // The re-targeted search started from everything already explored.
        assert!(second.database.len() >= explored);
        // And cannot be worse on energy than the time-mode winner.
        assert!(second.best_measurement.energy_j <= first.best_measurement.energy_j * 1.0001);
    }
}
